"""Serving benchmark: coalesced concurrent queries vs serial execution.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI

The workload is the serving shape the coalescer exists for: many
concurrent queries with *distinct keywords* over a handful of *shared
heavy contexts*.  Context materialisation dominates per-query cost on
the straightforward path (no catalog is loaded), so a coalesced batch
pays it once per distinct context while serial execution pays it per
query.  Keywords are distinct per query precisely so the serving cache
cannot hit — the measured speedup is the coalescer's, not the cache's.

Three arms, all over real sockets against a :class:`ServerThread`:

* **serial** — coalescing off (batches of one), one worker: every
  request materialises its own context;
* **coalesced** — coalescing on, same single worker and identical
  offered load: concurrent requests batch through the
  :class:`~repro.core.engine.BatchExecutor` and share materialisations.
  One worker in both arms isolates sharing from thread parallelism;
* **overload** — a tiny admission cap under heavy offered load:
  demonstrates load shedding (non-zero shed count, zero errors) and
  that the p99 latency of answered requests stays bounded by the queue
  cap rather than the offered load.

Before any timing is trusted, every coalesced response is asserted
bit-identical (external ids + float scores) to a direct
``engine.search`` of the same query.  Full runs write
``BENCH_serving.json`` at the repo root and exit 1 if the coalesced
arm's throughput falls below 2x serial; ``--smoke`` shrinks the corpus
and checks agreement, non-zero throughput, zero errors, and clean
shutdown only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ContextSearchEngine, CorpusConfig, generate_corpus  # noqa: E402
from repro.service import ServerThread, ServiceConfig, run_load  # noqa: E402

FULL_DOCS = 8_000
SMOKE_DOCS = 1_200
MIN_SPEEDUP = 2.0
TOP_K = 10


def build_workload(num_docs: int, num_queries: int, num_contexts: int):
    """An engine plus queries: distinct keywords over shared heavy contexts.

    Contexts pair the collection's most frequent predicates (expensive to
    materialise); keywords are distinct mid-frequency terms (cheap to
    score, and they defeat the serving cache by construction).
    """
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()

    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )
    heavy = predicates[-(num_contexts + 2):]
    # Three heavy predicates per context: the materialisation (the cost
    # coalescing shares) is two intersections over the fattest posting
    # lists in the collection.
    contexts = [
        f"{heavy[-1]} {heavy[-2]} {heavy[i]}" for i in range(num_contexts)
    ]

    terms = [
        t
        for t in sorted(index.vocabulary, key=index.document_frequency)
        if index.document_frequency(t) >= 2
    ]
    # Mid-frequency band: present in the collection, cheap to score.
    band = terms[len(terms) // 2: len(terms) // 2 + num_queries]
    if len(band) < num_queries:
        band = terms[-num_queries:]
    queries = [
        f"{kw} | {contexts[i % len(contexts)]}" for i, kw in enumerate(band)
    ]
    return ContextSearchEngine(index), queries


def serve_and_load(engine, config, queries, threads, repeat,
                   keep_responses=False, timeout_ms=None):
    with ServerThread(engine, config) as st:
        report = run_load(
            st.address,
            queries,
            threads=threads,
            top_k=TOP_K,
            repeat=repeat,
            keep_responses=keep_responses,
            timeout_ms=timeout_ms,
        )
        snapshot = st.service.metrics.snapshot()
    return report, snapshot


def assert_bit_identical(engine, queries, repeat, responses):
    """Every served ranking must equal a direct engine.search, exactly."""
    workload = list(queries) * repeat
    checked = 0
    for i, query in enumerate(workload):
        response = responses.get(i)
        if response is None:
            raise AssertionError(f"query {i} has no ok response")
        serial = engine.search(query, top_k=TOP_K)
        got = [(h["doc"], h["score"]) for h in response["hits"]]
        want = [(h.external_id, h.score) for h in serial.hits]
        if got != want:
            raise AssertionError(
                f"served ranking differs from serial for {query!r}:\n"
                f"  served: {got}\n  serial: {want}"
            )
        checked += 1
    return checked


def run(num_docs, num_queries, num_contexts, threads, repeat):
    print(f"corpus: {num_docs} docs ...", flush=True)
    engine, queries = build_workload(num_docs, num_queries, num_contexts)
    print(
        f"workload: {len(queries)} distinct-keyword queries over "
        f"{num_contexts} shared contexts, {threads} clients, "
        f"repeat={repeat}",
        flush=True,
    )

    # One worker in both arms: the comparison isolates shared context
    # materialisation, not thread parallelism.
    serial_config = ServiceConfig(
        workers=1, coalesce=False, cache_enabled=False
    )
    # max_batch == client concurrency: a closed loop of N clients fills
    # the bucket in one round-trip, so batches flush on size and the
    # timer only backstops stragglers.
    coalesced_config = ServiceConfig(
        workers=1, coalesce=True, max_batch=threads, max_wait_ms=10.0,
        cache_enabled=False,
    )

    serial, serial_snap = serve_and_load(
        engine, serial_config, queries, threads, repeat
    )
    if serial.errors or serial.ok != serial.sent:
        raise AssertionError(f"serial arm had failures: {serial.to_dict()}")
    print(
        f"serial:    {serial.qps:.1f} qps "
        f"(p50={serial.latency_ms(50):.1f}ms p99={serial.latency_ms(99):.1f}ms, "
        f"mean batch={serial_snap['batches']['mean_size']:.2f})",
        flush=True,
    )

    coalesced, coalesced_snap = serve_and_load(
        engine, coalesced_config, queries, threads, repeat,
        keep_responses=True,
    )
    if coalesced.errors or coalesced.ok != coalesced.sent:
        raise AssertionError(
            f"coalesced arm had failures: {coalesced.to_dict()}"
        )
    checked = assert_bit_identical(
        engine, queries, repeat, coalesced.responses
    )
    print(
        f"coalesced: {coalesced.qps:.1f} qps "
        f"(p50={coalesced.latency_ms(50):.1f}ms "
        f"p99={coalesced.latency_ms(99):.1f}ms, "
        f"mean batch={coalesced_snap['batches']['mean_size']:.2f}, "
        f"max batch={coalesced_snap['batches']['max_size']}); "
        f"{checked} rankings bit-identical to serial",
        flush=True,
    )

    speedup = coalesced.qps / serial.qps if serial.qps else float("inf")
    print(f"coalescing speedup: {speedup:.2f}x", flush=True)

    # Overload arm: tiny admission cap, heavy offered load.  p99 of
    # answered requests must track the cap, not the offered load: every
    # admitted request waits behind at most max_pending others, so
    # max_pending times the worst single-query latency bounds it (with
    # 3x slack for scheduling noise).
    overload_config = ServiceConfig(
        workers=1, coalesce=True, max_batch=8, max_wait_ms=5.0,
        cache_enabled=False, max_pending=8,
    )
    overload, overload_snap = serve_and_load(
        engine, overload_config, queries, threads=max(threads * 2, 16),
        repeat=repeat,
    )
    worst_query_ms = serial.latency_ms(100)
    p99_bound_ms = 3.0 * overload_config.max_pending * worst_query_ms
    overload_p99 = overload.latency_ms(99)
    print(
        f"overload:  {overload.ok} ok / {overload.shed} shed / "
        f"{overload.errors} errors; p99={overload_p99:.1f}ms "
        f"(bound {p99_bound_ms:.1f}ms)",
        flush=True,
    )
    if overload.errors:
        raise AssertionError("overload arm produced errors (expected sheds)")
    if overload.shed == 0:
        raise AssertionError("overload arm shed nothing; cap not exercised")
    if overload_p99 > p99_bound_ms:
        raise AssertionError(
            f"overload p99 {overload_p99:.1f}ms exceeds the admission-cap "
            f"bound {p99_bound_ms:.1f}ms"
        )

    return {
        "serial": {**serial.to_dict(), "batches": serial_snap["batches"]},
        "coalesced": {
            **coalesced.to_dict(),
            "batches": coalesced_snap["batches"],
        },
        "overload": {
            **overload.to_dict(),
            "max_pending": overload_config.max_pending,
            "p99_bound_ms": p99_bound_ms,
            "shed_by_server": overload_snap["shed"],
        },
        "speedup": speedup,
        "rankings_checked": checked,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no JSON write, no 2x gate (CI correctness check)",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="concurrent load clients"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_serving.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run(
            SMOKE_DOCS, num_queries=16, num_contexts=2,
            threads=min(args.threads, 4), repeat=1,
        )
        if results["serial"]["qps"] <= 0 or results["coalesced"]["qps"] <= 0:
            print("FAIL: zero throughput", file=sys.stderr)
            return 1
        print(
            "smoke mode: non-zero throughput, zero errors, rankings "
            "bit-identical, servers shut down cleanly; JSON not written"
        )
        return 0

    results = run(
        FULL_DOCS, num_queries=48, num_contexts=3,
        threads=args.threads, repeat=3,
    )

    payload = {
        "benchmark": "query service: coalesced vs serial over shared contexts",
        "python": platform.python_version(),
        "host_cpu_cores": os.cpu_count() or 1,
        "num_docs": FULL_DOCS,
        "num_queries": 48,
        "num_contexts": 3,
        "threads": args.threads,
        "repeat": 3,
        "top_k": TOP_K,
        "workers_per_arm": 1,
        "rankings_bit_identical_to_serial": True,
        "min_required_speedup": MIN_SPEEDUP,
        "coalescing_speedup": results["speedup"],
        "arms": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if results["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: coalescing speedup {results['speedup']:.2f}x "
            f"< required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
