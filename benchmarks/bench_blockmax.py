"""Block-max top-k benchmark: per-block bounds vs global-bound MaxScore.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_blockmax.py           # full
    PYTHONPATH=src python benchmarks/bench_blockmax.py --smoke   # CI

The block-max PR's load-bearing claim: on large-context disjunctive
queries whose posting lists have locally skewed term frequencies,
per-block score upper bounds let MaxScore jump whole docid ranges that
a single global bound must grind through — without changing a single
result.  Measured end to end through ``search_disjunctive`` (context
resolution included) on a corpus with the shape that motivates the
optimisation: each query has one *driver* term whose high-tf postings
are clustered in a few docid runs (tf=1 everywhere else) plus common
tf=1 support terms, every document in one whole-collection context.
Real corpora show this locality (bursty topics, near-duplicate runs);
uniform synthetic tf would hide it — block maxima would all equal the
global maximum and neither arm could skip.

Gate: p95 latency with ``block_max=on`` must beat ``off`` by **≥1.3x**
on the flat engine and on a 2-shard engine.  Rankings are asserted
identical — on vs off bit-exact, flat vs sharded to 1e-12 — before any
timing is trusted.

Full runs write ``BENCH_blockmax.json`` at the repo root and exit 1 if
a gate fails; ``--smoke`` shrinks the corpus and checks correctness
(identity, skips actually firing, non-degenerate timings) only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ContextSearchEngine, Document, build_index  # noqa: E402
from repro.core.sharded_engine import ShardedEngine  # noqa: E402
from repro.index.sharded import ShardedInvertedIndex  # noqa: E402
from repro.service import percentile  # noqa: E402

FULL_DOCS = 12_000
SMOKE_DOCS = 2_000
GROUPS = 5
CLUSTER_DOCS = 25
DOC_LENGTH = 110
MIN_SPEEDUP = 1.3
TOP_K = 10
SEED = 2027


def build_corpus(num_docs: int):
    """A corpus with clustered tf skew, one whole-collection context.

    Per query group ``g``: a driver term ``s<g>`` appearing with tf=1 in
    ~30% of documents except in three 25-document docid runs where its
    tf jumps to 20–40 (one run early so the top-k threshold fills
    fast), and three support terms ``w<g>x<j>`` with tf=1 in ~60% of
    documents.  Filler tokens pad every document to a uniform length so
    ranking-model length normalisation doesn't mask the tf signal.
    """
    rng = random.Random(SEED)
    clusters = {}
    for g in range(GROUPS):
        starts = [200 + 37 * g] + rng.sample(
            range(num_docs // 6, num_docs - 40, 200), 2
        )
        clusters[g] = set()
        for start in starts:
            clusters[g].update(range(start, start + CLUSTER_DOCS))
    documents = []
    for i in range(num_docs):
        tokens = []
        for g in range(GROUPS):
            if i in clusters[g]:
                tokens += [f"s{g}"] * rng.randint(20, 40)
            elif rng.random() < 0.30:
                tokens.append(f"s{g}")
            for j in range(3):
                if rng.random() < 0.60:
                    tokens.append(f"w{g}x{j}")
        pad = DOC_LENGTH - len(tokens)
        if pad > 0:
            tokens += [f"f{rng.randrange(300)}"] * pad
        documents.append(
            Document(f"D{i}", {"title": " ".join(tokens), "mesh": "Ctx"})
        )
    queries = [f"s{g} w{g}x0 w{g}x1 w{g}x2 | Ctx" for g in range(GROUPS)]
    return build_index(documents), queries


def assert_identity(flat, sharded_engine, queries) -> dict:
    """Rankings must be identical before any timing is trusted.

    On vs off runs the same scoring code, so those are compared
    bit-exactly; flat vs sharded merge partial sums in a different
    order, so scores there get the repo-wide 1e-12 contract.
    """
    skipped_total = 0
    for query in queries:
        on = flat.search_disjunctive(query, top_k=TOP_K, block_max=True)
        off = flat.search_disjunctive(query, top_k=TOP_K, block_max=False)
        assert [(h.external_id, h.score) for h in on.hits] == [
            (h.external_id, h.score) for h in off.hits
        ], f"flat on/off rankings diverge: {query}"
        s_on = sharded_engine.search_disjunctive(
            query, top_k=TOP_K, block_max=True
        )
        s_off = sharded_engine.search_disjunctive(
            query, top_k=TOP_K, block_max=False
        )
        assert [(h.external_id, h.score) for h in s_on.hits] == [
            (h.external_id, h.score) for h in s_off.hits
        ], f"sharded on/off rankings diverge: {query}"
        assert [h.external_id for h in s_on.hits] == [
            h.external_id for h in on.hits
        ], f"flat/sharded rankings diverge: {query}"
        for a, b in zip(on.hits, s_on.hits):
            assert abs(a.score - b.score) < 1e-12, query
        skipped_total += on.report.topk["blocks_skipped"]
    sample = flat.search_disjunctive(
        queries[0], top_k=TOP_K, block_max=True
    ).report.topk
    return {"rankings_identical": True,
            "blocks_skipped_across_queries": skipped_total,
            "sample_diagnostics": sample}


def p95_of(engine, queries, block_max: bool, repeat: int) -> float:
    latencies = []
    for _ in range(repeat):
        for query in queries:
            started = time.perf_counter()
            engine.search_disjunctive(
                query, top_k=TOP_K, block_max=block_max
            )
            latencies.append((time.perf_counter() - started) * 1000.0)
    return percentile(latencies, 95)


def bench_engine(engine, queries, repeat: int, arms: int) -> dict:
    """Best-of-``arms`` p95 per setting, arms interleaved so machine
    drift lands on both settings equally."""
    on_best = float("inf")
    off_best = float("inf")
    for _ in range(arms):
        on_best = min(on_best, p95_of(engine, queries, True, repeat))
        off_best = min(off_best, p95_of(engine, queries, False, repeat))
    speedup = off_best / on_best if on_best > 0 else float("inf")
    return {
        "p95_on_ms": on_best,
        "p95_off_ms": off_best,
        "speedup": speedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no JSON write, no gates (CI correctness check)",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_blockmax.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    index, queries = build_corpus(num_docs)
    flat = ContextSearchEngine(index)
    sharded = ShardedInvertedIndex.from_index(index, 2, "hash")
    with ShardedEngine(sharded, executor="serial") as sharded_engine:
        identity = assert_identity(flat, sharded_engine, queries)
        print(
            f"identity: rankings equal across on/off/flat/sharded; "
            f"{identity['blocks_skipped_across_queries']} blocks skipped "
            f"across {len(queries)} queries",
            flush=True,
        )

        if args.smoke:
            if identity["blocks_skipped_across_queries"] <= 0:
                print(
                    "FAIL: block-max never skipped a block on the skewed "
                    "smoke corpus",
                    file=sys.stderr,
                )
                return 1
            p95 = p95_of(flat, queries, True, repeat=1)
            if p95 <= 0:
                print("FAIL: degenerate timings", file=sys.stderr)
                return 1
            print(
                "smoke mode: rankings identical, skips fire; JSON not written"
            )
            return 0

        repeat, arms = 3, 5
        flat_result = bench_engine(flat, queries, repeat, arms)
        sharded_result = bench_engine(sharded_engine, queries, repeat, arms)

    print(
        f"flat:    on {flat_result['p95_on_ms']:.2f}ms, "
        f"off {flat_result['p95_off_ms']:.2f}ms "
        f"→ {flat_result['speedup']:.2f}x",
        flush=True,
    )
    print(
        f"sharded: on {sharded_result['p95_on_ms']:.2f}ms, "
        f"off {sharded_result['p95_off_ms']:.2f}ms "
        f"→ {sharded_result['speedup']:.2f}x",
        flush=True,
    )

    payload = {
        "benchmark": "block-max top-k: p95 with per-block bounds on vs off",
        "python": platform.python_version(),
        "host_cpu_cores": os.cpu_count() or 1,
        "num_docs": num_docs,
        "num_queries": len(queries),
        "top_k": TOP_K,
        "min_required_speedup": MIN_SPEEDUP,
        "identity": identity,
        "flat": flat_result,
        "sharded_2": sharded_result,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = False
    for label, result in (("flat", flat_result), ("sharded", sharded_result)):
        if result["speedup"] < MIN_SPEEDUP:
            print(
                f"FAIL: {label} block-max speedup {result['speedup']:.2f}x "
                f"is below the required {MIN_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
