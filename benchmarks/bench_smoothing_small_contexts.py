"""Ablation A8: language-model smoothing vs context size (Section 6.3 remark).

"As a special case, when the context size is too small, the statistics
are much less [reliable].  For example, one of the most important
problems for language models is smoothing … When the context size is too
small, smoothing becomes harder [and] the derived language models may
not achieve satisfactory ranking performance."

This bench runs the quality comparison under the Dirichlet language
model and buckets topics by context size: the context-sensitive gain
should concentrate in the larger-context buckets, while tiny contexts
are the regime where per-context background models are noisy.
"""

import pytest

from repro import ContextSearchEngine, DirichletLanguageModel
from repro.data import generate_benchmark
from repro.eval import run_quality_comparison

from conftest import print_table


@pytest.fixture(scope="module")
def wide_topics(bench_corpus, bench_index):
    """Topics admitted at a low result-size floor so small contexts occur."""
    return generate_benchmark(
        bench_corpus,
        bench_index,
        num_topics=30,
        min_result_size=12,
        min_relevant=4,
        seed=4242,
    )


def test_smoothing_vs_context_size(benchmark, bench_index, wide_topics):
    engine = ContextSearchEngine(
        bench_index, ranking=DirichletLanguageModel(mu=500.0)
    )
    comparison = benchmark.pedantic(
        lambda: run_quality_comparison(engine, wide_topics, k=20),
        rounds=1,
        iterations=1,
    )

    # Bucket outcomes by the topic's context size (median split).
    sizes = []
    for topic in wide_topics.topics:
        stats = engine.context_statistics(topic.query.context, list(topic.keywords))
        sizes.append(stats.cardinality)
    order = sorted(range(len(sizes)), key=lambda i: sizes[i])
    half = len(order) // 2
    buckets = {
        "small contexts": order[:half],
        "large contexts": order[half:],
    }

    rows = []
    deltas = {}
    for label, indices in buckets.items():
        outcomes = [comparison.outcomes[i] for i in indices]
        mrr_ctx = sum(o.rr_context for o in outcomes) / len(outcomes)
        mrr_conv = sum(o.rr_conventional for o in outcomes) / len(outcomes)
        deltas[label] = mrr_ctx - mrr_conv
        rows.append(
            (
                label,
                len(outcomes),
                f"{min(sizes[i] for i in indices)}-{max(sizes[i] for i in indices)}",
                f"{mrr_conv:.3f}",
                f"{mrr_ctx:.3f}",
                f"{mrr_ctx - mrr_conv:+.3f}",
            )
        )
    print_table(
        "Ablation A8: Dirichlet-LM context sensitivity by context size "
        "(Section 6.3's smoothing remark)",
        ("bucket", "topics", "context sizes", "MRR conv", "MRR ctx", "delta"),
        rows,
    )

    # Loose shape assertion: context-sensitive LM must not collapse, and
    # the overall comparison should not regress badly.
    summary = comparison.summary()
    assert summary["mrr_context"] >= summary["mrr_conventional"] - 0.10
