"""Planner overhead benchmark: cost-based planning vs pre-planned dispatch.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_planner_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_planner_overhead.py --smoke   # CI

Since the unified planner landed, every query the engine serves runs
through three extra steps the direct-call engine did not have: logical
compilation (``compile_query``), candidate pricing, and path selection
(``Optimizer.plan``).  This benchmark measures what those steps cost on
the serving path.

Both arms execute the *identical* physical operators over the identical
workload; the baseline arm wraps the engine's optimizer in a memo that
plans each distinct query once up front, so its steady-state per-query
planning cost is a dict lookup — the closest observable stand-in for
the pre-planner engine's direct dispatch.  The ranked output of both
arms is asserted bit-identical before any timing is trusted, and the
gate is::

    (planned_wall - preplanned_wall) / preplanned_wall  <  5%

Full runs write ``BENCH_planner.json`` at the repo root and exit 1 when
the gate fails; ``--smoke`` shrinks the corpus and repeats but keeps the
gate (CI regression check, no JSON write).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    ContextSearchEngine,
    CorpusConfig,
    generate_corpus,
    select_views,
)
from repro.data import generate_performance_workload  # noqa: E402

FULL_DOCS = 20_000
# Planning cost is corpus-size independent while execution cost is not,
# so the overhead ratio is only meaningful on a corpus big enough that
# queries do real work; 12k docs keeps the smoke honest without the full
# run's build time.
SMOKE_DOCS = 12_000
MAX_OVERHEAD = 0.05
TOP_K = 10


class _MemoisedOptimizer:
    """Plan each distinct (query, mode, force) once; replay thereafter.

    Replayed plans are the same ``ExplainedPlan`` objects, so the engine
    still binds ``plan.actual`` and reports normally — only the planning
    work is amortised away, which is exactly the cost under measurement.

    Cached plans have their view assignments stripped so the baseline
    arm's execution re-matches specs against the catalog, like the
    pre-planner engine did.  (The live planner hands its matching to
    execution, so charging it planning time without crediting the
    matching execution no longer does would overstate its overhead.)
    """

    def __init__(self, inner):
        self.inner = inner
        self.cache = {}

    def plan(self, query, specs, mode, force=None, top_k=None):
        key = (str(query), tuple(specs), mode, force, top_k)
        plan = self.cache.get(key)
        if plan is None:
            plan = self.inner.plan(
                query, specs, mode, force=force, top_k=top_k
            )
            for candidate in plan.candidates:
                candidate.assignment = None
            self.cache[key] = plan
        return plan


def build_workload(num_docs: int, queries_per_count: int):
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    t_c = max(index.num_docs // 50, 10)
    catalog, _ = select_views(index, t_c=t_c, t_v=256)
    workload = generate_performance_workload(
        corpus,
        index,
        t_c=t_c,
        kind="large",
        keyword_counts=(2, 3, 4, 5),
        queries_per_count=queries_per_count,
        seed=3,
    )
    return index, catalog, [wq.query for wq in workload.all_queries()]


def run_batch(engine, queries, loops=1):
    """Wall seconds for ``loops`` passes over the batch, plus the hits."""
    hits = []
    started = time.perf_counter()
    for _ in range(loops):
        hits.clear()
        for query in queries:
            results = engine.search(query, top_k=TOP_K)
            hits.append(
                [(h.doc_id, h.external_id, h.score) for h in results.hits]
            )
    return time.perf_counter() - started, hits


def measure(index, catalog, queries, repeats, loops):
    engine = ContextSearchEngine(index, catalog=catalog)
    memo = _MemoisedOptimizer(engine.optimizer)

    # Warm both arms (index caches, the memo) before timing anything.
    planned_output = run_batch(engine, queries)[1]
    engine.optimizer = memo
    preplanned_output = run_batch(engine, queries)[1]
    engine.optimizer = memo.inner
    if planned_output != preplanned_output:
        raise AssertionError(
            "pre-planned dispatch changed the ranked output"
        )

    # timeit-style sampling: collect then disable the cyclic GC around
    # each sample (per-query garbage is acyclic and freed by refcount),
    # and keep each arm's best wall — the run least disturbed by the
    # machine — so the delta reflects planning work, not scheduler noise.
    planned, preplanned = [], []
    for _ in range(repeats):
        for arm, times in ((memo.inner, planned), (memo, preplanned)):
            engine.optimizer = arm
            gc.collect()
            gc.disable()
            try:
                times.append(run_batch(engine, queries, loops)[0])
            finally:
                gc.enable()
        engine.optimizer = memo.inner
    return min(planned) / loops, min(preplanned) / loops


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, fewer repeats, no JSON write (CI gate)",
    )
    parser.add_argument(
        "--repeats", type=int, default=7, help="timing repeats per arm"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_planner.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    queries_per_count = 5 if args.smoke else 10
    repeats = 5 if args.smoke else args.repeats
    loops = 5 if args.smoke else 3

    print(f"corpus: {num_docs} docs ...", flush=True)
    index, catalog, queries = build_workload(num_docs, queries_per_count)
    print(
        f"workload: {len(queries)} large-context queries, "
        f"{len(catalog)} views",
        flush=True,
    )

    planned, preplanned = measure(index, catalog, queries, repeats, loops)
    overhead = (planned - preplanned) / preplanned
    per_query_us = (planned - preplanned) / len(queries) * 1e6
    print(
        f"planned wall={planned * 1000:.1f}ms "
        f"pre-planned wall={preplanned * 1000:.1f}ms "
        f"overhead={overhead * 100:.2f}% "
        f"({per_query_us:.0f}us/query)",
        flush=True,
    )

    if not args.smoke:
        payload = {
            "benchmark": "planner overhead, cost-based vs pre-planned",
            "python": platform.python_version(),
            "num_docs": num_docs,
            "num_queries": len(queries),
            "top_k": TOP_K,
            "repeats": repeats,
            "results_bit_identical": True,
            "planned_wall_seconds": planned,
            "preplanned_wall_seconds": preplanned,
            "overhead_fraction": overhead,
            "planning_us_per_query": per_query_us,
            "max_allowed_overhead_fraction": MAX_OVERHEAD,
        }
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")

    if overhead >= MAX_OVERHEAD:
        print(
            f"FAIL: planner overhead {overhead * 100:.2f}% >= "
            f"{MAX_OVERHEAD * 100:.0f}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
