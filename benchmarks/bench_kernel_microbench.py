"""Microbenchmark: columnar adaptive kernel vs the seed skip-pointer merge.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_kernel_microbench.py           # full
    PYTHONPATH=src python benchmarks/bench_kernel_microbench.py --smoke   # CI

Arms, per workload:

* ``seed_merge``  — :func:`intersect_skip_merge`, the seed's per-element
  skip-pointer merge, preserved verbatim as the reference kernel;
* ``naive_merge`` — the no-skip two-pointer merge (``use_skips=False``);
* ``adaptive``    — the columnar kernel behind :func:`intersect`
  (galloping bisect on asymmetric lists, dense C-path otherwise).

Workloads are 2-way intersections of posting lists at several length
ratios; the headline acceptance row is the symmetric 100k × 100k case,
where the adaptive kernel must beat the seed merge by >= 3x.  All arms
are asserted to return identical doc-id sequences before any timing is
trusted.  Full runs write ``BENCH_intersection.json`` at the repo root
(before/after medians, speedups, machine-readable); ``--smoke`` shrinks
the lists and skips the JSON write — it exists to prove in CI that every
kernel arm still runs and agrees.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.index.intersection import intersect, intersect_skip_merge  # noqa: E402
from repro.index.postings import CostCounter, PostingList  # noqa: E402

FULL_LEN = 100_000
SMOKE_LEN = 5_000
RATIOS = (1, 8, 100, 1000)
HEADLINE_RATIO = 1
MIN_SPEEDUP = 3.0


def make_lists(long_len: int, ratio: int):
    """A ``long_len``-element list and one ``ratio``x shorter, 100% hits.

    Jittered stride-3 docids on the long list keep the values irregular
    enough that nothing degenerates into ``range`` arithmetic.
    """
    long_list = PostingList.from_pairs(
        "long", ((3 * i + (i % 2), 1) for i in range(long_len))
    )
    short_ids = list(long_list.doc_ids)[::ratio]
    short_list = PostingList.from_pairs("short", ((i, 1) for i in short_ids))
    return short_list, long_list


ARMS = {
    "seed_merge": lambda a, b, c: intersect_skip_merge(a, b, c),
    "naive_merge": lambda a, b, c: intersect(a, b, c, use_skips=False),
    "adaptive": lambda a, b, c: intersect(a, b, c),
}


def time_arm(fn, a, b, repeats: int) -> float:
    """Median wall-clock seconds of ``fn(a, b, counter)`` over repeats."""
    samples = []
    for _ in range(repeats):
        counter = CostCounter()
        started = time.perf_counter()
        fn(a, b, counter)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def run(long_len: int, repeats: int):
    rows = []
    for ratio in RATIOS:
        short_list, long_list = make_lists(long_len, ratio)
        results = {
            name: fn(short_list, long_list, CostCounter())
            for name, fn in ARMS.items()
        }
        reference = results["seed_merge"]
        for name, result in results.items():
            if list(result) != list(reference):
                raise AssertionError(
                    f"kernel {name} disagrees with seed merge at ratio 1:{ratio}"
                )
        timings = {
            name: time_arm(fn, short_list, long_list, repeats)
            for name, fn in ARMS.items()
        }
        rows.append(
            {
                "workload": f"2-way 1:{ratio}",
                "ratio": ratio,
                "long_len": len(long_list),
                "short_len": len(short_list),
                "result_len": len(reference),
                "seed_merge_ms": timings["seed_merge"] * 1000,
                "naive_merge_ms": timings["naive_merge"] * 1000,
                "adaptive_ms": timings["adaptive"] * 1000,
                "speedup_vs_seed": timings["seed_merge"] / timings["adaptive"],
                "speedup_vs_naive": timings["naive_merge"] / timings["adaptive"],
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny lists, 1 repeat, no JSON write (CI agreement check)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per arm"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_intersection.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    long_len = SMOKE_LEN if args.smoke else FULL_LEN
    repeats = 1 if args.smoke else args.repeats
    rows = run(long_len, repeats)

    header = (
        f"{'workload':<14} {'n_long':>8} {'n_short':>8} "
        f"{'seed ms':>9} {'naive ms':>9} {'adaptive ms':>11} {'vs seed':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workload']:<14} {row['long_len']:>8} {row['short_len']:>8} "
            f"{row['seed_merge_ms']:>9.2f} {row['naive_merge_ms']:>9.2f} "
            f"{row['adaptive_ms']:>11.2f} {row['speedup_vs_seed']:>7.1f}x"
        )

    headline = next(r for r in rows if r["ratio"] == HEADLINE_RATIO)
    print(
        f"\nheadline (symmetric {headline['long_len']:,} x "
        f"{headline['short_len']:,}): "
        f"{headline['speedup_vs_seed']:.1f}x vs seed merge"
    )

    if args.smoke:
        print("smoke mode: all kernels agree; JSON not written")
        return 0

    payload = {
        "benchmark": "2-way posting-list intersection, adaptive kernel vs seed",
        "python": platform.python_version(),
        "long_len": long_len,
        "repeats": repeats,
        "min_required_speedup": MIN_SPEEDUP,
        "headline_speedup_vs_seed": headline["speedup_vs_seed"],
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if headline["speedup_vs_seed"] < MIN_SPEEDUP:
        print(
            f"FAIL: headline speedup {headline['speedup_vs_seed']:.2f}x "
            f"< required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
