"""Cluster benchmark: router + subprocess shard workers vs single node.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_cluster.py           # full
    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke   # CI

Every arm serves the same workload of heavy-context queries over real
sockets.  The workers are genuine ``python -m repro worker`` subprocesses
on localhost — separate interpreters, separate GILs — loading per-shard
v4 artefacts written by ``save_sharded_index``; the router runs
in-process so its metrics are directly inspectable.

Arms:

* **single** — one :class:`ServerThread` over the flat engine: the
  baseline the cluster has to justify itself against;
* **cluster-2 / cluster-4** — a router scatter-gathering over 2 and 4
  subprocess workers (replication 1): throughput scaling across
  processes;
* **kill-replica** — 2 shards x 2 replicas; one replica of shard 0 is
  SIGTERMed between two timed passes of the same workload, with health
  probes off so it stays in rotation and every routed attempt at the
  corpse must fail over in-flight.  Gates: **zero** query errors or
  sheds, at least
  one failover counted in router metrics, rankings still bit-identical,
  and p99 bounded by one failed attempt plus a normal query (with
  slack) — failover must cost a retry, not a timeout storm.
* **adaptive** — a drifting workload (two phases over disjoint context
  bands) against a live 2-shard cluster.  The router reselects view
  catalogs against the whole-collection reference index and *ships*
  them to the workers (crc-verified ``install_catalog`` frames; each
  worker re-materialises the views over its own shard slice and acks
  with its version vector).  Gates: the shipped catalog lifts the
  drifted phase's view-hit rate over the stale phase-A catalog, every
  worker acks the router's generation, and rankings stay bit-identical
  through **every** swap — checked before any rate or timing is
  trusted.

Before any timing is trusted, every workload query is issued once
through the router in each of the three modes and asserted bit-identical
(external ids + float scores, and error strings for failing queries)
to the in-process engine; the timed runs then re-check every kept
response.  Full runs write ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    ContextSearchEngine,
    CorpusConfig,
    IncrementalReselector,
    generate_corpus,
)
from repro.core.query import parse_query  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.index.sharded import ShardedInvertedIndex  # noqa: E402
from repro.selection import workload_from_queries  # noqa: E402
from repro.views import ViewSizeEstimator, WideSparseTable  # noqa: E402
from repro.service import (  # noqa: E402
    ServerThread,
    ServiceClient,
    ServiceConfig,
    run_load,
)
from repro.service.cluster import ClusterConfig, router_thread  # noqa: E402
from repro.storage import save_sharded_index  # noqa: E402

FULL_DOCS = 8_000
SMOKE_DOCS = 1_200
TOP_K = 10
MODES = ("context", "conventional", "disjunctive")
ATTEMPT_TIMEOUT_MS = 2000.0
WORKER_STARTUP_S = 60.0


def build_workload(num_docs: int, num_queries: int, num_contexts: int):
    """A flat engine plus heavy-context queries (the serving shape the
    cluster exists for: context materialisation dominates, so shard
    parallelism has something to split)."""
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )
    heavy = predicates[-(num_contexts + 2):]
    contexts = [
        f"{heavy[-1]} {heavy[-2]} {heavy[i]}" for i in range(num_contexts)
    ]
    terms = [
        t
        for t in sorted(index.vocabulary, key=index.document_frequency)
        if index.document_frequency(t) >= 2
    ]
    band = terms[len(terms) // 2: len(terms) // 2 + num_queries]
    if len(band) < num_queries:
        band = terms[-num_queries:]
    queries = [
        f"{kw} | {contexts[i % len(contexts)]}" for i, kw in enumerate(band)
    ]
    return ContextSearchEngine(index), index, queries


def build_drift_phases(engine, index, num_queries: int, num_contexts: int):
    """Two query phases over disjoint context bands — phase B is genuine
    workload drift (none of its context sets appear in phase A), so a
    catalog trained on phase A cannot answer phase B from views."""
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )
    width = num_contexts + 2
    if len(predicates) < 2 * width:
        raise RuntimeError(
            f"corpus has {len(predicates)} predicates, need {2 * width} "
            "for two disjoint context bands"
        )
    bands = [predicates[-width:], predicates[-2 * width: -width]]
    terms = [
        t
        for t in sorted(index.vocabulary, key=index.document_frequency)
        if index.document_frequency(t) >= 2
    ]
    mid = len(terms) // 2
    phases = []
    for band_id, heavy in enumerate(bands):
        contexts = [
            f"{heavy[-1]} {heavy[-2]} {heavy[i]}"
            for i in range(num_contexts)
        ]
        lo = mid + band_id * num_queries
        keywords = terms[lo: lo + num_queries]
        if len(keywords) < num_queries:
            keywords = terms[-num_queries:]
        candidates = [
            f"{kw} | {contexts[i % len(contexts)]}"
            for i, kw in enumerate(keywords)
        ]
        # Keep only queries the reference engine answers: the view-hit
        # gate needs servable queries (failing ones are covered by the
        # bit-identity arms, error strings and all).
        queries = [
            q
            for q in candidates
            if reference_outcome(engine, q, "context")[0] == "ok"
        ]
        if len(queries) < max(4, num_contexts):
            raise RuntimeError(
                f"drift band {band_id} kept {len(queries)}/"
                f"{len(candidates)} servable queries — corpus too sparse"
            )
        phases.append(queries)
    return phases


# ---------------------------------------------------------------------------
# Subprocess worker management


def wait_for_worker(host: str, port: int, proc) -> None:
    deadline = time.monotonic() + WORKER_STARTUP_S
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise RuntimeError(
                f"worker on port {port} exited {proc.returncode}: {err}"
            )
        try:
            client = ServiceClient(host, port, timeout=5.0)
        except OSError:
            time.sleep(0.1)
            continue
        try:
            health = client.request({"op": "healthz"})
        finally:
            client.close()
        if health.get("status") == "ok":
            return
        time.sleep(0.1)
    raise RuntimeError(f"worker on port {port} never became healthy")


class ClusterArm:
    """Subprocess workers + an in-process router, started and torn down
    around one arm of the benchmark."""

    def __init__(self, shard_files, replication: int):
        self.shard_files = shard_files
        self.replication = replication
        self.procs = []
        self.router = None

    def __enter__(self):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        groups = []
        try:
            for shard_id, shard_file in enumerate(self.shard_files):
                replicas = []
                for _ in range(self.replication):
                    proc = subprocess.Popen(
                        [
                            sys.executable, "-u", "-m", "repro", "worker",
                            "--index", str(shard_file),
                            "--shard-id", str(shard_id),
                            "--port", "0",
                        ],
                        env=env,
                        stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE,
                        text=True,
                    )
                    # The worker prints "... on host:port" once bound.
                    banner = proc.stdout.readline()
                    try:
                        address = banner.rsplit("on ", 1)[1].strip()
                        host, port = address.rsplit(":", 1)
                        port = int(port)
                    except (IndexError, ValueError):
                        proc.terminate()
                        _, err = proc.communicate()
                        raise RuntimeError(
                            f"worker printed no address: {banner!r} {err}"
                        ) from None
                    wait_for_worker(host, port, proc)
                    self.procs.append(proc)
                    replicas.append(f"{host}:{port}")
                groups.append({"shard": shard_id, "replicas": replicas})
            cluster = ClusterConfig.from_payload(
                {
                    "kind": "cluster",
                    "num_shards": len(self.shard_files),
                    "replication": self.replication,
                    "groups": groups,
                    "router": {
                        # No probe sweep mid-arm: failovers in the kill
                        # arm must come from in-flight retries, and a
                        # probe marking the dead replica down first
                        # would hide them.
                        "health_interval_s": 300.0,
                        "fail_threshold": 2,
                        "attempt_timeout_ms": ATTEMPT_TIMEOUT_MS,
                    },
                }
            )
            self.router = router_thread(
                cluster,
                # Result cache off: timed arms must measure scatter-
                # gather, not cache hits, and the kill arm's failover
                # gate needs every repeat to reach a shard.
                ServiceConfig(
                    workers=1, drain_timeout=0.5, cache_enabled=False
                ),
            )
            self.router.start()
            return self
        except BaseException:
            self.__exit__(None, None, None)
            raise

    def __exit__(self, *exc_info):
        if self.router is not None:
            self.router.stop(timeout=15.0)
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.communicate(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()

    @property
    def address(self):
        return self.router.address

    def kill_worker(self, index: int) -> None:
        self.procs[index].send_signal(signal.SIGTERM)

    def metrics(self) -> dict:
        client = ServiceClient(*self.router.address)
        try:
            return client.request({"op": "metrics"})
        finally:
            client.close()


# ---------------------------------------------------------------------------
# Bit-identity


def reference_outcome(engine, query: str, mode: str):
    try:
        if mode == "conventional":
            results = engine.search_conventional(query, top_k=TOP_K)
        elif mode == "disjunctive":
            results = engine.search_disjunctive(query, top_k=TOP_K)
        else:
            results = engine.search(query, top_k=TOP_K)
    except ReproError as exc:
        return "error", f"{type(exc).__name__}: {exc}"
    return "ok", [(h.external_id, h.score) for h in results.hits]


def assert_identical_before_timing(engine, address, queries) -> int:
    """Issue every query in every mode through the router once and
    compare against the in-process engine, before any timed run."""
    checked = 0
    client = ServiceClient(*address)
    try:
        for mode in MODES:
            for query in queries:
                response = client.request(
                    {"op": "query", "query": query, "mode": mode,
                     "top_k": TOP_K}
                )
                status, want = reference_outcome(engine, query, mode)
                if response["status"] != status:
                    raise AssertionError(
                        f"router status {response['status']!r} != "
                        f"{status!r} for {query!r} ({mode})"
                    )
                if status == "ok":
                    got = [(h["doc"], h["score"]) for h in response["hits"]]
                    if got != want:
                        raise AssertionError(
                            f"router ranking differs for {query!r} ({mode}):"
                            f"\n  router: {got}\n  serial: {want}"
                        )
                elif response["error"] != want:
                    raise AssertionError(
                        f"router error differs for {query!r} ({mode}): "
                        f"{response['error']!r} != {want!r}"
                    )
                checked += 1
    finally:
        client.close()
    return checked


def assert_responses_identical(engine, queries, repeat, responses) -> int:
    workload = list(queries) * repeat
    for i, query in enumerate(workload):
        response = responses.get(i)
        if response is None:
            raise AssertionError(f"query {i} has no ok response")
        _, want = reference_outcome(engine, query, "context")
        got = [(h["doc"], h["score"]) for h in response["hits"]]
        if got != want:
            raise AssertionError(
                f"served ranking differs from serial for {query!r}:\n"
                f"  served: {got}\n  serial: {want}"
            )
    return len(workload)


# ---------------------------------------------------------------------------
# Arms


def run_single(engine, queries, threads, repeat):
    config = ServiceConfig(workers=1, coalesce=False, cache_enabled=False)
    with ServerThread(engine, config) as st:
        report = run_load(
            st.address, queries, threads=threads, top_k=TOP_K,
            repeat=repeat, keep_responses=True,
        )
    if report.errors or report.ok != report.sent:
        raise AssertionError(f"single arm had failures: {report.to_dict()}")
    checked = assert_responses_identical(
        engine, queries, repeat, report.responses
    )
    print(
        f"single:    {report.qps:.1f} qps "
        f"(p50={report.latency_ms(50):.1f}ms "
        f"p99={report.latency_ms(99):.1f}ms); "
        f"{checked} rankings bit-identical",
        flush=True,
    )
    return report


def run_cluster(engine, shard_files, queries, threads, repeat):
    with ClusterArm(shard_files, replication=1) as arm:
        checked = assert_identical_before_timing(engine, arm.address, queries)
        report = run_load(
            arm.address, queries, threads=threads, top_k=TOP_K,
            repeat=repeat, keep_responses=True,
        )
        if report.errors or report.shed or report.ok != report.sent:
            raise AssertionError(
                f"cluster-{len(shard_files)} arm had failures: "
                f"{report.to_dict()}"
            )
        assert_responses_identical(engine, queries, repeat, report.responses)
        metrics = arm.metrics()
    print(
        f"cluster-{len(shard_files)}: {report.qps:.1f} qps "
        f"(p50={report.latency_ms(50):.1f}ms "
        f"p99={report.latency_ms(99):.1f}ms); "
        f"{checked} pre-timing checks + "
        f"{report.ok} timed rankings bit-identical",
        flush=True,
    )
    return report, metrics


def run_kill_replica(engine, shard_files, queries, threads, repeat,
                     baseline_p99_ms):
    """2 shards x 2 replicas; SIGTERM one replica of shard 0 mid-workload.

    The workload runs in two timed passes: all replicas up, then — with
    the first replica of shard 0 dead but still in rotation (probes are
    effectively off, see ``health_interval_s``) — a second pass where the
    router keeps routing attempts at the corpse and must fail over to
    its sibling, in-flight, on every hit.  That makes the failover gate
    deterministic instead of racing a wall-clock timer against how fast
    the load happens to drain.
    """
    with ClusterArm(shard_files, replication=2) as arm:
        assert_identical_before_timing(engine, arm.address, queries)
        before = run_load(
            arm.address, queries, threads=threads, top_k=TOP_K,
            repeat=repeat, keep_responses=True,
        )
        arm.kill_worker(0)
        arm.procs[0].wait(timeout=15.0)
        after = run_load(
            arm.address, queries, threads=threads, top_k=TOP_K,
            repeat=repeat, keep_responses=True,
        )
        metrics = arm.metrics()
    for label, report in (("pre-kill", before), ("post-kill", after)):
        if report.errors or report.shed or report.timeouts:
            raise AssertionError(
                f"kill arm had {label} failures: {report.to_dict()}"
            )
        if report.ok != report.sent:
            raise AssertionError(
                f"kill arm answered {report.ok}/{report.sent} {label}"
            )
        assert_responses_identical(engine, queries, repeat, report.responses)
    failovers = metrics["router"]["failovers"]
    if failovers < 1:
        raise AssertionError(
            "kill arm counted no failovers — the dead replica was never "
            "retried despite staying in rotation"
        )
    # A failed-over query pays at most one failed attempt (bounded by
    # the per-attempt deadline; a refused localhost connect is far
    # cheaper) plus one normal query; 3x baseline covers queueing noise.
    p99 = after.latency_ms(99)
    bound = ATTEMPT_TIMEOUT_MS + 3.0 * max(baseline_p99_ms, 1.0)
    if p99 > bound:
        raise AssertionError(
            f"kill arm post-kill p99 {p99:.1f}ms exceeds failover bound "
            f"{bound:.1f}ms"
        )
    print(
        f"kill-replica: {before.ok + after.ok}/{before.sent + after.sent} "
        f"ok, 0 errors, {failovers} failovers, "
        f"post-kill p99={p99:.1f}ms (bound {bound:.1f}ms); "
        "rankings bit-identical",
        flush=True,
    )
    return after, metrics


def run_adaptive(engine, index, shard_files, phases, threads, repeat):
    """Drifting workload against a live 2-shard cluster, static vs
    shipped-catalog (see the module docstring's adaptive bullet)."""
    queries_a, queries_b = phases
    contexts = {
        frozenset(parse_query(q).predicates) for q in queries_a + queries_b
    }
    estimator = ViewSizeEstimator(WideSparseTable.from_index(index), seed=0)
    # Enough budget to cover either phase outright (plus headroom):
    # the gate measures adaptivity, not budget pressure.
    budget = int(1.2 * sum(estimator.exact(c) for c in contexts)) + 1
    reselector = IncrementalReselector(storage_budget=budget)

    def reselect(queries, trigger):
        workload = workload_from_queries(
            [parse_query(q) for q in queries]
        )
        return reselector.reselect(index, workload, trigger=trigger)

    with ClusterArm(shard_files, replication=1) as arm:
        service = arm.router.service

        def view_hit_rate(queries) -> float:
            client = ServiceClient(*arm.address)
            hits = 0
            try:
                for query in queries:
                    response = client.request(
                        {"op": "query", "query": query, "top_k": TOP_K}
                    )
                    if response["status"] != "ok":
                        raise AssertionError(
                            f"adaptive arm query failed: {response}"
                        )
                    path = (
                        (response.get("report") or {})
                        .get("resolution", {})
                        .get("path")
                    ) or ""
                    # Any shard answering from views counts; shards
                    # whose slice has no matching docs fall back per
                    # shard ("sharded-mixed").
                    hits += path in ("sharded-views", "sharded-mixed")
            finally:
                client.close()
            return hits / len(queries)

        def timed(queries):
            report = run_load(
                arm.address, queries, threads=threads, top_k=TOP_K,
                repeat=repeat, keep_responses=True,
            )
            if report.errors or report.shed or report.ok != report.sent:
                raise AssertionError(
                    f"adaptive arm had failures: {report.to_dict()}"
                )
            assert_responses_identical(
                engine, queries, repeat, report.responses
            )
            return report

        everything = queries_a + queries_b
        checked = assert_identical_before_timing(
            engine, arm.address, everything
        )

        # Swap 1: train on phase A, ship to the workers.
        catalog_a, report_a = reselect(queries_a, "train")
        generation = service.install_catalog(
            catalog_a, info=report_a.to_dict()
        )
        assert generation == 1, generation
        checked += assert_identical_before_timing(
            engine, arm.address, everything
        )
        hit_a_on_a = view_hit_rate(queries_a)
        static_hit = view_hit_rate(queries_b)
        static_load = timed(queries_b)

        # The workload drifts to phase B; swap 2 ships the reselection.
        catalog_b, report_b = reselect(queries_b, "drift")
        generation = service.install_catalog(
            catalog_b, info=report_b.to_dict()
        )
        assert generation == 2, generation
        checked += assert_identical_before_timing(
            engine, arm.address, queries_b
        )
        adaptive_hit = view_hit_rate(queries_b)
        adaptive_load = timed(queries_b)

        # Swap 3: dropping every catalog is just as rank-safe.
        assert service.install_catalog(None) == 3
        checked += assert_identical_before_timing(
            engine, arm.address, queries_b
        )

        # Every worker acked the router's final generation.
        client = ServiceClient(*arm.address)
        try:
            health = client.request({"op": "healthz"})
        finally:
            client.close()
        for group in health["groups"]:
            for replica in group["replicas"]:
                acked = (replica.get("version_vector") or {}).get(
                    "catalog_generation"
                )
                if acked != 3:
                    raise AssertionError(
                        f"worker {replica['address']} acked catalog "
                        f"generation {acked}, router is at 3"
                    )

    if hit_a_on_a < 0.9:
        raise AssertionError(
            f"phase-A catalog missed its own workload: "
            f"view-hit rate {hit_a_on_a:.2f}"
        )
    if adaptive_hit <= static_hit:
        raise AssertionError(
            f"shipped catalog did not lift the drifted view-hit rate: "
            f"static {static_hit:.2f}, adaptive {adaptive_hit:.2f}"
        )
    if adaptive_hit < 0.9:
        raise AssertionError(
            f"shipped catalog view-hit rate {adaptive_hit:.2f} < 0.9 on "
            "the workload it was selected for"
        )
    print(
        f"adaptive:  drifted view-hit rate {static_hit:.2f} -> "
        f"{adaptive_hit:.2f} after shipping "
        f"({report_b.built_views} built, {report_b.reused_views} reused); "
        f"static {static_load.qps:.1f} qps vs shipped "
        f"{adaptive_load.qps:.1f} qps; {checked} rankings bit-identical "
        "across 3 swaps",
        flush=True,
    )
    return {
        "phase_a_queries": len(queries_a),
        "phase_b_queries": len(queries_b),
        "storage_budget": budget,
        "view_hit_rate_phase_a": hit_a_on_a,
        "view_hit_rate_drifted_static": static_hit,
        "view_hit_rate_drifted_shipped": adaptive_hit,
        "drift_reselection": report_b.to_dict(),
        "static": static_load.to_dict(),
        "shipped": adaptive_load.to_dict(),
        "swaps": 3,
        "rankings_bit_identical_across_swaps": True,
    }


# ---------------------------------------------------------------------------


def shard_artifacts(index, num_shards: int, directory: Path):
    """Write per-shard v4 artefacts for subprocess workers to load."""
    sharded = ShardedInvertedIndex.from_index(
        index, num_shards, partitioner="hash"
    )
    manifest = directory / f"c{num_shards}.bin"
    save_sharded_index(sharded, manifest, format=4)
    files = [
        directory / f"c{num_shards}.shard{i}.bin" for i in range(num_shards)
    ]
    for path in files:
        if not path.exists():
            raise RuntimeError(f"expected shard artefact {path} missing")
    return files


def run(num_docs, num_queries, num_contexts, threads, repeat):
    print(f"corpus: {num_docs} docs ...", flush=True)
    engine, index, queries = build_workload(
        num_docs, num_queries, num_contexts
    )
    print(
        f"workload: {len(queries)} heavy-context queries, "
        f"{threads} clients, repeat={repeat}",
        flush=True,
    )
    results = {}
    with tempfile.TemporaryDirectory(prefix="bench_cluster_") as tmp:
        tmp = Path(tmp)
        two = shard_artifacts(index, 2, tmp)
        four = shard_artifacts(index, 4, tmp)

        single = run_single(engine, queries, threads, repeat)
        results["single"] = single.to_dict()

        cluster2, metrics2 = run_cluster(engine, two, queries, threads, repeat)
        results["cluster_2"] = {
            **cluster2.to_dict(),
            "router": metrics2["router"],
        }
        cluster4, metrics4 = run_cluster(
            engine, four, queries, threads, repeat
        )
        results["cluster_4"] = {
            **cluster4.to_dict(),
            "router": metrics4["router"],
        }
        for count, report in (("2", cluster2), ("4", cluster4)):
            speedup = report.qps / single.qps if single.qps else float("inf")
            results[f"cluster_{count}"]["speedup_vs_single"] = speedup
            print(f"cluster-{count} vs single: {speedup:.2f}x", flush=True)

        kill, kill_metrics = run_kill_replica(
            engine, two, queries, threads, repeat,
            baseline_p99_ms=cluster2.latency_ms(99),
        )
        results["kill_replica"] = {
            **kill.to_dict(),
            "router": kill_metrics["router"],
        }

        phases = build_drift_phases(
            engine, index,
            num_queries=max(6, len(queries) // 2),
            num_contexts=2,
        )
        results["adaptive"] = run_adaptive(
            engine, index, two, phases, threads, repeat
        )
    engine.close()
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no JSON write (CI correctness check: "
        "bit-identity, zero-error failover, clean shutdown)",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="concurrent load clients"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_cluster.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        run(
            SMOKE_DOCS, num_queries=12, num_contexts=2,
            threads=min(args.threads, 4), repeat=2,
        )
        print(
            "smoke mode: rankings bit-identical through subprocess workers "
            "in all modes, kill arm zero-error with counted failovers, "
            "shipped catalogs lift the drifted view-hit rate rank-safely, "
            "clean shutdown; JSON not written"
        )
        return 0

    results = run(
        FULL_DOCS, num_queries=48, num_contexts=3,
        threads=args.threads, repeat=3,
    )
    payload = {
        "benchmark": "distributed serving: router + subprocess shard "
        "workers vs single node",
        "python": platform.python_version(),
        "host_cpu_cores": os.cpu_count() or 1,
        "num_docs": FULL_DOCS,
        "num_queries": 48,
        "num_contexts": 3,
        "threads": args.threads,
        "repeat": 3,
        "top_k": TOP_K,
        "attempt_timeout_ms": ATTEMPT_TIMEOUT_MS,
        "rankings_bit_identical_to_single_node": True,
        "kill_arm_zero_errors": True,
        "adaptive_arm_rank_safe_swaps": True,
        "arms": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
