"""Figure 7: execution time for large-context queries (2–5 keywords).

Three arms per keyword count, as in the paper:

1. the conventional query ``Q_t = Q_k ∪ P`` (same result set, global
   statistics — the floor);
2. ``Q_c`` **with** materialized views;
3. ``Q_c`` **without** views (straightforward Figure 3 plan).

Expected shape: with-views lands within a small constant factor of
conventional (paper: ~2×); without-views is many times slower and its
gap grows with the context-materialisation cost.  The paper's absolute
numbers (~100 ms on 18 M docs) are testbed-specific; we print both
wall-clock and the cost-model counters, which are testbed-independent.
"""

import pytest

from conftest import print_table

KEYWORD_COUNTS = (2, 3, 4, 5)

_results = {}


def _run_bucket(engine, bucket, mode):
    total_cost = 0
    for wq in bucket:
        if mode == "conventional":
            r = engine.search_conventional(wq.query, top_k=20)
        else:
            r = engine.search(wq.query, top_k=20)
        total_cost += r.report.counter.model_cost
    return total_cost


@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_conventional(benchmark, engine_plain, large_workload, n_keywords):
    bucket = large_workload.queries[n_keywords]
    cost = benchmark.pedantic(
        lambda: _run_bucket(engine_plain, bucket, "conventional"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _results[("conventional", n_keywords)] = (benchmark.stats["mean"], cost / len(bucket))


@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_context_with_views(benchmark, engine_with_views, large_workload, n_keywords):
    bucket = large_workload.queries[n_keywords]
    cost = benchmark.pedantic(
        lambda: _run_bucket(engine_with_views, bucket, "context"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _results[("with views", n_keywords)] = (benchmark.stats["mean"], cost / len(bucket))
    # Every query in the large bucket must actually take the views path.
    sample = engine_with_views.search(bucket[0].query)
    assert sample.report.resolution.path == "views"


@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_context_without_views(benchmark, engine_plain, large_workload, n_keywords):
    bucket = large_workload.queries[n_keywords]
    cost = benchmark.pedantic(
        lambda: _run_bucket(engine_plain, bucket, "context"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _results[("no views", n_keywords)] = (benchmark.stats["mean"], cost / len(bucket))


def test_figure7_table(benchmark):
    """Assemble and print the Figure 7 series; check the paper's shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_results) < 3 * len(KEYWORD_COUNTS):
        pytest.skip("arms did not all run (use --benchmark-only on the whole file)")

    rows = []
    for n in KEYWORD_COUNTS:
        conv_t, conv_c = _results[("conventional", n)]
        view_t, view_c = _results[("with views", n)]
        plain_t, plain_c = _results[("no views", n)]
        rows.append(
            (
                n,
                f"{conv_t * 1000:.1f}",
                f"{view_t * 1000:.1f}",
                f"{plain_t * 1000:.1f}",
                f"{view_c:.0f}",
                f"{plain_c:.0f}",
            )
        )
    print_table(
        "Figure 7: large-context queries, 50 per point "
        "(ms per 50-query batch; model cost per query)",
        ("#kw", "conv ms", "Qc+views ms", "Qc no-views ms", "views cost", "no-views cost"),
        rows,
    )

    # Shape assertions: views close to conventional, straightforward slower.
    for n in KEYWORD_COUNTS:
        conv_t, _ = _results[("conventional", n)]
        view_t, view_c = _results[("with views", n)]
        plain_t, plain_c = _results[("no views", n)]
        assert plain_c > view_c, f"straightforward should cost more (n={n})"
    total_view = sum(_results[("with views", n)][0] for n in KEYWORD_COUNTS)
    total_plain = sum(_results[("no views", n)][0] for n in KEYWORD_COUNTS)
    total_conv = sum(_results[("conventional", n)][0] for n in KEYWORD_COUNTS)
    assert total_plain > total_view, "views must beat the straightforward plan"
    assert total_view < 8 * total_conv, "views should stay near conventional"
