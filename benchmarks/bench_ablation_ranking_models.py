"""Ablation A4: ranking-model generality (Table 1's framework claim).

The paper's framework claims any statistics-based ranking model becomes
context-sensitive by swapping ``S_c(D)`` for ``S_c(D_P)``.  This bench
runs the Figure 6 experiment under BM25 and the Dirichlet language model
(in addition to the paper's pivoted TF-IDF) and reports the same
summary; the context-sensitive variant should not regress for any model
— and the LM arm exercises the ``tc`` (SUM of tf) parameter columns.
"""

import pytest

from repro import BM25, ContextSearchEngine, DirichletLanguageModel, PivotedNormalizationTFIDF
from repro.eval import run_quality_comparison

from conftest import print_table

MODELS = (
    PivotedNormalizationTFIDF(),
    BM25(),
    DirichletLanguageModel(mu=500.0),
)

_rows = []


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_model_quality(benchmark, bench_index, quality_topics, model):
    engine = ContextSearchEngine(bench_index, ranking=model)
    comparison = benchmark.pedantic(
        lambda: run_quality_comparison(engine, quality_topics, k=20),
        rounds=1,
        iterations=1,
    )
    summary = comparison.summary()
    _rows.append(
        (
            model.name,
            f"{summary['mean_precision_conventional']:.2f}",
            f"{summary['mean_precision_context']:.2f}",
            f"{summary['mrr_conventional']:.2f}",
            f"{summary['mrr_context']:.2f}",
            f"{summary['context_wins']}/{summary['conventional_wins']}/{summary['ties']}",
        )
    )
    assert comparison.wins >= comparison.losses


def test_ranking_models_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) < len(MODELS):
        pytest.skip("arms did not all run")
    print_table(
        "Ablation A4: context sensitivity across ranking models (30 topics)",
        ("model", "P@20 conv", "P@20 ctx", "MRR conv", "MRR ctx", "W/L/T"),
        _rows,
    )
