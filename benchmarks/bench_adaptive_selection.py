"""Adaptive vs static view selection under workload drift — the PR-8 gate.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_adaptive_selection.py          # full
    PYTHONPATH=src python benchmarks/bench_adaptive_selection.py --smoke  # CI

The experiment behind the continuous-selection PR (it grew out of
``bench_ablation_workload_drift.py``'s one-shot coverage comparison):

* generate D **drift phases** — performance workloads over the same
  collection from different seeds, each replayed for several passes
  (sustained drift, the regime where adaptation can pay off);
* the **static arm** serves every phase with a workload-driven catalog
  trained on phase 0 and never touched again;
* the **adaptive arm** starts from the *same* catalog, folds every
  served query into a :class:`~repro.service.workload.WorkloadRecorder`,
  and after the first pass of each drifted phase runs one
  :meth:`~repro.service.adaptive.AdaptiveSelectionController.run_once`
  pass — reselect under the same storage budget, hot-swap the catalog.

Gates (full mode, aggregated over the drifted phases):

* adaptive **view-hit rate** strictly above static;
* adaptive **mean predicted+actual model cost** strictly below static;
* rankings **bit-identical** everywhere — every query agrees across the
  two arms, and at every swap point the pre-swap, post-swap, and
  forced-straightforward answers agree (catalog swaps are rank-safe);
* a :class:`~repro.lifecycle.engine.LifecycleEngine`
  ``install_catalog`` swap is also bit-identical and bumps the
  generation.

Full runs write ``BENCH_adaptive.json`` at the repo root and exit 1 on
any gate failure; ``--smoke`` shrinks everything and checks
bit-identity plus a non-strict hit-rate gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    AdaptiveConfig,
    AdaptiveSelectionController,
    ContextSearchEngine,
    CorpusConfig,
    IncrementalReselector,
    WorkloadRecorder,
    generate_corpus,
    generate_performance_workload,
)
from repro.selection import workload_from_queries  # noqa: E402
from repro.views import ViewSizeEstimator, WideSparseTable  # noqa: E402

FULL_DOCS = 8_000
SMOKE_DOCS = 1_500
PHASE_SEEDS = (101, 505, 909)  # phase 0 trains the static catalog
FULL_QUERIES_PER_COUNT = 15
SMOKE_QUERIES_PER_COUNT = 8
REPEAT_PASSES = 3  # each phase replays its queries this many times
PROBES_PER_SWAP = 6
TOP_K = 10
BUDGET_HEADROOM = 1.2  # budget = headroom x cost of covering phase 0


def build_phases(corpus, index, t_c: int, queries_per_count: int):
    """One list of WorkloadQuery per drift phase (distinct seeds)."""
    phases = []
    for seed in PHASE_SEEDS:
        perf = generate_performance_workload(
            corpus,
            index,
            t_c=t_c,
            kind="large",
            keyword_counts=(2, 3),
            queries_per_count=queries_per_count,
            seed=seed,
        )
        phases.append(perf.all_queries())
    return phases


def training_workload(phase):
    return workload_from_queries(
        [wq.query for wq in phase],
        context_sizes={
            frozenset(wq.query.predicates): wq.context_size for wq in phase
        },
    )


def phase_budget(index, workload) -> int:
    """The shared storage budget: enough to cover the training phase
    outright, with a little headroom — both arms get exactly this."""
    table = WideSparseTable.from_index(index)
    estimator = ViewSizeEstimator(table, seed=0)
    exact = sum(
        estimator.exact(frozenset(entry.predicates)) for entry in workload
    )
    return int(BUDGET_HEADROOM * exact) + 1


def assert_identical(a, b, label: str) -> None:
    assert a.external_ids() == b.external_ids(), label
    for ha, hb in zip(a.hits, b.hits):
        assert abs(ha.score - hb.score) < 1e-12, label


def swap_with_probes(controller, engine, probes) -> dict:
    """One reselection pass bracketed by rank-safety probes.

    Before the swap each probe runs on the auto path and forced
    straightforward (the catalog-free ground truth); after the swap the
    auto path must still match both.
    """
    before = [
        (
            engine.search(wq.query, top_k=TOP_K),
            engine.search(wq.query, top_k=TOP_K, path="straightforward"),
        )
        for wq in probes
    ]
    for auto, truth in before:
        assert_identical(auto, truth, "pre-swap auto vs straightforward")
    started = time.perf_counter()
    report = controller.run_once(trigger="drift")
    reselect_seconds = time.perf_counter() - started
    for wq, (auto, truth) in zip(probes, before):
        after = engine.search(wq.query, top_k=TOP_K)
        assert_identical(after, auto, "post-swap vs pre-swap")
        assert_identical(after, truth, "post-swap vs straightforward")
    return {
        "generation": engine.catalog_generation,
        "probes": len(probes),
        "reselect_seconds": reselect_seconds,
        "report": report.to_dict() if report is not None else None,
    }


def run_phases(phases, static, adaptive, recorder, controller):
    """Both arms through every phase; returns (rows, swap events).

    The two engines see the same query stream in the same order; each
    query's results are asserted bit-identical across arms (views never
    change rankings, whatever catalog is installed).
    """
    rows, swaps = [], []
    for phase_id, queries in enumerate(phases):
        stream = list(queries) * REPEAT_PASSES
        swap_at = len(queries) if phase_id > 0 else None
        arm_stats = {
            "static": {"views": 0, "cost": 0, "predicted": 0},
            "adaptive": {"views": 0, "cost": 0, "predicted": 0},
        }
        for i, wq in enumerate(stream):
            if swap_at is not None and i == swap_at:
                swaps.append(
                    {
                        "phase": phase_id,
                        **swap_with_probes(
                            controller, adaptive, queries[:PROBES_PER_SWAP]
                        ),
                    }
                )
            recorder.record(wq.query.predicates, wq.context_size)
            rs = static.search(wq.query, top_k=TOP_K)
            ra = adaptive.search(wq.query, top_k=TOP_K)
            assert_identical(rs, ra, f"phase {phase_id} query {i}")
            for arm, res in (("static", rs), ("adaptive", ra)):
                stats = arm_stats[arm]
                if res.report.resolution.path == "views":
                    stats["views"] += 1
                stats["cost"] += res.report.counter.model_cost
                stats["predicted"] += res.report.predicted_cost or 0
        total = len(stream)
        row = {"phase": phase_id, "seed": PHASE_SEEDS[phase_id], "queries": total}
        for arm, stats in arm_stats.items():
            row[arm] = {
                "view_hit_rate": stats["views"] / total,
                "mean_cost": (stats["cost"] + stats["predicted"]) / total,
            }
        rows.append(row)
        print(
            f"phase {phase_id}: static hit="
            f"{row['static']['view_hit_rate']:.2f} "
            f"cost={row['static']['mean_cost']:.0f} | adaptive hit="
            f"{row['adaptive']['view_hit_rate']:.2f} "
            f"cost={row['adaptive']['mean_cost']:.0f}",
            flush=True,
        )
    return rows, swaps


def aggregate_drift(rows) -> dict:
    """Weighted aggregates over the drifted phases (phase 0 trained the
    static catalog — both arms are identical there by construction)."""
    out = {}
    drifted = [row for row in rows if row["phase"] > 0]
    total = sum(row["queries"] for row in drifted)
    for arm in ("static", "adaptive"):
        out[arm] = {
            "view_hit_rate": sum(
                row[arm]["view_hit_rate"] * row["queries"] for row in drifted
            )
            / total,
            "mean_cost": sum(
                row[arm]["mean_cost"] * row["queries"] for row in drifted
            )
            / total,
        }
    return out


def check_lifecycle_swap(documents, probes, budget: int) -> dict:
    """install_catalog on a LifecycleEngine is a rank-safe epoch bump."""
    from repro.lifecycle import LifecycleEngine, SegmentedIndex

    index = SegmentedIndex()
    engine = LifecycleEngine(index)
    try:
        engine.ingest(documents)
        engine.flush()
        before = [
            (
                engine.search(wq.query, top_k=TOP_K),
                engine.search(wq.query, top_k=TOP_K, path="straightforward"),
            )
            for wq in probes
        ]
        for auto, truth in before:
            assert_identical(auto, truth, "lifecycle pre-install")
        reselector = IncrementalReselector(storage_budget=budget)
        workload = training_workload(probes)
        catalog, report = reselector.reselect(
            index.snapshot(), workload, trigger="lifecycle"
        )
        generation = engine.install_catalog(catalog, info=report.to_dict())
        assert generation == 1, generation
        assert engine.last_reselection is not None
        for wq, (auto, truth) in zip(probes, before):
            after = engine.search(wq.query, top_k=TOP_K)
            assert_identical(after, auto, "lifecycle post-install vs pre")
            assert_identical(after, truth, "lifecycle post-install vs truth")
    finally:
        engine.close()
    return {
        "generation": generation,
        "num_views": report.num_views,
        "probes": len(probes),
        "rankings_bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no JSON write, bit-identity + non-strict gates",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_adaptive.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    queries_per_count = (
        SMOKE_QUERIES_PER_COUNT if args.smoke else FULL_QUERIES_PER_COUNT
    )
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    t_c = max(2, index.num_docs // 100)
    phases = build_phases(corpus, index, t_c, queries_per_count)
    train = training_workload(phases[0])
    budget = phase_budget(index, train)
    print(
        f"{num_docs} docs, {len(phases)} phases x "
        f"{len(phases[0])} queries x {REPEAT_PASSES} passes, "
        f"t_c={t_c}, budget={budget} tuples",
        flush=True,
    )

    reselector = IncrementalReselector(storage_budget=budget)
    catalog0, report0 = reselector.reselect(index, train, trigger="init")
    static = ContextSearchEngine(index, catalog=catalog0)
    adaptive = ContextSearchEngine(index, catalog=catalog0)
    recorder = WorkloadRecorder()
    controller = AdaptiveSelectionController(
        adaptive,
        reselector,
        recorder=recorder,
        config=AdaptiveConfig(min_queries=1, decay=0.3),
    )

    rows, swaps = run_phases(phases, static, adaptive, recorder, controller)
    drift = aggregate_drift(rows)
    lifecycle = check_lifecycle_swap(
        corpus.documents, phases[0][:PROBES_PER_SWAP], budget
    )
    print(
        f"drifted phases: static hit={drift['static']['view_hit_rate']:.3f} "
        f"cost={drift['static']['mean_cost']:.0f} | adaptive "
        f"hit={drift['adaptive']['view_hit_rate']:.3f} "
        f"cost={drift['adaptive']['mean_cost']:.0f} "
        f"(generation={adaptive.catalog_generation})",
        flush=True,
    )

    if args.smoke:
        if drift["adaptive"]["view_hit_rate"] < drift["static"]["view_hit_rate"]:
            print(
                "FAIL: adaptive view-hit rate below static under drift",
                file=sys.stderr,
            )
            return 1
        print(
            "smoke mode: rankings bit-identical across arms and at every "
            "swap point; adaptive view-hit rate holds; JSON not written"
        )
        return 0

    payload = {
        "benchmark": "adaptive vs static view selection under workload drift",
        "python": platform.python_version(),
        "host_cpu_cores": os.cpu_count() or 1,
        "num_docs": num_docs,
        "phase_seeds": list(PHASE_SEEDS),
        "queries_per_phase": len(phases[0]),
        "repeat_passes": REPEAT_PASSES,
        "top_k": TOP_K,
        "t_c": t_c,
        "storage_budget": budget,
        "initial_catalog": report0.to_dict(),
        "phases": rows,
        "drift_aggregate": drift,
        "swaps": swaps,
        "lifecycle_install": lifecycle,
        "rankings_bit_identical": True,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = False
    if (
        drift["adaptive"]["view_hit_rate"]
        <= drift["static"]["view_hit_rate"]
    ):
        print(
            "FAIL: adaptive view-hit rate "
            f"{drift['adaptive']['view_hit_rate']:.3f} does not beat static "
            f"{drift['static']['view_hit_rate']:.3f} under drift",
            file=sys.stderr,
        )
        failed = True
    if drift["adaptive"]["mean_cost"] >= drift["static"]["mean_cost"]:
        print(
            "FAIL: adaptive mean predicted+actual cost "
            f"{drift['adaptive']['mean_cost']:.0f} does not beat static "
            f"{drift['static']['mean_cost']:.0f} under drift",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
