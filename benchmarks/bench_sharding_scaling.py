"""Scaling benchmark: the sharded engine at 1/2/4/8 shards.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_sharding_scaling.py           # full
    PYTHONPATH=src python benchmarks/bench_sharding_scaling.py --smoke   # CI

The workload is the paper's large-context query mix (2-5 keywords,
contexts above T_C) over a synthetic corpus, evaluated through
``ShardedEngine.search_many`` — the batched two-phase scatter-gather a
sharded deployment serves with.  Before any timing is trusted, every
shard count's ranked output is asserted bit-identical (docids, external
ids, float scores) to the single-shard configuration.

Two latency metrics per shard count:

* ``wall_seconds`` — measured wall-clock of the batch on THIS host, for
  both the instrumented serial backend and the deployment backend
  (``fork`` where available);
* ``critical_path_seconds`` — parent time (dispatch, exact statistics
  merge, heap merge) plus the busiest shard's busy time.  This is the
  latency of the sharded deployment the engine models — one worker core
  per shard — and what wall-clock converges to on a host with at least
  one core per shard.

On a multi-core host (>= 4 cores) the acceptance gate uses the measured
fork-backend wall-clock speedup; on smaller hosts, where CPU-bound work
physically cannot overlap, it uses the critical-path speedup and records
the substitution in the JSON (``gate_metric``).  Both metrics are always
written, so the numbers stay honest either way.  Full runs write
``BENCH_sharding.json`` at the repo root and exit 1 if the 4-shard
speedup falls below 2x; ``--smoke`` shrinks the corpus and checks only
agreement.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    CorpusConfig,
    ShardedEngine,
    ShardedInvertedIndex,
    fork_available,
    generate_corpus,
)
from repro.data import generate_performance_workload  # noqa: E402

SHARD_COUNTS = (1, 2, 4, 8)
FULL_DOCS = 20_000
SMOKE_DOCS = 1_500
HEADLINE_SHARDS = 4
MIN_SPEEDUP = 2.0


class _TimedSerialBackend:
    """A serial backend that records each shard's busy seconds.

    Drives the runtimes exactly like the engine's own serial backend
    (results are backend-independent), but splits the batch wall-clock
    into per-shard busy time and parent (dispatch + merge) time.
    """

    name = "serial"
    shares_memory = True

    def __init__(self, runtimes):
        self.runtimes = runtimes
        self.busy = [0.0] * len(runtimes)

    def map(self, method, payloads, **kwargs):
        outputs = []
        for runtime, payload in zip(self.runtimes, payloads):
            started = time.perf_counter()
            outputs.append(getattr(runtime, method)(payload, **kwargs))
            self.busy[runtime.shard_id] += time.perf_counter() - started
        return outputs

    def close(self):
        pass


def build_workload(num_docs: int, queries_per_count: int):
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    workload = generate_performance_workload(
        corpus,
        index,
        t_c=max(index.num_docs // 50, 10),
        kind="large",
        keyword_counts=(2, 3, 4, 5),
        queries_per_count=queries_per_count,
        seed=3,
    )
    return index, [wq.query for wq in workload.all_queries()]


def ranked_output(report):
    return [
        [(h.doc_id, h.external_id, h.score) for h in o.results.hits]
        if o.ok
        else o.error
        for o in report.outcomes
    ]


def time_serial(sharded, queries, top_k, repeats):
    """Median (wall, max shard busy, parent) over repeats, plus the output."""
    walls, criticals, parents = [], [], []
    output = None
    for _ in range(repeats):
        with ShardedEngine(sharded, executor="serial") as engine:
            timed = _TimedSerialBackend(engine.runtimes)
            engine._backend.close()
            engine._backend = timed
            started = time.perf_counter()
            report = engine.search_many(queries, top_k=top_k)
            wall = time.perf_counter() - started
        output = ranked_output(report)
        parent = max(wall - sum(timed.busy), 0.0)
        walls.append(wall)
        parents.append(parent)
        criticals.append(parent + max(timed.busy))
    return (
        statistics.median(walls),
        statistics.median(criticals),
        statistics.median(parents),
        output,
    )


def time_deployment(sharded, queries, top_k, repeats, executor):
    walls = []
    for _ in range(repeats):
        with ShardedEngine(sharded, executor=executor) as engine:
            started = time.perf_counter()
            engine.search_many(queries, top_k=top_k)
            walls.append(time.perf_counter() - started)
    return statistics.median(walls)


def run(num_docs, queries_per_count, repeats, deployment_executor):
    print(f"corpus: {num_docs} docs ...", flush=True)
    index, queries = build_workload(num_docs, queries_per_count)
    print(f"workload: {len(queries)} large-context queries", flush=True)

    rows = []
    reference_output = None
    for shards in SHARD_COUNTS:
        sharded = ShardedInvertedIndex.from_index(index, shards)
        wall, critical, parent, output = time_serial(
            sharded, queries, 10, repeats
        )
        if reference_output is None:
            reference_output = output
        elif output != reference_output:
            raise AssertionError(
                f"{shards}-shard ranking differs from 1-shard reference"
            )
        deploy_wall = time_deployment(
            sharded, queries, 10, repeats, deployment_executor
        )
        rows.append(
            {
                "shards": shards,
                "shard_docs": [s.index.num_docs for s in sharded.shards],
                "serial_wall_seconds": wall,
                "deployment_wall_seconds": deploy_wall,
                "critical_path_seconds": critical,
                "parent_seconds": parent,
            }
        )
        print(
            f"{shards} shards: serial wall={wall * 1000:.1f}ms "
            f"{deployment_executor} wall={deploy_wall * 1000:.1f}ms "
            f"critical path={critical * 1000:.1f}ms "
            f"(parent {parent * 1000:.1f}ms)",
            flush=True,
        )

    base = rows[0]
    for row in rows:
        row["critical_path_speedup_vs_1"] = (
            base["critical_path_seconds"] / row["critical_path_seconds"]
        )
        row["wall_speedup_vs_1"] = (
            base["deployment_wall_seconds"] / row["deployment_wall_seconds"]
        )
    return rows, len(queries)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, 1 repeat, no JSON write (CI agreement check)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repeats per arm"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_sharding.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    queries_per_count = 3 if args.smoke else 10
    repeats = 1 if args.smoke else args.repeats
    deployment_executor = "fork" if fork_available() else "thread"

    rows, num_queries = run(
        num_docs, queries_per_count, repeats, deployment_executor
    )

    if args.smoke:
        print(
            "smoke mode: all shard counts rank identically; JSON not written"
        )
        return 0

    cores = os.cpu_count() or 1
    # CPU-bound shards cannot overlap without a core each; on small hosts
    # the critical path is the deployment latency the engine models.
    gate_metric = (
        "wall_speedup_vs_1"
        if cores >= HEADLINE_SHARDS
        else "critical_path_speedup_vs_1"
    )
    headline = next(r for r in rows if r["shards"] == HEADLINE_SHARDS)
    speedup = headline[gate_metric]
    print(
        f"\nheadline ({HEADLINE_SHARDS} shards vs 1, {num_queries} queries, "
        f"{num_docs:,} docs): {speedup:.2f}x "
        f"[{gate_metric}, host has {cores} core(s)]"
    )

    payload = {
        "benchmark": "sharded engine scaling, batched large-context mix",
        "python": platform.python_version(),
        "host_cpu_cores": cores,
        "deployment_executor": deployment_executor,
        "num_docs": num_docs,
        "num_queries": num_queries,
        "top_k": 10,
        "repeats": repeats,
        "results_bit_identical_across_shard_counts": True,
        "gate_metric": gate_metric,
        "min_required_speedup_at_4_shards": MIN_SPEEDUP,
        "headline_speedup_at_4_shards": speedup,
        "rows": rows,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: 4-shard speedup {speedup:.2f}x < required {MIN_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
