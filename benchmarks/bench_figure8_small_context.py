"""Figure 8: execution time for small-context queries (2–5 keywords).

Small contexts (``ContextSize < T_C``) are *not* covered by any view, so
``Q_c`` runs the straightforward plan.  Two arms, as in the paper:

1. conventional ``Q_t = Q_k ∪ P``;
2. ``Q_c`` (straightforward evaluation, views present but unusable).

Expected shape: ``Q_c`` is slower than conventional by a larger factor
than Figure 7's views arm, but the absolute time stays bounded — small
contexts are cheap to materialise because the straightforward plan's
cost is bounded by the (small) predicate lists (Proposition 3.1).
"""

import pytest

from conftest import print_table

KEYWORD_COUNTS = (2, 3, 4, 5)

_results = {}


def _run_bucket(engine, bucket, mode):
    total_cost = 0
    for wq in bucket:
        if mode == "conventional":
            r = engine.search_conventional(wq.query, top_k=20)
        else:
            r = engine.search(wq.query, top_k=20)
        total_cost += r.report.counter.model_cost
    return total_cost


@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_conventional(benchmark, engine_plain, small_workload, n_keywords):
    bucket = small_workload.queries[n_keywords]
    cost = benchmark.pedantic(
        lambda: _run_bucket(engine_plain, bucket, "conventional"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _results[("conventional", n_keywords)] = (benchmark.stats["mean"], cost / len(bucket))


@pytest.mark.parametrize("n_keywords", KEYWORD_COUNTS)
def test_context_sensitive(benchmark, engine_with_views, small_workload, n_keywords):
    bucket = small_workload.queries[n_keywords]
    cost = benchmark.pedantic(
        lambda: _run_bucket(engine_with_views, bucket, "context"),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _results[("context", n_keywords)] = (benchmark.stats["mean"], cost / len(bucket))
    # Small contexts must fall through to the straightforward plan.
    sample = engine_with_views.search(bucket[0].query)
    assert sample.report.resolution.path == "straightforward"


def test_figure8_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_results) < 2 * len(KEYWORD_COUNTS):
        pytest.skip("arms did not all run (use --benchmark-only on the whole file)")

    rows = []
    for n in KEYWORD_COUNTS:
        conv_t, conv_c = _results[("conventional", n)]
        ctx_t, ctx_c = _results[("context", n)]
        rows.append(
            (
                n,
                f"{conv_t * 1000:.1f}",
                f"{ctx_t * 1000:.1f}",
                f"{conv_c:.0f}",
                f"{ctx_c:.0f}",
                f"{ctx_t / conv_t:.1f}x",
            )
        )
    print_table(
        "Figure 8: small-context queries, 50 per point "
        "(ms per 50-query batch; model cost per query)",
        ("#kw", "conv ms", "Qc ms", "conv cost", "Qc cost", "slowdown"),
        rows,
    )

    # Shape: Qc pays for statistics but stays bounded.
    for n in KEYWORD_COUNTS:
        conv_t, _ = _results[("conventional", n)]
        ctx_t, _ = _results[("context", n)]
        assert ctx_t >= conv_t * 0.5, "context arm should not be free"
    total_ctx = sum(_results[("context", n)][0] for n in KEYWORD_COUNTS)
    # Bounded: the whole 200-query sweep stays well under a second per batch.
    assert total_ctx < 10.0
