"""Segment-storage benchmark: v4 binary blocks vs v3 JSON artefacts.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_segstore.py           # full
    PYTHONPATH=src python benchmarks/bench_segstore.py --smoke   # CI

The compressed mmap-backed storage PR makes two load-bearing claims,
both measured against the v3 plain-JSON artefact (the uncompressed
baseline the repo's earlier cold-load gate used; gzipped-v3 numbers are
reported as context but not gated):

* **Density** — delta-encoded bit-packed posting blocks plus
  varint-compressed token streams must put the v4 artefact at
  **≥3x** fewer bytes per document than v3 at 20k documents.
* **Cold open** — an mmap open reads only the header and term
  dictionary; posting blocks decode lazily per query.  Open-to-first-
  query (load + one context query) must be **≥5x** faster than the
  eager v3 parse at 20k documents.

Before any timing is trusted, rankings are asserted **bit-identical**
to eager v3 loads across three engine shapes: the flat engine, a
2-shard engine, and a lifecycle engine reloaded after flushes, deletes,
and a full compaction.

Full runs write ``BENCH_segstore.json`` at the repo root and exit 1 if
either gate fails; ``--smoke`` shrinks the corpus, checks bit-identity
everywhere, and asserts the density stays inside a regression budget
instead of gating on timing ratios.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    ContextSearchEngine,
    CorpusConfig,
    InvertedIndex,
    generate_corpus,
)
from repro.core.sharded_engine import ShardedEngine  # noqa: E402
from repro.index.sharded import ShardedInvertedIndex  # noqa: E402
from repro.lifecycle import SegmentedIndex  # noqa: E402
from repro.storage import (  # noqa: E402
    load_index,
    load_sharded_index,
    save_index,
    save_sharded_index,
)

FULL_DOCS = 20_000
SMOKE_DOCS = 1_500
MIN_DENSITY_RATIO = 3.0  # v3 bytes/doc over v4 bytes/doc
MIN_COLD_OPEN_SPEEDUP = 5.0  # v3 open-to-first-query over v4
# Regression budget for --smoke: v4 bytes/doc at SMOKE_DOCS.  The
# measured value sits well under half of this; a codec regression that
# doubles the artefact trips it.
SMOKE_MAX_BYTES_PER_DOC = 700.0
TOP_K = 10


def build_collection(num_docs: int):
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    return corpus, index


def make_queries(index, count: int):
    """``term | predicate`` probes over frequent predicates and terms."""
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )[-6:]
    terms = sorted(index.vocabulary, key=index.document_frequency)[
        -(count + 4):
    ]
    return [
        f"{terms[-(i % len(terms)) - 1]} | {predicates[i % len(predicates)]}"
        for i in range(count)
    ]


def make_cold_probe(index) -> str:
    """A median-frequency ``term | predicate`` query for the cold-open arm.

    The cold-open gate measures open-to-first-query latency, so the
    probe is a *typical* query — median document frequency on both
    sides — not the single heaviest conjunction in the collection
    (which would mostly time posting-list decode, the cost lazy
    loading defers by design; the bit-identity sweep still covers the
    heavy queries).
    """
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )
    terms = sorted(index.vocabulary, key=index.document_frequency)
    return f"{terms[len(terms) // 2]} | {predicates[len(predicates) // 2]}"


def assert_identical(results_a, results_b, label: str, query: str) -> None:
    assert results_a.external_ids() == results_b.external_ids(), (
        f"{label}: ranking differs for {query!r}"
    )
    for ha, hb in zip(results_a.hits, results_b.hits):
        # Bit-identical, not approximately equal: the decoded columns
        # must be byte-for-byte the arrays the eager path produces.
        assert ha.score == hb.score, f"{label}: score drift for {query!r}"


# ---------------------------------------------------------------------------
# Bit-identity: flat, sharded, and post-compaction lifecycle


def verify_flat(index, tmp_dir: Path, queries) -> None:
    v3_path = tmp_dir / "flat.v3.json"
    v4_path = tmp_dir / "flat.v4.bin"
    save_index(index, v3_path, format=3)
    save_index(index, v4_path, format=4)
    eager = ContextSearchEngine(load_index(v3_path))
    with ContextSearchEngine(load_index(v4_path)) as lazy:
        for query in queries:
            assert_identical(
                eager.search(query, top_k=TOP_K),
                lazy.search(query, top_k=TOP_K),
                "flat",
                query,
            )
    print(f"bit-identity: flat engine OK over {len(queries)} queries")


def verify_sharded(index, tmp_dir: Path, queries) -> None:
    sharded = ShardedInvertedIndex.from_index(index, 2, "hash")
    v3_path = tmp_dir / "sharded.v3.json"
    v4_path = tmp_dir / "sharded.v4.json"
    save_sharded_index(sharded, v3_path, format=3)
    save_sharded_index(sharded, v4_path, format=4)
    eager = ShardedEngine(load_sharded_index(v3_path), executor="serial")
    with ShardedEngine(
        load_sharded_index(v4_path), executor="serial"
    ) as lazy:
        for query in queries:
            assert_identical(
                eager.search(query, top_k=TOP_K),
                lazy.search(query, top_k=TOP_K),
                "sharded",
                query,
            )
    print(f"bit-identity: 2-shard engine OK over {len(queries)} queries")


def verify_lifecycle(documents, tmp_dir: Path, queries) -> None:
    """Flush in batches, delete a stride, compact, reload from v4 files."""
    directory = tmp_dir / "lifecycle.v4"
    flush_every = max(len(documents) // 4, 1)
    with SegmentedIndex.open(directory, storage_format=4) as segmented:
        for lo in range(0, len(documents), flush_every):
            segmented.add_documents(documents[lo : lo + flush_every])
            segmented.flush()
        victims = [doc.doc_id for doc in documents[::9]]
        segmented.delete_documents(victims)
        segmented.compact(full=True)
    survivors = [d for d in documents if d.doc_id not in set(victims)]
    fresh_index = InvertedIndex()
    fresh_index.add_all(survivors)
    fresh_index.commit()
    fresh = ContextSearchEngine(fresh_index)
    with SegmentedIndex.open(directory) as reloaded:
        assert any(
            p.suffix == ".seg" for p in (directory / "segments").iterdir()
        ), "lifecycle did not persist v4 segment files"
        lazy = ContextSearchEngine(reloaded.snapshot())
        for query in queries:
            assert_identical(
                fresh.search(query, top_k=TOP_K),
                lazy.search(query, top_k=TOP_K),
                "lifecycle",
                query,
            )
    print(
        f"bit-identity: post-compaction lifecycle OK over "
        f"{len(queries)} queries"
    )


# ---------------------------------------------------------------------------
# Arm 1: on-disk density


def bench_density(index, tmp_dir: Path) -> dict:
    v3_path = tmp_dir / "density.v3.json"
    v3_gz_path = tmp_dir / "density.v3.json.gz"
    v4_path = tmp_dir / "density.v4.bin"
    save_index(index, v3_path, format=3)
    save_index(index, v3_gz_path, format=3)
    save_index(index, v4_path, format=4)
    num_docs = index.num_docs
    v3_bpd = v3_path.stat().st_size / num_docs
    v3_gz_bpd = v3_gz_path.stat().st_size / num_docs
    v4_bpd = v4_path.stat().st_size / num_docs
    ratio = v3_bpd / v4_bpd
    print(
        f"density: v3 {v3_bpd:.0f} B/doc, v3.gz {v3_gz_bpd:.0f} B/doc, "
        f"v4 {v4_bpd:.0f} B/doc → v3/v4 ratio {ratio:.2f}x",
        flush=True,
    )
    return {
        "num_docs": num_docs,
        "v3_bytes": v3_path.stat().st_size,
        "v3_gz_bytes": v3_gz_path.stat().st_size,
        "v4_bytes": v4_path.stat().st_size,
        "v3_bytes_per_doc": v3_bpd,
        "v3_gz_bytes_per_doc": v3_gz_bpd,
        "v4_bytes_per_doc": v4_bpd,
        "density_ratio": ratio,
    }


# ---------------------------------------------------------------------------
# Arm 2: cold open-to-first-query


def time_open_to_first_query(path: Path, query: str, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        index = load_index(path)
        engine = ContextSearchEngine(index)
        engine.search(query, top_k=TOP_K)
        best = min(best, time.perf_counter() - started)
        engine.close()
    return best


def bench_cold_open(tmp_dir: Path, query: str, rounds: int) -> dict:
    v3_path = tmp_dir / "density.v3.json"
    v4_path = tmp_dir / "density.v4.bin"
    v3_seconds = time_open_to_first_query(v3_path, query, rounds)
    v4_seconds = time_open_to_first_query(v4_path, query, rounds)
    speedup = v3_seconds / v4_seconds if v4_seconds > 0 else float("inf")
    print(
        f"cold open-to-first-query: v3 {v3_seconds * 1000:.0f}ms, "
        f"v4 {v4_seconds * 1000:.1f}ms → speedup {speedup:.2f}x",
        flush=True,
    )
    return {
        "v3_seconds": v3_seconds,
        "v4_seconds": v4_seconds,
        "speedup": speedup,
    }


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, correctness + density budget only (CI)",
    )
    args = parser.parse_args()

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    rounds = 2 if args.smoke else 3
    print(
        f"segment-storage benchmark: {num_docs} documents "
        f"({'smoke' if args.smoke else 'full'})",
        flush=True,
    )
    corpus, index = build_collection(num_docs)
    queries = make_queries(index, 12)

    with tempfile.TemporaryDirectory(prefix="bench_segstore_") as tmp:
        tmp_dir = Path(tmp)
        verify_flat(index, tmp_dir, queries[:8])
        verify_sharded(index, tmp_dir, queries[:8])
        verify_lifecycle(
            list(corpus.documents), tmp_dir, queries[:6]
        )
        density = bench_density(index, tmp_dir)
        cold = bench_cold_open(tmp_dir, make_cold_probe(index), rounds)

    failures = []
    if args.smoke:
        if density["v4_bytes_per_doc"] > SMOKE_MAX_BYTES_PER_DOC:
            failures.append(
                f"v4 density regression: {density['v4_bytes_per_doc']:.0f} "
                f"B/doc exceeds the {SMOKE_MAX_BYTES_PER_DOC:.0f} budget"
            )
        if cold["v4_seconds"] <= 0 or cold["v3_seconds"] <= 0:
            failures.append("degenerate cold-open timings")
    else:
        if density["density_ratio"] < MIN_DENSITY_RATIO:
            failures.append(
                f"density gate: v3/v4 = {density['density_ratio']:.2f}x "
                f"< {MIN_DENSITY_RATIO}x"
            )
        if cold["speedup"] < MIN_COLD_OPEN_SPEEDUP:
            failures.append(
                f"cold-open gate: {cold['speedup']:.2f}x "
                f"< {MIN_COLD_OPEN_SPEEDUP}x"
            )

    if not args.smoke:
        report = {
            "benchmark": "segstore",
            "num_docs": num_docs,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "gates": {
                "min_density_ratio": MIN_DENSITY_RATIO,
                "min_cold_open_speedup": MIN_COLD_OPEN_SPEEDUP,
            },
            "density": density,
            "cold_open": cold,
            "bit_identity": {
                "flat": True,
                "sharded_2way": True,
                "lifecycle_post_compaction": True,
            },
            "passed": not failures,
        }
        out = REPO_ROOT / "BENCH_segstore.json"
        out.write_text(json.dumps(report, indent=2), encoding="utf-8")
        print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("segment-storage benchmark: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
