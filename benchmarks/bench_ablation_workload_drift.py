"""Ablation A5: worst-case-guarantee vs workload-driven view selection.

Section 7 argues against the classic RDBMS formulation ("given a query
workload and a space constraint, maximise the workload's improvement")
because keyword-search workloads are unpredictable and drift.  This
bench implements the experiment behind the argument:

* train a workload-driven catalog on one query workload;
* evaluate context coverage on the *training* workload and on a
  *drifted* one (fresh queries from a different seed);
* compare with the hybrid guarantee-based selection, which covers every
  ``ContextSize ≥ T_C`` specification regardless of workload.

Expected shape: workload-driven coverage is high in-sample and drops
out-of-sample; guarantee-based coverage is identical in both columns.
"""

import pytest

from repro.data import generate_performance_workload
from repro.selection import (
    evaluate_coverage,
    hybrid_selection,
    workload_driven_selection,
    workload_from_queries,
)

from conftest import T_V, print_table


def _make_workload(bench_corpus, bench_index, t_c, seed):
    perf = generate_performance_workload(
        bench_corpus,
        bench_index,
        t_c=t_c,
        kind="large",
        keyword_counts=(2, 3),
        queries_per_count=25,
        seed=seed,
    )
    return workload_from_queries(
        [wq.query for wq in perf.all_queries()],
        context_sizes={
            frozenset(wq.query.predicates): wq.context_size
            for wq in perf.all_queries()
        },
    )


def test_workload_drift(
    benchmark, bench_corpus, bench_index, bench_db, bench_estimator, t_c, selection
):
    train = _make_workload(bench_corpus, bench_index, t_c, seed=101)
    drifted = _make_workload(bench_corpus, bench_index, t_c, seed=909)

    hybrid_report = selection[1]
    guarantee_sets = hybrid_report.keyword_sets
    guarantee_storage = sum(
        bench_estimator.exact(ks) for ks in guarantee_sets
    )

    def run():
        return workload_driven_selection(
            train, bench_estimator, storage_budget=guarantee_storage
        )

    wd_report = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            "workload-driven",
            len(wd_report.keyword_sets),
            wd_report.storage_used,
            f"{evaluate_coverage(wd_report.keyword_sets, train):.2f}",
            f"{evaluate_coverage(wd_report.keyword_sets, drifted):.2f}",
        ),
        (
            "guarantee (hybrid)",
            len(guarantee_sets),
            guarantee_storage,
            f"{evaluate_coverage(guarantee_sets, train):.2f}",
            f"{evaluate_coverage(guarantee_sets, drifted):.2f}",
        ),
    ]
    print_table(
        "Ablation A5: selection strategy vs workload drift "
        f"(equal storage budget = {guarantee_storage} tuples)",
        ("strategy", "views", "tuples", "train coverage", "drifted coverage"),
        rows,
    )

    train_wd = evaluate_coverage(wd_report.keyword_sets, train)
    drift_wd = evaluate_coverage(wd_report.keyword_sets, drifted)
    train_g = evaluate_coverage(guarantee_sets, train)
    drift_g = evaluate_coverage(guarantee_sets, drifted)

    # The guarantee-based catalog covers every large context by
    # construction — both columns must be total.
    assert train_g == 1.0 and drift_g == 1.0
    # Workload-driven does well in-sample and cannot beat the guarantee
    # out-of-sample.
    assert train_wd >= 0.8
    assert drift_wd <= train_wd
