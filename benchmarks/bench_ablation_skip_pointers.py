"""Ablation A1: skip pointers on/off across join selectivities (Sec 3.2).

The cost model predicts skip pointers pay off when one list is much
shorter than the other (the short list's entries each land in a separate
segment, cost ≈ |L_i| · M0 instead of |L_i| + |L_j|), and stop helping
when the join cardinality is large (every segment overlaps).  This bench
sweeps the length ratio and reports wall-clock plus the observable
counters for both merge variants.
"""

import pytest

from repro.index.intersection import intersect
from repro.index.postings import CostCounter, PostingList

from conftest import print_table

LONG_LEN = 200_000
RATIOS = (1, 10, 100, 1000)

_rows = []


def _make_lists(ratio):
    long_list = PostingList.from_pairs(
        "long", ((i, 1) for i in range(LONG_LEN))
    )
    short_ids = range(0, LONG_LEN, ratio)
    short_list = PostingList.from_pairs("short", ((i, 1) for i in short_ids))
    return short_list, long_list


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("use_skips", (True, False), ids=("skips", "noskips"))
def test_intersection(benchmark, ratio, use_skips):
    short_list, long_list = _make_lists(ratio)
    counter = CostCounter()

    def run():
        counter.reset()
        return intersect(short_list, long_list, counter, use_skips=use_skips)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == len(short_list)
    _rows.append(
        (
            f"1:{ratio}",
            "on" if use_skips else "off",
            f"{benchmark.stats['mean'] * 1000:.2f}",
            counter.entries_scanned,
            counter.segments_skipped,
        )
    )


def test_skip_pointer_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) < 2 * len(RATIOS):
        pytest.skip("arms did not all run")
    print_table(
        "Ablation A1: skip pointers vs plain merge "
        f"(long list = {LONG_LEN:,} postings)",
        ("short:long", "skips", "mean ms", "entries scanned", "segments skipped"),
        sorted(_rows),
    )
    # Shape: at high ratios, skips scan far fewer entries.
    by_key = {(r[0], r[1]): r for r in _rows}
    assert by_key[("1:1000", "on")][3] < by_key[("1:1000", "off")][3] / 5
    # At ratio 1 (identical lists) skips cannot help.
    assert by_key[("1:1", "on")][4] == 0
