"""Ablation A6: MaxScore pruning vs exhaustive disjunctive scoring.

Section 3.2.2 notes top-k processing cannot start until the context
statistics are known; with materialized views supplying the statistics
instantly, pruned top-k becomes worthwhile again.  This bench measures
how much MaxScore saves over exhaustive OR-scoring at several k, for
whole-collection queries (the regime with the longest posting lists),
and isolates the block-max contribution (per-block score bounds) from
the global-bound MaxScore baseline.
"""

import pytest

from repro import BM25
from repro.core.topk import (
    MaxScoreScorer,
    TopKDiagnostics,
    exhaustive_disjunctive,
)

from conftest import print_table

K_VALUES = (10, 100)

_rows = []


@pytest.fixture(scope="module")
def probe(bench_index):
    """Keywords mixing one very common and three mid-frequency terms —
    the asymmetry MaxScore exploits."""
    terms = sorted(
        bench_index.vocabulary,
        key=lambda w: -bench_index.document_frequency(w),
    )
    keywords = [terms[0], terms[40], terms[80], terms[160]]
    from repro.core.statistics import CollectionStatistics

    stats = CollectionStatistics(
        cardinality=bench_index.num_docs,
        total_length=bench_index.total_length,
        df={w: bench_index.document_frequency(w) for w in keywords},
    )
    return keywords, stats


@pytest.mark.parametrize("block_max", (True, False), ids=("blocks", "global"))
@pytest.mark.parametrize("k", K_VALUES)
def test_maxscore(benchmark, bench_index, probe, k, block_max):
    keywords, stats = probe
    ranking = BM25()
    diagnostics = TopKDiagnostics()

    def run():
        scorer = MaxScoreScorer(
            bench_index, keywords, stats, ranking, block_max=block_max
        )
        return scorer.top_k(k, diagnostics=diagnostics)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == k
    _rows.append(
        (
            "maxscore/blocks" if block_max else "maxscore/global",
            k,
            f"{benchmark.stats['mean'] * 1000:.1f}",
            diagnostics.candidates_seen // 4,   # per round (3 + warmup)
            diagnostics.candidates_scored // 4,
            diagnostics.blocks_considered // 4,
            diagnostics.blocks_skipped // 4,
        )
    )


@pytest.mark.parametrize("k", K_VALUES)
def test_exhaustive(benchmark, bench_index, probe, k):
    keywords, stats = probe
    ranking = BM25()

    def run():
        return exhaustive_disjunctive(bench_index, keywords, stats, ranking, k)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == k
    union = len(
        {d for w in keywords for d in bench_index.postings(w).doc_ids}
    )
    _rows.append(
        (
            "exhaustive",
            k,
            f"{benchmark.stats['mean'] * 1000:.1f}",
            union,
            union,
            0,
            0,
        )
    )


def test_equivalence_and_table(benchmark, bench_index, probe):
    keywords, stats = probe
    ranking = BM25()

    def check():
        pruned = MaxScoreScorer(bench_index, keywords, stats, ranking).top_k(50)
        unblocked = MaxScoreScorer(
            bench_index, keywords, stats, ranking, block_max=False
        ).top_k(50)
        reference = exhaustive_disjunctive(
            bench_index, keywords, stats, ranking, 50
        )
        assert [s.doc_id for s in pruned] == [s.doc_id for s in reference]
        assert [s.doc_id for s in unblocked] == [s.doc_id for s in reference]
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)

    if len(_rows) >= 3 * len(K_VALUES):
        print_table(
            "Ablation A6: MaxScore (block-max / global bounds) vs "
            "exhaustive disjunctive top-k "
            "(4 keywords over the whole collection)",
            (
                "scorer",
                "k",
                "mean ms",
                "cand seen",
                "cand scored",
                "blocks seen",
                "blocks skipped",
            ),
            sorted(_rows, key=lambda r: (r[1], r[0])),
        )
