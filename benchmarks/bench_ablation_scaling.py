"""Ablation A7: view-selection scaling with collection size (Section 6.2).

The paper claims: "Given that the threshold of the context size (T_C) is
set to a fixed percentage of the size of the document set, the number of
views to materialize is stable, and does not change much as the document
set scales. … the complexity of the view selection increases linearly
with |D|."  This bench sweeps corpus size at fixed relative thresholds
and reports selection time and view count.
"""

import time

import pytest

from repro import CorpusConfig, generate_corpus
from repro.selection import TransactionDatabase, hybrid_selection
from repro.views import ViewSizeEstimator, WideSparseTable

from conftest import print_table

SIZES = (3_000, 6_000, 12_000)
T_V = 1024

_rows = []


@pytest.mark.parametrize("num_docs", SIZES)
def test_selection_at_scale(benchmark, num_docs):
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=77))
    index = corpus.build_index()
    table = WideSparseTable.from_index(index)
    db = TransactionDatabase(table.predicate_sets())
    estimator = ViewSizeEstimator(table)
    t_c = num_docs // 100  # fixed 1% relative threshold

    report = benchmark.pedantic(
        lambda: hybrid_selection(db, estimator, t_c, T_V),
        rounds=1,
        iterations=1,
    )
    _rows.append(
        (
            num_docs,
            t_c,
            f"{benchmark.stats['mean']:.1f}",
            report.num_views,
            report.separators_computed,
            report.dense_residues,
        )
    )


def test_scaling_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) < len(SIZES):
        pytest.skip("arms did not all run")
    print_table(
        "Ablation A7: selection scaling at fixed relative thresholds "
        f"(T_C = 1% of |D|, T_V = {T_V})",
        ("|D|", "T_C", "selection s", "views", "separators", "residues"),
        sorted(_rows),
    )
    by_size = {r[0]: r for r in sorted(_rows)}
    views = [by_size[n][3] for n in SIZES]
    # Paper claim: the view count is stable as |D| scales (same ontology,
    # relative T_C).  Allow a generous factor-2 band.
    assert max(views) <= 2 * max(min(views), 1), views
