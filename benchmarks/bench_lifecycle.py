"""Lifecycle benchmark: cold-load speedup and post-compaction serving cost.

Standalone script (not a pytest bench) so CI and operators can run it
without the benchmark plugin::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py           # full
    PYTHONPATH=src python benchmarks/bench_lifecycle.py --smoke   # CI

Two claims of the segmented-lifecycle PR are load-bearing enough to
gate:

* **Cold load** — storage format v2 persists precompiled posting
  columns (plus each document's cached length/unique-term counts and
  each list's max_tf), so loading is array adoption instead of
  re-accumulating postings document by document.  Measured as
  ``load_index`` wall time on the *same* collection saved as a v1
  payload (token streams only, decoded through the legacy
  re-accumulation path) vs a v2 payload.  Gate: **≥3x** at 20k
  documents.
* **Post-compaction serving** — after flushes, deletes, and a full
  compaction, queries run against a snapshot whose postings are
  compiled from segment columns.  That indirection must be free:
  per-query p95 latency over the compacted index must stay within
  **10%** of a from-scratch monolithic index over the same surviving
  documents.  Rankings are asserted bit-identical before any timing is
  trusted.

Full runs write ``BENCH_lifecycle.json`` at the repo root and exit 1
if either gate fails; ``--smoke`` shrinks the corpus and checks
correctness (bit-identity, non-degenerate timings) only.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import (  # noqa: E402
    ContextSearchEngine,
    CorpusConfig,
    InvertedIndex,
    generate_corpus,
)
from repro.lifecycle import LifecycleEngine, SegmentedIndex  # noqa: E402
from repro.service import percentile  # noqa: E402
from repro.storage import load_index, save_index  # noqa: E402

FULL_DOCS = 20_000
SMOKE_DOCS = 1_500
MIN_COLD_LOAD_SPEEDUP = 3.0
MAX_P95_OVERHEAD = 0.10  # compacted p95 within 10% of fresh
TOP_K = 10


def build_collection(num_docs: int):
    corpus = generate_corpus(CorpusConfig(num_docs=num_docs, seed=42))
    index = corpus.build_index()
    return corpus, index


def make_queries(index, count: int):
    """``term | predicate`` probes over frequent predicates and terms."""
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency
    )[-6:]
    terms = sorted(index.vocabulary, key=index.document_frequency)[
        -(count + 4):
    ]
    return [
        f"{terms[-(i % len(terms)) - 1]} | {predicates[i % len(predicates)]}"
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Arm 1: cold load, v1 payload vs v2 payload


def v1_payload(index) -> dict:
    """The collection as a format-version-1 file would carry it."""
    return {
        "kind": "index",
        "version": 1,
        "searchable_fields": list(index.searchable_fields),
        "predicate_field": index.predicate_field,
        "segment_size": index.segment_size,
        "documents": [
            {
                "external_id": doc.external_id,
                "field_tokens": {
                    name: list(tokens)
                    for name, tokens in doc.field_tokens.items()
                },
            }
            for doc in index.store
        ],
    }


def time_loads(path: Path, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        load_index(path)
        best = min(best, time.perf_counter() - started)
    return best


def bench_cold_load(index, tmp_dir: Path, queries, rounds: int) -> dict:
    v1_path = tmp_dir / "index.v1.json"
    v2_path = tmp_dir / "index.v2.json"
    v1_path.write_text(json.dumps(v1_payload(index)), encoding="utf-8")
    save_index(index, v2_path)

    # Both decoders must produce the same searchable collection.
    a = ContextSearchEngine(load_index(v1_path))
    b = ContextSearchEngine(load_index(v2_path))
    for query in queries[:6]:
        ra = a.search(query, top_k=TOP_K)
        rb = b.search(query, top_k=TOP_K)
        assert ra.external_ids() == rb.external_ids(), query
        for ha, hb in zip(ra.hits, rb.hits):
            assert abs(ha.score - hb.score) < 1e-12, query

    v1_seconds = time_loads(v1_path, rounds)
    v2_seconds = time_loads(v2_path, rounds)
    speedup = v1_seconds / v2_seconds if v2_seconds > 0 else float("inf")
    print(
        f"cold load: v1 {v1_seconds * 1000:.0f}ms, "
        f"v2 {v2_seconds * 1000:.0f}ms → speedup {speedup:.2f}x",
        flush=True,
    )
    return {
        "v1_load_seconds": v1_seconds,
        "v2_load_seconds": v2_seconds,
        "speedup": speedup,
        "v1_bytes": v1_path.stat().st_size,
        "v2_bytes": v2_path.stat().st_size,
        "rankings_bit_identical": True,
    }


# ---------------------------------------------------------------------------
# Arm 2: post-compaction p95 vs a fresh monolithic index


def build_compacted(documents, flush_every: int, delete_every: int):
    """Ingest in flushed batches, delete a stride, compact fully."""
    index = SegmentedIndex()
    engine = LifecycleEngine(index)
    for lo in range(0, len(documents), flush_every):
        engine.ingest(documents[lo : lo + flush_every])
        engine.flush()
    victims = [
        doc.doc_id for doc in documents[:: delete_every]
    ]
    engine.delete(victims)
    report = engine.compact(full=True)
    assert report.changed and index.num_segments == 1
    survivors = [d for d in documents if d.doc_id not in set(victims)]
    return engine, survivors


def p95_of(engine, queries, repeat: int) -> float:
    latencies = []
    for _ in range(repeat):
        for query in queries:
            started = time.perf_counter()
            engine.search(query, top_k=TOP_K)
            latencies.append((time.perf_counter() - started) * 1000.0)
    return percentile(latencies, 95)


def bench_post_compaction(documents, queries, repeat: int) -> dict:
    lifecycle, survivors = build_compacted(
        documents, flush_every=max(len(documents) // 8, 1), delete_every=9
    )
    fresh_index = InvertedIndex()
    fresh_index.add_all(survivors)
    fresh_index.commit()
    fresh = ContextSearchEngine(fresh_index)

    for query in queries:
        ra = lifecycle.search(query, top_k=TOP_K)
        rb = fresh.search(query, top_k=TOP_K)
        assert ra.external_ids() == rb.external_ids(), query
        for ha, hb in zip(ra.hits, rb.hits):
            assert abs(ha.score - hb.score) < 1e-12, query

    # Alternate arms round by round so drift hits both equally; keep the
    # best round per arm (the usual cold-machine noise damper).
    compacted_p95 = min(
        p95_of(lifecycle, queries, repeat) for _ in range(3)
    )
    fresh_p95 = min(p95_of(fresh, queries, repeat) for _ in range(3))
    overhead = (
        compacted_p95 / fresh_p95 - 1.0 if fresh_p95 > 0 else 0.0
    )
    print(
        f"post-compaction p95: lifecycle {compacted_p95:.3f}ms vs fresh "
        f"{fresh_p95:.3f}ms → overhead {overhead * 100:+.1f}%",
        flush=True,
    )
    return {
        "live_docs": len(survivors),
        "deleted_docs": len(documents) - len(survivors),
        "compacted_p95_ms": compacted_p95,
        "fresh_p95_ms": fresh_p95,
        "overhead": overhead,
        "rankings_bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, no JSON write, no gates (CI correctness check)",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "BENCH_lifecycle.json"),
        help="JSON output path (full mode only)",
    )
    args = parser.parse_args(argv)

    num_docs = SMOKE_DOCS if args.smoke else FULL_DOCS
    corpus, index = build_collection(num_docs)
    queries = make_queries(index, 12 if args.smoke else 24)

    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-lifecycle-") as tmp:
        cold = bench_cold_load(
            index, Path(tmp), queries, rounds=1 if args.smoke else 3
        )
    compaction = bench_post_compaction(
        corpus.documents, queries, repeat=1 if args.smoke else 4
    )

    if args.smoke:
        if cold["v2_load_seconds"] <= 0 or compaction["fresh_p95_ms"] <= 0:
            print("FAIL: degenerate timings", file=sys.stderr)
            return 1
        print(
            "smoke mode: v1/v2 loads agree, post-compaction rankings "
            "bit-identical to a fresh index; JSON not written"
        )
        return 0

    payload = {
        "benchmark": "segmented lifecycle: cold load and post-compaction p95",
        "python": platform.python_version(),
        "host_cpu_cores": os.cpu_count() or 1,
        "num_docs": num_docs,
        "num_queries": len(queries),
        "top_k": TOP_K,
        "min_required_cold_load_speedup": MIN_COLD_LOAD_SPEEDUP,
        "max_allowed_p95_overhead": MAX_P95_OVERHEAD,
        "cold_load": cold,
        "post_compaction": compaction,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    failed = False
    if cold["speedup"] < MIN_COLD_LOAD_SPEEDUP:
        print(
            f"FAIL: cold-load speedup {cold['speedup']:.2f}x is below the "
            f"required {MIN_COLD_LOAD_SPEEDUP}x",
            file=sys.stderr,
        )
        failed = True
    if compaction["overhead"] > MAX_P95_OVERHEAD:
        print(
            f"FAIL: post-compaction p95 overhead "
            f"{compaction['overhead'] * 100:.1f}% exceeds "
            f"{MAX_P95_OVERHEAD * 100:.0f}%",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
