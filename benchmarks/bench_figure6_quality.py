"""Figure 6 (a–d) + Section 6.1 scalars: ranking quality per topic.

Regenerates the paper's four quality series over 30 TREC-style topics:
precision@20 for conventional (6a) and context-sensitive (6b) ranking,
and reciprocal rank for both (6c, 6d), plus the quoted means
(paper: precision 7.9 → 10.2, MRR 0.62 → 0.78 at PubMed scale).

Expected shape: context-sensitive wins a clear majority of topics
(paper: 21/30) with occasional large gains and a few small losses.
"""

import pytest

from repro.eval import run_quality_comparison

from conftest import print_table


@pytest.fixture(scope="module")
def comparison(engine_plain, quality_topics):
    return run_quality_comparison(engine_plain, quality_topics, k=20)


def test_figure6_conventional_ranking_time(
    benchmark, engine_plain, quality_topics
):
    """Timing arm: evaluate all 30 topics with conventional ranking."""

    def run():
        return [
            engine_plain.search_conventional(t.query, top_k=20)
            for t in quality_topics.topics
        ]

    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(results) == len(quality_topics.topics)


def test_figure6_context_ranking_time(benchmark, engine_with_views, quality_topics):
    """Timing arm: evaluate all 30 topics with context-sensitive ranking."""

    def run():
        return [
            engine_with_views.search(t.query, top_k=20)
            for t in quality_topics.topics
        ]

    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(results) == len(quality_topics.topics)


def test_figure6_series_and_summary(benchmark, comparison):
    """The actual Figure 6 data: per-topic series and the mean rows."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # bookkeeping only

    rows = [
        (
            f"Q{o.topic_id}",
            o.precision_conventional,
            o.precision_context,
            f"{o.rr_conventional:.2f}",
            f"{o.rr_context:.2f}",
        )
        for o in comparison.outcomes
    ]
    print_table(
        "Figure 6: ranking quality of top-20 results (per topic)",
        ("topic", "P@20 conv (6a)", "P@20 ctx (6b)", "RR conv (6c)", "RR ctx (6d)"),
        rows,
    )
    summary = comparison.summary()
    print_table(
        "Section 6.1 summary (paper: P 7.9→10.2, MRR 0.62→0.78, 21/30 wins)",
        ("metric", "conventional", "context-sensitive"),
        [
            (
                "mean precision@20",
                f"{summary['mean_precision_conventional']:.2f}",
                f"{summary['mean_precision_context']:.2f}",
            ),
            (
                "mean reciprocal rank",
                f"{summary['mrr_conventional']:.2f}",
                f"{summary['mrr_context']:.2f}",
            ),
            ("topics won", summary["conventional_wins"], summary["context_wins"]),
        ],
    )

    # The reproduction target: the *shape* of the paper's finding.
    assert comparison.wins > comparison.losses
    assert summary["mean_precision_context"] >= summary["mean_precision_conventional"]
    assert summary["mrr_context"] >= summary["mrr_conventional"] - 1e-9
