"""Ablation A2: sweeping the view-size threshold ``T_V``.

``T_V`` trades storage against per-query statistic cost (Theorem 4.2:
answering from a view costs one view scan).  Small ``T_V`` means many
small views (cheap scans, more views to store and match); large ``T_V``
means few big views.  The paper fixes ``T_V`` = 4096; this ablation
shows what that choice buys.
"""

import pytest

from repro.core.query import ContextSpecification
from repro.core.statistics import cardinality_spec, total_length_spec
from repro.selection import hybrid_selection
from repro.views import ViewCatalog, materialize_view

from conftest import print_table

TV_VALUES = (64, 512, 4096)

_rows = []


@pytest.mark.parametrize("t_v", TV_VALUES)
def test_tv_value(benchmark, bench_db, bench_table, bench_estimator, t_c, t_v):
    report = hybrid_selection(bench_db, bench_estimator, t_c, t_v)
    catalog = ViewCatalog(
        materialize_view(bench_table, ks) for ks in report.keyword_sets
    )
    stats = catalog.stats()

    # Probe cost: answer |D_P| and len(D_P) for every single-predicate
    # context covered by the catalog.
    contexts = [
        ContextSpecification([m])
        for ks in report.keyword_sets
        for m in sorted(ks)[:2]
    ][:40]
    specs = [cardinality_spec(), total_length_spec()]

    def probe():
        tuples_scanned = 0
        for context in contexts:
            view = catalog.find_covering(context)
            if view is not None:
                view.answer_many(specs, context)
                tuples_scanned += view.size
        return tuples_scanned

    tuples_scanned = benchmark.pedantic(probe, rounds=3, iterations=1, warmup_rounds=1)
    _rows.append(
        (
            t_v,
            report.num_views,
            stats.max_tuples,
            f"{stats.mean_tuples:.0f}",
            f"{stats.total_storage_bytes / 1e3:.0f} KB",
            f"{tuples_scanned / max(len(contexts), 1):.0f}",
            f"{benchmark.stats['mean'] * 1000:.2f}",
        )
    )
    assert stats.max_tuples <= t_v


def test_tv_sweep_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) < len(TV_VALUES):
        pytest.skip("arms did not all run")
    print_table(
        "Ablation A2: view-size threshold sweep (paper fixes T_V = 4096)",
        (
            "T_V",
            "views",
            "max tuples",
            "mean tuples",
            "storage",
            "tuples/statistic probe",
            "probe ms",
        ),
        sorted(_rows),
    )
    # Shape: larger T_V -> no more views than smaller T_V.
    views_by_tv = {r[0]: r[1] for r in _rows}
    assert views_by_tv[4096] <= views_by_tv[64]
