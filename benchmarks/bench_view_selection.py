"""Section 6.2: view-selection efficiency and storage accounting.

Reproduces the section's findings at laptop scale:

* plain Apriori / FP-growth at ``T_C`` = 1 % are infeasible — shown with
  work/memory budgets (the paper reports out-of-memory for FP-growth and
  "weeks" for Apriori on 18 M documents);
* the hybrid approach succeeds and yields a moderate number of views
  (paper: 3,523 views in 40 hours at PubMed scale);
* storage: per-view tuple counts stay under ``T_V``, df parameter columns
  exist only for keywords with ``|L_w| ≥ T_C``, and total view storage is
  a fraction of the index (paper: 12.77 GB of views vs 70 GB raw data).
* the Problem 5.1 guarantee is audited exactly: every context with
  ``ContextSize ≥ T_C`` (up to the mined combination size) is covered.
"""

import pytest

from repro.errors import BudgetExceededError
from repro.selection import (
    apriori,
    fpgrowth,
    hybrid_selection,
    max_combination_size,
    verify_selection,
)

from conftest import T_V, print_table

# Budgets scaled from the paper's testbed (8 GB / weeks of CPU for 18 M
# docs) down to this corpus (1/1500th the documents): generous for the
# hybrid's residue mining but below what corpus-wide mining needs — the
# same asymmetry as the paper's "out of memory" / "would take weeks".
APRIORI_BUDGET = 3_000_000
FPGROWTH_NODE_BUDGET = 50_000


def test_apriori_infeasible_at_corpus_scale(benchmark, bench_db, t_c):
    """Section 6.2: Apriori over the full corpus blows its work budget."""

    def run():
        try:
            apriori(bench_db, min_support=t_c, max_size=8, budget=APRIORI_BUDGET)
            return None
        except BudgetExceededError as exc:
            return exc

    exc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exc is not None, "expected Apriori to exceed its work budget"
    print(
        f"\nApriori aborted at {exc.work_done:,} work units "
        f"(budget {exc.budget:,}) — the paper's 'would take weeks' result."
    )


def test_fpgrowth_memory_infeasible(benchmark, bench_db, t_c):
    """Section 6.2: FP-growth exhausts its node (memory) budget."""

    def run():
        try:
            fpgrowth(bench_db, min_support=t_c, max_size=8,
                     max_nodes=FPGROWTH_NODE_BUDGET)
            return None
        except BudgetExceededError as exc:
            return exc

    exc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert exc is not None, "expected FP-growth to exceed its memory budget"
    print(
        f"\nFP-growth aborted at {exc.work_done:,} tree nodes "
        f"(budget {exc.budget:,}) — the paper's out-of-memory result."
    )


def test_hybrid_selection_succeeds(benchmark, bench_db, bench_estimator, t_c):
    """The hybrid approach completes and honours both thresholds."""
    report = benchmark.pedantic(
        lambda: hybrid_selection(bench_db, bench_estimator, t_c, T_V),
        rounds=1,
        iterations=1,
    )
    print_table(
        "Section 6.2: hybrid view selection (paper: 3,523 views on 18M docs)",
        ("quantity", "value"),
        [
            ("T_C (1% of corpus)", t_c),
            ("T_V (tuples)", T_V),
            ("views selected", report.num_views),
            ("  from decomposition", report.views_from_decomposition),
            ("  from residue mining", report.views_from_mining),
            ("dense residues", report.dense_residues),
            ("separators computed", report.separators_computed),
            ("triangle supports computed", report.supports_computed),
            ("residue mining work units", report.mining_work_units),
        ],
    )
    assert report.num_views > 0

    audit = verify_selection(
        bench_db,
        report.keyword_sets,
        bench_estimator,
        t_c,
        T_V,
        max_combination_size=max_combination_size(T_V),
    )
    print(
        f"Problem 5.1 audit: {audit.checked_combinations:,} frequent "
        f"combinations checked; uncovered={len(audit.uncovered)}, "
        f"oversized={len(audit.oversized_views)}"
    )
    assert audit.ok


def test_storage_accounting(benchmark, bench_index, catalog, selection, t_c):
    """Section 6.2's storage table."""
    stats = benchmark.pedantic(catalog.stats, rounds=3, iterations=1)
    report = selection[1]
    frequent_terms = sum(
        1 for w in bench_index.vocabulary
        if bench_index.document_frequency(w) >= t_c
    )
    index_postings = sum(
        bench_index.document_frequency(w) for w in bench_index.vocabulary
    ) + sum(
        bench_index.predicate_frequency(m)
        for m in bench_index.predicate_vocabulary
    )
    index_bytes = index_postings * 8  # <docid, tf> pairs at 4+4 bytes
    from repro.index import index_compressed_bytes

    compressed = index_compressed_bytes(bench_index)

    sample_view = next(iter(catalog))
    print_table(
        "Section 6.2: storage usage "
        "(paper: 3,523 views, 12.77 GB views vs 5.72 GB index)",
        ("quantity", "value"),
        [
            ("views materialized", stats.num_views),
            ("max tuples per view", stats.max_tuples),
            ("mean tuples per view", f"{stats.mean_tuples:.1f}"),
            ("df parameter columns per view", sample_view.num_parameter_columns),
            ("frequent keywords (|L_w| >= T_C)", frequent_terms),
            ("total view storage", f"{stats.total_storage_bytes / 1e6:.2f} MB"),
            ("mean view storage", f"{stats.mean_storage_bytes / 1e3:.1f} KB"),
            ("inverted index (posting bytes)", f"{index_bytes / 1e6:.2f} MB"),
            ("inverted index (varint-compressed)", f"{compressed / 1e6:.2f} MB"),
        ],
    )
    assert stats.max_tuples <= T_V
    # Views must carry df columns only for frequent keywords.
    assert len(sample_view.df_terms) == frequent_terms
