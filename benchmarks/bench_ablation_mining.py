"""Ablation A3: Apriori vs FP-growth vs Eclat on identical inputs.

All three miners return identical itemset→support maps (tested in the
unit suite); this bench compares their *work* profiles over the
benchmark corpus's predicate transactions at several support thresholds,
explaining why the hybrid selector mines residues with Eclat and why
corpus-scale mining is the expensive arm of Section 6.2.

To keep runtimes sane, mining runs on a projected transaction set (one
dense residue-like subset of frequent predicates) — the same shape the
hybrid selector hands to its miner.
"""

import pytest

from repro.selection import apriori, declat, eclat, fpgrowth

from conftest import print_table

SUPPORT_DIVISORS = (8, 15, 30)  # min_support = |D| / divisor

_rows = []


@pytest.fixture(scope="module")
def projected_db(bench_db):
    """Transactions projected onto the 24 most frequent predicates."""
    top = bench_db.frequent_items(1)[:24]
    return bench_db.project(top)


@pytest.mark.parametrize("divisor", SUPPORT_DIVISORS)
@pytest.mark.parametrize("miner", (apriori, fpgrowth, eclat, declat), ids=lambda m: m.__name__)
def test_miner(benchmark, projected_db, miner, divisor):
    min_support = max(len(projected_db) // divisor, 2)
    result = benchmark.pedantic(
        lambda: miner(projected_db, min_support=min_support, max_size=6),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    _rows.append(
        (
            miner.__name__,
            min_support,
            len(result.itemsets),
            result.work_units,
            f"{benchmark.stats['mean'] * 1000:.1f}",
        )
    )


def test_mining_table(benchmark, projected_db):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_rows) < 4 * len(SUPPORT_DIVISORS):
        pytest.skip("arms did not all run")
    print_table(
        f"Ablation A3: miners on {len(projected_db):,} projected transactions",
        ("algorithm", "min_support", "frequent itemsets", "work units", "mean ms"),
        sorted(_rows, key=lambda r: (r[1], r[0])),
    )
    # All miners found the same number of itemsets per support level.
    by_support = {}
    for name, support, count, *_ in _rows:
        by_support.setdefault(support, set()).add(count)
    for support, counts in by_support.items():
        assert len(counts) == 1, f"miners disagree at min_support={support}"
