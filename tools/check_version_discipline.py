#!/usr/bin/env python3
"""CI lint: version counters may only be mutated in repro.core.backend.

The unified-coherence refactor collapsed every epoch/generation counter
into :mod:`repro.core.backend` (``VersionClock`` / ``VersionAuthority``);
engines bump versions exclusively through those objects.  This check
keeps it that way: it walks every module under ``src/repro`` and fails
if any file other than ``core/backend.py`` *assigns* to a private
version field — ``obj._epoch = ...``, ``self._generation += 1``, and
friends.  Reading the fields, or calling ``clock.advance()``, is of
course fine; so are public config attributes like
``metrics.catalog_generation`` (service metrics snapshots assign those,
they are reporting values, not coherence state).

Run from the repo root:

    python tools/check_version_discipline.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

# Private version-counter fields only backend.py may assign.  Public
# names (``catalog_generation = ...`` on a metrics snapshot) are
# deliberately excluded: the discipline governs coherence state, not
# reporting fields.
FORBIDDEN_FIELDS = {
    "_epoch",
    "_version",
    "_generation",
    "_catalog_generation",
    "_placement_generation",
}

ALLOWED = {Path("core") / "backend.py"}


def _attribute_targets(node: ast.AST):
    """Yield every ast.Attribute that an assignment statement writes to."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    stack = list(targets)
    while stack:
        target = stack.pop()
        if isinstance(target, ast.Attribute):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)


def check_file(path: Path, relative: Path) -> list:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [f"{relative}:{exc.lineno}: unparseable ({exc.msg})"]
    violations = []
    for node in ast.walk(tree):
        for attribute in _attribute_targets(node):
            if attribute.attr in FORBIDDEN_FIELDS:
                violations.append(
                    f"{relative}:{node.lineno}: assigns "
                    f"'{attribute.attr}' — version counters are mutated "
                    "only in src/repro/core/backend.py (use VersionClock/"
                    "VersionAuthority)"
                )
    return violations


def main() -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    if not root.is_dir():
        print(f"error: {root} not found (run from the repo root)",
              file=sys.stderr)
        return 2
    violations = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        if relative in ALLOWED:
            continue
        violations.extend(check_file(path, Path("src/repro") / relative))
    if violations:
        print("version-discipline violations:")
        for line in violations:
            print(f"  {line}")
        return 1
    print(
        "version discipline ok: no module outside core/backend.py "
        "mutates a version counter"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
