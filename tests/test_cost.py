"""Tests for the analytic cost model (Section 3.2) against observed work."""

import pytest

from repro.core.cost import (
    context_materialization_bound,
    estimate_straightforward_cost,
    estimate_view_cost,
    pairwise_intersection_cost,
)
from repro.core.plan import StraightforwardPlan
from repro.core.query import ContextQuery, ContextSpecification, KeywordQuery
from repro.core.statistics import cardinality_spec, df_spec, total_length_spec


def query(keywords, predicates):
    return ContextQuery(KeywordQuery(keywords), ContextSpecification(predicates))


class TestProposition31:
    def test_bound_is_sum_of_list_lengths(self, handmade_index):
        bound = context_materialization_bound(
            handmade_index, ["DigestiveSystem", "Neoplasms"]
        )
        assert bound == 4 + 3

    def test_bound_dominates_observed_context_work(self, corpus_index):
        """Observed plan work never exceeds the Proposition 3.1 bound
        (plus the per-keyword statistic scans the bound formula covers
        separately)."""
        predicates = sorted(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
            reverse=True,
        )[:2]
        q = query(["therapy"], predicates)
        plan = StraightforwardPlan(corpus_index)
        execution = plan.execute(
            q, [cardinality_spec(), total_length_spec(), df_spec("therapy")]
        )
        estimate = estimate_straightforward_cost(corpus_index, q)
        assert execution.counter.entries_scanned <= estimate.total + estimate.context_bound


class TestEstimates:
    def test_components_positive(self, handmade_index):
        q = query(["leukemia", "cancer"], ["Diseases"])
        estimate = estimate_straightforward_cost(handmade_index, q)
        assert estimate.context_bound == 6
        assert estimate.aggregation_bound == 12
        assert estimate.keyword_stats_bound > 0
        assert estimate.total == (
            estimate.context_bound
            + estimate.aggregation_bound
            + estimate.keyword_stats_bound
        )

    def test_view_cost_scales_with_view_size(self):
        assert estimate_view_cost(100, 4) == 104
        assert estimate_view_cost(4096, 2) == 4098

    def test_pairwise_cost_nonnegative(self, handmade_index):
        cost = pairwise_intersection_cost(
            handmade_index, "DigestiveSystem", "Neoplasms"
        )
        assert cost >= 0

    def test_view_cost_independent_of_context_size(self):
        """Theorem 4.2: the view answer cost depends only on view size."""
        assert estimate_view_cost(256, 3) == estimate_view_cost(256, 3)
        small_context_cost = estimate_view_cost(256, 3)
        huge_context_cost = estimate_view_cost(256, 3)
        assert small_context_cost == huge_context_cost
