"""Tests for the deterministic RNG helpers."""

import random

import pytest

from repro._rng import derive_rng, make_rng, weighted_sample, zipf_weights


class TestMakeRng:
    def test_none_gives_fixed_default(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_int_seed_deterministic(self):
        assert make_rng(5).random() == make_rng(5).random()
        assert make_rng(5).random() != make_rng(6).random()

    def test_existing_rng_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng


class TestDeriveRng:
    def test_labels_decorrelate(self):
        parent = make_rng(7)
        a = derive_rng(parent, "a")
        parent2 = make_rng(7)
        b = derive_rng(parent2, "b")
        assert a.random() != b.random()

    def test_same_label_same_stream(self):
        a = derive_rng(make_rng(7), "x")
        b = derive_rng(make_rng(7), "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_consuming_one_stream_does_not_shift_sibling(self):
        parent_a, parent_b = make_rng(3), make_rng(3)
        first_a = derive_rng(parent_a, "one")
        first_b = derive_rng(parent_b, "one")
        # Consume lots from the first stream on side a only.
        for _ in range(100):
            first_a.random()
        # The sibling derivation must be unaffected.
        assert derive_rng(parent_a, "two").random() == derive_rng(
            parent_b, "two"
        ).random()


class TestZipfWeights:
    def test_decreasing(self):
        weights = zipf_weights(10, 1.0)
        assert list(weights) == sorted(weights, reverse=True)

    def test_skew_zero_uniform(self):
        assert set(zipf_weights(5, 0.0)) == {1.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, -1.0)


class TestWeightedSample:
    def test_distinct_results(self):
        rng = make_rng(2)
        population = list(range(50))
        weights = zipf_weights(50)
        sample = weighted_sample(rng, population, weights, 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_k_exceeding_population(self):
        rng = make_rng(2)
        sample = weighted_sample(rng, [1, 2, 3], [1, 1, 1], 10)
        assert sample == [1, 2, 3]

    def test_weighting_bias(self):
        """Heavily weighted items are sampled far more often."""
        rng = make_rng(4)
        population = ["heavy", "light"]
        counts = {"heavy": 0, "light": 0}
        for _ in range(300):
            (first,) = weighted_sample(rng, population, [100.0, 1.0], 1)
            counts[first] += 1
        assert counts["heavy"] > 250
