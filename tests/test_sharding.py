"""Sharded index + engine: exact merging, bit-identical parallel ranking.

The load-bearing property (ISSUE 2): for ANY shard count, partitioner,
ranking model, and evaluation mode, the sharded engine returns
byte-for-byte the single-shard :class:`ContextSearchEngine` answer —
same statistics, same float scores, same ranked order including docid
tie-breaks.  Everything here asserts exact equality (``==`` on floats),
never approximate.
"""

from __future__ import annotations

import pytest

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    EmptyContextError,
    QueryError,
    ShardedEngine,
    ShardedInvertedIndex,
    WideSparseTable,
    ViewCatalog,
    fork_available,
    generate_corpus,
    load_any_index,
    load_index,
    load_sharded_index,
    make_partitioner,
    materialize_view,
    replicate_catalog,
    save_index,
    save_sharded_index,
)
from repro.core.ranking import ALL_RANKING_FUNCTIONS
from repro.core.sharded_engine import ShardedEngine as _ShardedEngine
from repro.core.statistics import UNIQUE_TERMS, StatisticSpec
from repro.data import generate_performance_workload
from repro.errors import IndexError_
from repro.storage import StorageError
from repro.index.sharded import (
    HashPartitioner,
    RangePartitioner,
    shard_documents,
)

SHARD_COUNTS = (1, 2, 3, 8)
PARTITIONERS = ("hash", "range")


def hit_tuples(results):
    """The full bit-identity signature of a ranked answer."""
    return [(h.doc_id, h.external_id, h.score) for h in results.hits]


def stats_tuple(stats):
    return (
        stats.cardinality,
        stats.total_length,
        dict(stats.df),
        dict(stats.tc),
        stats.unique_terms,
    )


# ---------------------------------------------------------------------------
# Partitioners


class TestPartitioners:
    def test_hash_is_stable_and_in_range(self):
        part = HashPartitioner(4)
        first = [part.assign(f"D{i}", i, 100) for i in range(100)]
        second = [part.assign(f"D{i}", 999, 1) for i in range(100)]
        assert first == second  # position-independent
        assert all(0 <= s < 4 for s in first)
        assert len(set(first)) > 1  # actually spreads

    def test_range_is_contiguous_and_balanced(self):
        part = RangePartitioner(4)
        assigned = [part.assign("x", pos, 100) for pos in range(100)]
        assert assigned == sorted(assigned)  # arrival-order ranges
        assert [assigned.count(s) for s in range(4)] == [25, 25, 25, 25]

    def test_range_handles_remainders(self):
        part = RangePartitioner(3)
        assigned = [part.assign("x", pos, 10) for pos in range(10)]
        assert assigned == sorted(assigned)
        assert set(assigned) == {0, 1, 2}

    def test_make_partitioner_rejects_unknown(self):
        with pytest.raises(IndexError_, match="unknown partitioner"):
            make_partitioner("round-robin", 2)

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(IndexError_, match="num_shards"):
            HashPartitioner(0)

    def test_shard_documents_partitions_exactly(self, corpus):
        docs = corpus.documents[:200]
        for name in PARTITIONERS:
            buckets = shard_documents(docs, make_partitioner(name, 3))
            flattened = [d.doc_id for bucket in buckets for d in bucket]
            assert sorted(flattened) == sorted(d.doc_id for d in docs)
            assert len(flattened) == len(set(flattened))


# ---------------------------------------------------------------------------
# Global statistics of the sharded index (exact additive merges)


class TestGlobalStatistics:
    @pytest.fixture(scope="class", params=PARTITIONERS)
    def sharded(self, request, corpus_index):
        return ShardedInvertedIndex.from_index(
            corpus_index, 3, partitioner=request.param
        )

    def test_cardinality_and_length(self, sharded, corpus_index):
        assert sharded.num_docs == corpus_index.num_docs
        assert sharded.total_length == corpus_index.total_length
        assert (
            sharded.average_document_length()
            == corpus_index.average_document_length()
        )
        assert len(sharded) == len(corpus_index)

    def test_per_term_statistics(self, sharded, corpus_index):
        terms = sorted(corpus_index.vocabulary)[::50]  # every 50th term
        assert terms
        for term in terms:
            assert sharded.document_frequency(
                term
            ) == corpus_index.document_frequency(term)
            assert sharded.term_count(term) == sum(
                tf for _, tf in corpus_index.postings(term)
            )
            assert sharded.max_tf(term) == corpus_index.postings(term).max_tf

    def test_shards_partition_the_collection(self, sharded, corpus_index):
        seen = []
        for shard in sharded.shards:
            seen.extend(shard.global_ids)
        assert sorted(seen) == list(range(corpus_index.num_docs))

    def test_build_matches_from_index(self, corpus):
        docs = corpus.documents[:300]
        built = ShardedInvertedIndex.build(docs, 3, partitioner="hash")
        from repro import build_index

        flat = build_index(docs)
        resharded = ShardedInvertedIndex.from_index(flat, 3, partitioner="hash")
        assert [s.index.num_docs for s in built.shards] == [
            s.index.num_docs for s in resharded.shards
        ]
        assert built.total_length == resharded.total_length
        for term in sorted(flat.vocabulary)[::40]:
            assert built.document_frequency(term) == flat.document_frequency(term)


# ---------------------------------------------------------------------------
# The headline property: bit-identical ranking for every configuration


@pytest.fixture(scope="module", params=(31, 77), ids=("corpus-a", "corpus-b"))
def random_stack(request):
    """A random corpus, its flat index, and a mixed query workload."""
    corpus = generate_corpus(CorpusConfig(num_docs=550, seed=request.param))
    index = corpus.build_index()
    t_c = max(index.num_docs // 50, 10)
    workload = generate_performance_workload(
        corpus,
        index,
        t_c=t_c,
        kind="large",
        keyword_counts=(2, 3),
        queries_per_count=3,
        seed=5,
    )
    queries = [wq.query for wq in workload.all_queries()]
    assert queries
    return {"corpus": corpus, "index": index, "queries": queries}


@pytest.fixture(scope="module")
def sharded_variants(random_stack):
    """Every (shard count, partitioner) re-sharding of the random corpus."""
    return {
        (n, name): ShardedInvertedIndex.from_index(
            random_stack["index"], n, partitioner=name
        )
        for n in SHARD_COUNTS
        for name in PARTITIONERS
    }


class TestBitIdenticalProperty:
    @pytest.mark.parametrize("model_name", sorted(ALL_RANKING_FUNCTIONS))
    def test_all_modes_match_single_shard(
        self, random_stack, sharded_variants, model_name
    ):
        model_cls = ALL_RANKING_FUNCTIONS[model_name]
        ranking = model_cls()
        reference = ContextSearchEngine(random_stack["index"], ranking=ranking)
        queries = random_stack["queries"]

        expected = {}
        for i, query in enumerate(queries):
            ctx = reference.search(query)
            conv = reference.search_conventional(query)
            expected[i] = {
                "context": (hit_tuples(ctx), ctx.report.context_size,
                            ctx.report.result_size),
                "conventional": (hit_tuples(conv), conv.report.result_size),
            }
            if ranking.decomposable:
                dis = reference.search_disjunctive(query, top_k=10)
                expected[i]["disjunctive"] = hit_tuples(dis)

        for (n, name), sharded in sharded_variants.items():
            with ShardedEngine(
                sharded, ranking=model_cls(), executor="serial"
            ) as engine:
                for i, query in enumerate(queries):
                    ctx = engine.search(query)
                    assert (
                        hit_tuples(ctx),
                        ctx.report.context_size,
                        ctx.report.result_size,
                    ) == expected[i]["context"], (
                        f"context mismatch: {n} shards/{name}, query {i}"
                    )
                    conv = engine.search_conventional(query)
                    assert (
                        hit_tuples(conv),
                        conv.report.result_size,
                    ) == expected[i]["conventional"], (
                        f"conventional mismatch: {n} shards/{name}, query {i}"
                    )
                    if ranking.decomposable:
                        dis = engine.search_disjunctive(query, top_k=10)
                        assert hit_tuples(dis) == expected[i]["disjunctive"], (
                            f"disjunctive mismatch: {n} shards/{name}, query {i}"
                        )

    def test_context_statistics_merge_exactly(
        self, random_stack, sharded_variants
    ):
        reference = ContextSearchEngine(random_stack["index"])
        contexts = [q.context for q in random_stack["queries"][:4]]
        keyword_sets = [list(q.keywords) for q in random_stack["queries"][:4]]
        for (n, name), sharded in sharded_variants.items():
            with ShardedEngine(sharded, executor="serial") as engine:
                for context, keywords in zip(contexts, keyword_sets):
                    assert stats_tuple(
                        engine.context_statistics(context, keywords)
                    ) == stats_tuple(
                        reference.context_statistics(context, keywords)
                    ), f"stats mismatch: {n} shards/{name}"

    def test_top_k_truncation_matches(self, random_stack, sharded_variants):
        reference = ContextSearchEngine(random_stack["index"])
        query = random_stack["queries"][0]
        sharded = sharded_variants[(3, "hash")]
        with ShardedEngine(sharded, executor="serial") as engine:
            for k in (1, 3, 10):
                assert hit_tuples(engine.search(query, top_k=k)) == hit_tuples(
                    reference.search(query, top_k=k)
                )


# ---------------------------------------------------------------------------
# Execution backends never change answers


class TestBackends:
    @pytest.fixture(scope="class")
    def sharded(self, random_stack):
        return ShardedInvertedIndex.from_index(
            random_stack["index"], 3, partitioner="hash"
        )

    @pytest.fixture(scope="class")
    def serial_answers(self, random_stack, sharded):
        with ShardedEngine(sharded, executor="serial") as engine:
            return [
                hit_tuples(engine.search(q)) for q in random_stack["queries"]
            ]

    def test_thread_backend_identical(
        self, random_stack, sharded, serial_answers
    ):
        with ShardedEngine(sharded, executor="thread") as engine:
            assert engine.executor_name == "thread"
            got = [hit_tuples(engine.search(q)) for q in random_stack["queries"]]
        assert got == serial_answers

    @pytest.mark.skipif(not fork_available(), reason="fork start method missing")
    def test_fork_backend_identical(
        self, random_stack, sharded, serial_answers
    ):
        with ShardedEngine(sharded, executor="fork") as engine:
            assert engine.executor_name == "fork"
            got = [hit_tuples(engine.search(q)) for q in random_stack["queries"]]
        assert got == serial_answers

    def test_close_is_idempotent(self, sharded):
        engine = ShardedEngine(sharded, executor="thread")
        engine.close()
        engine.close()


# ---------------------------------------------------------------------------
# Views path: replicated catalogs, identical answers, per-shard coverage


class TestShardedViews:
    @pytest.fixture(scope="class")
    def stack(self, random_stack):
        index = random_stack["index"]
        query = random_stack["queries"][0]
        table = WideSparseTable.from_index(index)
        view = materialize_view(
            table,
            set(query.context.predicates),
            df_terms=list(query.keywords),
            tc_terms=list(query.keywords),
        )
        catalog = ViewCatalog([view])
        sharded = ShardedInvertedIndex.from_index(index, 3, partitioner="hash")
        return {
            "index": index,
            "query": query,
            "catalog": catalog,
            "sharded": sharded,
        }

    def test_views_path_matches_straightforward(self, stack):
        flat_views = ContextSearchEngine(stack["index"], catalog=stack["catalog"])
        flat_plain = ContextSearchEngine(stack["index"])
        catalogs = replicate_catalog(stack["sharded"], stack["catalog"])
        with ShardedEngine(
            stack["sharded"], catalogs=catalogs, executor="serial"
        ) as engine:
            sharded_result = engine.search(stack["query"])
            path = sharded_result.report.resolution.path
        flat = flat_views.search(stack["query"])
        plain = flat_plain.search(stack["query"])
        assert flat.report.resolution.path == "views"
        assert path == "sharded-views"
        assert hit_tuples(sharded_result) == hit_tuples(flat) == hit_tuples(plain)

    def test_catalog_count_must_match_shards(self, stack):
        catalogs = replicate_catalog(stack["sharded"], stack["catalog"])
        with pytest.raises(QueryError, match="catalogs for"):
            ShardedEngine(stack["sharded"], catalogs=catalogs[:1])


# ---------------------------------------------------------------------------
# Error parity with the single-shard engine


class TestErrorParity:
    @pytest.fixture(scope="class")
    def engines(self, corpus_index):
        sharded = ShardedInvertedIndex.from_index(corpus_index, 3)
        engine = ShardedEngine(sharded, executor="serial")
        yield ContextSearchEngine(corpus_index), engine
        engine.close()

    def test_empty_context(self, engines):
        flat, sharded = engines
        query = "therapy | NoSuchPredicateAnywhere"
        with pytest.raises(EmptyContextError):
            flat.search(query)
        with pytest.raises(EmptyContextError):
            sharded.search(query)

    def test_stopword_only_keywords(self, engines):
        flat, sharded = engines
        query = "the | Diseases"
        with pytest.raises(QueryError) as flat_exc:
            flat.search(query)
        with pytest.raises(QueryError) as sharded_exc:
            sharded.search(query)
        assert str(sharded_exc.value) == str(flat_exc.value)

    def test_disjunctive_needs_decomposable_model(self, engines, corpus_index):
        _, _ = engines
        dirichlet = ALL_RANKING_FUNCTIONS["dirichlet-lm"]()
        flat = ContextSearchEngine(corpus_index, ranking=dirichlet)
        sharded_index = ShardedInvertedIndex.from_index(corpus_index, 2)
        with pytest.raises(QueryError) as flat_exc:
            flat.search_disjunctive("therapy | Diseases")
        with ShardedEngine(
            sharded_index,
            ranking=ALL_RANKING_FUNCTIONS["dirichlet-lm"](),
            executor="serial",
        ) as engine:
            with pytest.raises(QueryError) as sharded_exc:
                engine.search_disjunctive("therapy | Diseases")
        assert str(sharded_exc.value) == str(flat_exc.value)

    def test_non_additive_statistic_rejected(self):
        with pytest.raises(QueryError, match="not additive"):
            _ShardedEngine._check_additive([StatisticSpec(UNIQUE_TERMS)])

    def test_uncommitted_shards_rejected(self, corpus):
        from repro import InvertedIndex
        from repro.index.sharded import IndexShard
        from array import array

        index = InvertedIndex()
        index.add(corpus.documents[0])
        shard = IndexShard(0, index, array("q", [0]))
        sharded = ShardedInvertedIndex(
            [shard], make_partitioner("hash", 1)
        )
        with pytest.raises(QueryError, match="committed"):
            ShardedEngine(sharded)


# ---------------------------------------------------------------------------
# Batched execution (search_many)


class TestSearchMany:
    @pytest.fixture(scope="class")
    def engines(self, random_stack):
        sharded = ShardedInvertedIndex.from_index(random_stack["index"], 3)
        engine = ShardedEngine(sharded, executor="serial")
        yield ContextSearchEngine(random_stack["index"]), engine
        engine.close()

    def test_batch_equals_per_query(self, random_stack, engines):
        _, engine = engines
        queries = random_stack["queries"]
        report = engine.search_many(queries, top_k=10)
        assert len(report) == len(queries)
        assert report.workers == 3
        for query, outcome in zip(queries, report.outcomes):
            assert outcome.ok
            single = engine.search(query, top_k=10)
            assert hit_tuples(outcome.results) == hit_tuples(single)

    def test_batch_records_failures_in_order(self, random_stack, engines):
        _, engine = engines
        good = random_stack["queries"][0]
        bad = "therapy | NoSuchPredicateAnywhere"
        report = engine.search_many([good, bad, good])
        assert [o.ok for o in report.outcomes] == [True, False, True]
        assert report.outcomes[1].error.startswith("EmptyContextError:")

    def test_batch_modes(self, random_stack, engines):
        flat, engine = engines
        queries = random_stack["queries"][:3]
        for mode, run in (
            ("conventional", lambda q: flat.search_conventional(q, top_k=10)),
            ("disjunctive", lambda q: flat.search_disjunctive(q, top_k=10)),
        ):
            report = engine.search_many(queries, top_k=10, mode=mode)
            assert report.mode == mode
            for query, outcome in zip(queries, report.outcomes):
                assert outcome.ok, outcome.error
                assert hit_tuples(outcome.results) == hit_tuples(run(query))

    def test_unknown_mode_rejected(self, engines):
        _, engine = engines
        with pytest.raises(QueryError, match="unknown batch mode"):
            engine.search_many(["a | B"], mode="fanout")


# ---------------------------------------------------------------------------
# Persistence: shard manifests


class TestShardedStorage:
    def test_roundtrip_preserves_answers(self, tmp_path, random_stack):
        sharded = ShardedInvertedIndex.from_index(
            random_stack["index"], 3, partitioner="range"
        )
        path = tmp_path / "corpus.idx.json.gz"
        save_sharded_index(sharded, path)
        assert path.exists()
        for shard_id in range(3):
            assert (tmp_path / f"corpus.shard{shard_id}.idx.json.gz").exists()

        loaded = load_sharded_index(path)
        assert loaded.num_shards == 3
        assert loaded.partitioner.name == "range"
        assert loaded.num_docs == sharded.num_docs
        query = random_stack["queries"][0]
        with ShardedEngine(sharded, executor="serial") as a, ShardedEngine(
            loaded, executor="serial"
        ) as b:
            assert hit_tuples(a.search(query)) == hit_tuples(b.search(query))

    def test_load_any_index_dispatches(self, tmp_path, random_stack):
        flat_path = tmp_path / "flat.json.gz"
        save_index(random_stack["index"], flat_path)
        sharded_path = tmp_path / "sharded.json.gz"
        save_sharded_index(
            ShardedInvertedIndex.from_index(random_stack["index"], 2),
            sharded_path,
        )
        assert load_any_index(flat_path).num_docs == random_stack["index"].num_docs
        loaded = load_any_index(sharded_path)
        assert isinstance(loaded, ShardedInvertedIndex)
        assert loaded.num_shards == 2

    def test_flat_loader_rejects_sharded_manifest(self, tmp_path, random_stack):
        path = tmp_path / "sharded.json.gz"
        save_sharded_index(
            ShardedInvertedIndex.from_index(random_stack["index"], 2), path
        )
        with pytest.raises(StorageError):
            load_index(path)
