"""Tests for the batched query executor.

The batch executor shares context materialisations, prefetches posting
columns, and fans out across threads — none of which may change a single
answer or a single per-query operation count.  The central invariant
(cost-counter parity) is: for every query in a batch, the results AND
the CostCounter must be identical to running that query standalone.
"""

import pytest

from repro import BatchExecutor, ContextSearchEngine
from repro.core.engine import BatchOutcome, BatchReport, SharedContextStore
from repro.core.stats_cache import CachingSearchEngine
from repro.errors import QueryError
from repro.index.postings import CostCounter


QUERIES = [
    "leukemia | DigestiveSystem",
    "pancreas | Diseases",
    "leukemia | DigestiveSystem",  # repeated context: shared materialisation
    "cancer | Neoplasms",
    "pancreas leukemia | DigestiveSystem",  # same context again
    "leukemia | Diseases DigestiveSystem",
]


@pytest.fixture
def engine(handmade_index):
    return ContextSearchEngine(handmade_index)


class TestCounterParity:
    """Satellite: per-query counts from concurrent execution must match
    single-query execution exactly."""

    @pytest.mark.parametrize("workers", (1, 4))
    def test_results_and_counters_match_standalone(self, engine, workers):
        report = BatchExecutor(engine, max_workers=workers).run(QUERIES)
        assert all(o.ok for o in report.outcomes)
        for text, outcome in zip(QUERIES, report.outcomes):
            solo = engine.search(text)
            assert solo.external_ids() == outcome.results.external_ids()
            assert solo.report.counter == outcome.results.report.counter
            for a, b in zip(solo.hits, outcome.results.hits):
                assert a.score == pytest.approx(b.score, abs=1e-12)

    def test_parity_holds_without_sharing(self, engine):
        shared = BatchExecutor(engine, max_workers=2).run(QUERIES)
        unshared = BatchExecutor(
            engine, max_workers=2, share_contexts=False
        ).run(QUERIES)
        for a, b in zip(shared.outcomes, unshared.outcomes):
            assert a.results.external_ids() == b.results.external_ids()
            assert a.results.report.counter == b.results.report.counter

    def test_conventional_mode_parity(self, engine):
        report = BatchExecutor(engine, max_workers=2).run(
            QUERIES, mode="conventional"
        )
        for text, outcome in zip(QUERIES, report.outcomes):
            solo = engine.search_conventional(text)
            assert solo.external_ids() == outcome.results.external_ids()
            assert solo.report.counter == outcome.results.report.counter

    def test_disjunctive_mode_parity(self, engine):
        report = BatchExecutor(engine, max_workers=2).run(
            QUERIES, top_k=3, mode="disjunctive"
        )
        for text, outcome in zip(QUERIES, report.outcomes):
            solo = engine.search_disjunctive(text, top_k=3)
            assert solo.external_ids() == outcome.results.external_ids()


class TestSharing:
    def test_distinct_contexts_counted(self, engine):
        report = BatchExecutor(engine).run(QUERIES)
        # DigestiveSystem ×3, Diseases, Neoplasms, Diseases+DigestiveSystem
        assert report.distinct_contexts == 4
        assert report.shared_context_hits == 2

    def test_store_canonicalises_keys(self):
        assert SharedContextStore.key_for(["b", "a", "b"]) == ("a", "b")

    def test_store_materialises_once(self, engine):
        store = SharedContextStore()
        first_ids, first_cost = store.materialise(engine, ["DigestiveSystem"])
        second_ids, second_cost = store.materialise(engine, ["DigestiveSystem"])
        assert first_ids is second_ids
        assert store.materialisations == 1
        assert store.reuses == 1
        assert first_cost == second_cost


class TestRobustness:
    def test_outcomes_keep_input_order(self, engine):
        report = BatchExecutor(engine, max_workers=4).run(QUERIES)
        assert [o.query for o in report.outcomes] == QUERIES

    def test_failing_query_does_not_abort_batch(self, engine):
        queries = [
            "leukemia | DigestiveSystem",
            "leukemia | NoSuchContextAnywhere",  # empty context
            "pancreas | Diseases",
        ]
        report = BatchExecutor(engine, max_workers=2).run(queries)
        assert [o.ok for o in report.outcomes] == [True, False, True]
        assert "EmptyContextError" in report.outcomes[1].error
        assert len(report.errors) == 1

    def test_malformed_query_captured(self, engine):
        report = BatchExecutor(engine).run(["no separator here"])
        assert not report.outcomes[0].ok
        assert "QueryError" in report.outcomes[0].error

    def test_empty_batch(self, engine):
        report = BatchExecutor(engine).run([])
        assert len(report) == 0
        assert report.aggregate_counter() == CostCounter()

    def test_invalid_workers_rejected(self, engine):
        with pytest.raises(QueryError):
            BatchExecutor(engine, max_workers=0)

    def test_invalid_mode_rejected(self, engine):
        with pytest.raises(QueryError):
            BatchExecutor(engine).run(QUERIES, mode="nonsense")

    def test_aggregate_counter_sums_per_query_counts(self, engine):
        report = BatchExecutor(engine, max_workers=2).run(QUERIES)
        expected = CostCounter()
        for text in QUERIES:
            expected.merge(engine.search(text).report.counter)
        assert report.aggregate_counter() == expected


class TestWrappedEngines:
    def test_caching_engine_supported_without_sharing(self, handmade_index):
        cached = CachingSearchEngine(ContextSearchEngine(handmade_index))
        reference = ContextSearchEngine(handmade_index)
        executor = BatchExecutor(cached, max_workers=2)
        assert executor.share_contexts is False
        report = executor.run(QUERIES)
        assert all(o.ok for o in report.outcomes)
        for text, outcome in zip(QUERIES, report.outcomes):
            assert (
                outcome.results.external_ids()
                == reference.search(text).external_ids()
            )


class TestReportShapes:
    def test_outcome_flags(self):
        assert BatchOutcome(query="q", results=None, error="boom").ok is False

    def test_report_len_and_fields(self, engine):
        report = BatchExecutor(engine, max_workers=1).run(QUERIES[:2])
        assert isinstance(report, BatchReport)
        assert len(report) == 2
        assert report.mode == "context"
        assert report.workers == 1
        assert report.elapsed_seconds >= 0.0
