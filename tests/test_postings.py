"""Unit and property tests for posting lists and skip pointers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.postings import CostCounter, PostingList


def make_list(ids, segment_size=4):
    return PostingList.from_pairs("t", [(i, 1) for i in ids], segment_size=segment_size)


sorted_ids = st.lists(
    st.integers(min_value=0, max_value=10_000), unique=True, max_size=300
).map(sorted)


class TestConstruction:
    def test_append_requires_increasing_ids(self):
        plist = PostingList("w")
        plist.append(3, 1)
        with pytest.raises(ValueError):
            plist.append(3, 1)
        with pytest.raises(ValueError):
            plist.append(1, 1)

    def test_tf_must_be_positive(self):
        plist = PostingList("w")
        with pytest.raises(ValueError):
            plist.append(1, 0)

    def test_frozen_rejects_append(self):
        plist = make_list([1, 2])
        with pytest.raises(RuntimeError):
            plist.append(5, 1)

    def test_reads_require_freeze(self):
        plist = PostingList("w")
        plist.append(1, 2)
        with pytest.raises(RuntimeError):
            plist.contains(1)

    def test_freeze_idempotent(self):
        plist = make_list([1, 2, 3])
        assert plist.freeze() is plist

    def test_segment_size_validation(self):
        with pytest.raises(ValueError):
            PostingList("w", segment_size=1)

    def test_iteration_yields_pairs(self):
        plist = PostingList.from_pairs("w", [(1, 3), (5, 2)])
        assert list(plist) == [(1, 3), (5, 2)]

    def test_empty_list(self):
        plist = make_list([])
        assert len(plist) == 0
        assert plist.num_segments == 0
        assert not plist.contains(7)


class TestSegments:
    def test_segment_bounds(self):
        plist = make_list(list(range(0, 20, 2)), segment_size=4)
        bounds = plist.segment_bounds()
        assert bounds[0] == (0, 6)  # ids 0,2,4,6
        assert bounds[1] == (4, 14)  # ids 8,10,12,14
        assert bounds[-1][1] == 18

    def test_num_segments_ceil(self):
        assert make_list(list(range(9)), segment_size=4).num_segments == 3

    @given(sorted_ids)
    def test_segments_cover_all_entries(self, ids):
        plist = make_list(ids, segment_size=5)
        covered = set()
        bounds = plist.segment_bounds()
        for idx, (start, _) in enumerate(bounds):
            end = bounds[idx + 1][0] if idx + 1 < len(bounds) else len(ids)
            covered.update(range(start, end))
        assert covered == set(range(len(ids)))


class TestLookups:
    @given(sorted_ids, st.integers(min_value=0, max_value=10_000))
    def test_contains_matches_set(self, ids, probe):
        plist = make_list(ids)
        assert plist.contains(probe) == (probe in set(ids))

    def test_tf_for(self):
        plist = PostingList.from_pairs("w", [(1, 3), (4, 7)])
        assert plist.tf_for(1) == 3
        assert plist.tf_for(4) == 7
        assert plist.tf_for(2) is None

    @given(sorted_ids, st.integers(min_value=0, max_value=10_000))
    def test_skip_to_finds_first_geq(self, ids, target):
        plist = make_list(ids, segment_size=3)
        pos = plist.skip_to(0, target, None)
        # Everything before pos is < target; pos itself is >= target.
        assert all(doc_id < target for doc_id in ids[:pos])
        if pos < len(ids):
            assert ids[pos] >= target

    def test_skip_to_counts_skipped_segments(self):
        plist = make_list(list(range(100)), segment_size=10)
        counter = CostCounter()
        plist.skip_to(0, 95, counter)
        assert counter.segments_skipped >= 8

    def test_skip_to_from_midpoint(self):
        ids = list(range(0, 60, 3))
        plist = make_list(ids, segment_size=4)
        pos = plist.skip_to(5, 45, None)
        assert ids[pos] == 45


class TestOverlap:
    def test_disjoint_ranges_no_overlap(self):
        a = make_list(list(range(0, 20)), segment_size=4)
        b = make_list(list(range(100, 120)), segment_size=4)
        assert a.overlapping_segments(b) == 0
        assert b.overlapping_segments(a) == 0

    def test_full_overlap(self):
        a = make_list(list(range(0, 40)), segment_size=4)
        b = make_list([0, 39], segment_size=4)  # spans a's whole range
        assert a.overlapping_segments(b) == a.num_segments

    def test_partial_overlap(self):
        a = make_list(list(range(0, 100)), segment_size=10)  # 10 segments
        b = make_list(list(range(45, 55)), segment_size=10)
        # Only segments covering ids 45-55 overlap b's range.
        assert a.overlapping_segments(b) == 2

    @given(sorted_ids, sorted_ids)
    def test_overlap_bounded_by_num_segments(self, ids_a, ids_b):
        a, b = make_list(ids_a), make_list(ids_b)
        assert 0 <= a.overlapping_segments(b) <= a.num_segments


class TestCostCounter:
    def test_merge(self):
        a = CostCounter(entries_scanned=3, segments_skipped=1, model_cost=10)
        b = CostCounter(entries_scanned=2, segments_skipped=4, model_cost=5)
        a.merge(b)
        assert (a.entries_scanned, a.segments_skipped, a.model_cost) == (5, 5, 15)

    def test_reset(self):
        counter = CostCounter(entries_scanned=3, model_cost=7)
        counter.reset()
        assert counter.entries_scanned == 0
        assert counter.model_cost == 0


class TestMaxTf:
    """max_tf is cached at freeze time (no per-query O(len) scan)."""

    def test_equals_scan_of_tfs(self):
        plist = PostingList.from_pairs("t", [(1, 2), (4, 7), (9, 3)])
        assert plist.max_tf == 7 == max(plist.tfs)

    def test_empty_list_is_zero(self):
        assert PostingList.from_pairs("t", []).max_tf == 0

    def test_from_arrays_path(self):
        plist = PostingList.from_arrays("t", [2, 5, 11], [1, 9, 4])
        assert plist.max_tf == 9

    def test_requires_frozen(self):
        plist = PostingList("t")
        plist.append(1, 5)
        with pytest.raises(RuntimeError, match="frozen"):
            plist.max_tf

    def test_extend_recomputes(self):
        plist = PostingList.from_pairs("t", [(1, 2), (3, 4)])
        assert plist.max_tf == 4
        plist.extend([(7, 11), (9, 1)])
        assert plist.max_tf == 11
