"""Tests for the workload-driven (RDBMS-style) view-selection baseline."""

import pytest

from repro.errors import SelectionError
from repro.selection.workload_driven import (
    WorkloadEntry,
    evaluate_coverage,
    workload_driven_selection,
    workload_from_queries,
)


def pow2_view_size(keyword_set):
    return 2 ** len(frozenset(keyword_set))


def entry(predicates, frequency=1, context_size=100):
    return WorkloadEntry(
        predicates=frozenset(predicates),
        frequency=frequency,
        context_size=context_size,
    )


class TestGreedySelection:
    def test_covers_high_frequency_contexts_first(self):
        workload = [
            entry("ab", frequency=100),
            entry("xyzq", frequency=1),
        ]
        report = workload_driven_selection(
            workload, pow2_view_size, storage_budget=8
        )
        # Budget 8 fits only the {a,b} view (4 tuples); xyzq needs 16.
        assert report.keyword_sets == [frozenset("ab")]
        assert report.covered_frequency == 100
        assert report.workload_coverage == pytest.approx(100 / 101)

    def test_merged_candidates_cover_multiple_contexts(self):
        workload = [
            entry("ab", frequency=10),
            entry("ac", frequency=10),
        ]
        report = workload_driven_selection(
            workload, pow2_view_size, storage_budget=8
        )
        # Either the merged {a,b,c} view (8 tuples) or the two singles
        # (4 + 4) fits the budget and covers everything.
        assert report.workload_coverage == 1.0
        assert report.storage_used <= 8

    def test_budget_respected(self):
        workload = [entry("abcd", frequency=5), entry("wxyz", frequency=5)]
        report = workload_driven_selection(
            workload, pow2_view_size, storage_budget=20
        )
        assert report.storage_used <= 20
        assert len(report.keyword_sets) == 1  # only one 16-tuple view fits

    def test_benefit_scales_with_context_size(self):
        workload = [
            entry("ab", frequency=1, context_size=10_000),
            entry("cd", frequency=1, context_size=10),
        ]
        report = workload_driven_selection(
            workload, pow2_view_size, storage_budget=4
        )
        assert report.keyword_sets == [frozenset("ab")]

    def test_invalid_budget(self):
        with pytest.raises(SelectionError):
            workload_driven_selection([], pow2_view_size, storage_budget=0)

    def test_empty_workload(self):
        report = workload_driven_selection(
            [], pow2_view_size, storage_budget=100
        )
        assert report.keyword_sets == []
        assert report.workload_coverage == 0.0


class TestCoverageEvaluation:
    def test_drift_degrades_workload_driven_but_not_guarantee(self):
        """The paper's Section 7 argument in miniature: train on one
        workload, evaluate on a drifted one."""
        train = [entry("ab", 50), entry("bc", 50)]
        drifted = [entry("de", 50), entry("ef", 50)]
        report = workload_driven_selection(
            train, pow2_view_size, storage_budget=64
        )
        assert evaluate_coverage(report.keyword_sets, train) == 1.0
        assert evaluate_coverage(report.keyword_sets, drifted) == 0.0
        # A guarantee-style selection over the whole (tiny) predicate
        # space covers both workloads.
        guarantee = [frozenset("abc"), frozenset("def")]
        assert evaluate_coverage(guarantee, train) == 1.0
        assert evaluate_coverage(guarantee, drifted) == 1.0

    def test_empty_workload_coverage(self):
        assert evaluate_coverage([frozenset("ab")], []) == 0.0


class TestWorkloadFromQueries:
    def test_aggregates_duplicate_contexts(self):
        from repro.core.query import ContextQuery, ContextSpecification, KeywordQuery

        def q(predicates):
            return ContextQuery(
                KeywordQuery(["w"]), ContextSpecification(predicates)
            )

        workload = workload_from_queries(
            [q(["m1", "m2"]), q(["m2", "m1"]), q(["m3"])],
            context_sizes={frozenset({"m1", "m2"}): 40},
        )
        assert len(workload) == 2
        by_key = {w.predicates: w for w in workload}
        assert by_key[frozenset({"m1", "m2"})].frequency == 2
        assert by_key[frozenset({"m1", "m2"})].context_size == 40
        assert by_key[frozenset({"m3"})].frequency == 1


class TestOnCorpusWorkload:
    def test_realistic_workload_selection(self, corpus, corpus_index):
        from repro.data import generate_performance_workload
        from repro.views import ViewSizeEstimator, WideSparseTable

        t_c = max(corpus_index.num_docs // 30, 10)
        perf = generate_performance_workload(
            corpus, corpus_index, t_c=t_c, kind="large",
            keyword_counts=(2,), queries_per_count=10, seed=8,
        )
        estimator = ViewSizeEstimator(WideSparseTable.from_index(corpus_index))
        workload = workload_from_queries(
            [wq.query for wq in perf.all_queries()],
            context_sizes={
                frozenset(wq.query.predicates): wq.context_size
                for wq in perf.all_queries()
            },
        )
        report = workload_driven_selection(
            workload, estimator, storage_budget=4096
        )
        assert report.keyword_sets, "expected at least one view"
        assert report.storage_used <= 4096
        assert report.workload_coverage > 0.5
