"""Full-pipeline integration tests: corpus → index → selection → search → eval.

These exercise the complete system the way the benchmarks do, at a
smaller scale, and assert the cross-module invariants that no unit test
can see.
"""

import pytest

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    generate_corpus,
    select_views,
)
from repro.data import generate_benchmark, generate_performance_workload
from repro.eval import run_quality_comparison

T_V = 128


@pytest.fixture(scope="module")
def stack():
    """A complete system: corpus, index, views, two engines."""
    corpus = generate_corpus(CorpusConfig(num_docs=2000, seed=555))
    index = corpus.build_index()
    t_c = max(index.num_docs // 50, 10)
    catalog, report = select_views(index, t_c=t_c, t_v=T_V)
    return {
        "corpus": corpus,
        "index": index,
        "t_c": t_c,
        "catalog": catalog,
        "report": report,
        "with_views": ContextSearchEngine(index, catalog=catalog),
        "plain": ContextSearchEngine(index),
    }


class TestViewsNeverChangeAnswers:
    """The reproduction's central invariant, at pipeline scale."""

    def test_large_context_queries_identical(self, stack):
        workload = generate_performance_workload(
            stack["corpus"],
            stack["index"],
            t_c=stack["t_c"],
            kind="large",
            keyword_counts=(2, 3),
            queries_per_count=6,
            seed=1,
        )
        for wq in workload.all_queries():
            a = stack["with_views"].search(wq.query)
            b = stack["plain"].search(wq.query)
            assert a.report.resolution.path == "views"
            assert b.report.resolution.path == "straightforward"
            assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]
            for ha, hb in zip(a.hits, b.hits):
                assert ha.score == pytest.approx(hb.score, abs=1e-10)

    def test_views_cost_less_on_large_contexts(self, stack):
        workload = generate_performance_workload(
            stack["corpus"],
            stack["index"],
            t_c=stack["t_c"],
            kind="large",
            keyword_counts=(2,),
            queries_per_count=6,
            seed=2,
        )
        view_cost = plain_cost = 0
        for wq in workload.all_queries():
            view_cost += stack["with_views"].search(wq.query).report.counter.model_cost
            plain_cost += stack["plain"].search(wq.query).report.counter.model_cost
        assert view_cost < plain_cost

    def test_small_contexts_fall_back(self, stack):
        workload = generate_performance_workload(
            stack["corpus"],
            stack["index"],
            t_c=stack["t_c"],
            kind="small",
            keyword_counts=(2,),
            queries_per_count=6,
            seed=3,
        )
        for wq in workload.all_queries():
            result = stack["with_views"].search(wq.query)
            assert result.report.resolution.path == "straightforward"


class TestQualityShape:
    def test_context_sensitive_wins_overall(self, stack):
        benchmark = generate_benchmark(
            stack["corpus"],
            stack["index"],
            num_topics=10,
            min_result_size=10,
            min_relevant=3,
            seed=4,
        )
        comparison = run_quality_comparison(stack["with_views"], benchmark)
        assert comparison.wins >= comparison.losses
        summary = comparison.summary()
        assert summary["mrr_context"] >= summary["mrr_conventional"] - 0.05


class TestSelectionScalesWithThresholds:
    def test_views_cover_every_large_workload_context(self, stack):
        """Every generated large-context specification is covered by a
        catalog view — the operational consequence of Problem 5.1."""
        workload = generate_performance_workload(
            stack["corpus"],
            stack["index"],
            t_c=stack["t_c"],
            kind="large",
            keyword_counts=(2, 3),
            queries_per_count=6,
            seed=5,
        )
        for wq in workload.all_queries():
            assert stack["catalog"].find_covering(wq.query.context) is not None

    def test_all_views_within_tv(self, stack):
        for view in stack["catalog"]:
            assert view.size <= T_V
