"""Unit tests for ranking functions, including hand-computed Formula 3 values."""

import math

import pytest

from repro.core.ranking import (
    BM25,
    ALL_RANKING_FUNCTIONS,
    DirichletLanguageModel,
    PivotedNormalizationTFIDF,
)
from repro.core.statistics import (
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
)

QS = QueryStatistics.from_keywords(["w1", "w2"])
DS = DocumentStatistics(
    length=100, unique_terms=60, term_frequencies={"w1": 3, "w2": 1}
)
CS = CollectionStatistics(
    cardinality=1000,
    total_length=100_000,  # avgdl = 100
    df={"w1": 50, "w2": 400},
    tc={"w1": 120, "w2": 900},
)


class TestPivotedTFIDF:
    def test_hand_computed_score(self):
        """Formula 3 computed by hand for the fixture statistics.

        len(d) == avgdl, so the pivot norm is exactly 1 regardless of s.
        """
        fn = PivotedNormalizationTFIDF(slope=0.2)
        expected = (1 + math.log(1 + math.log(3))) * math.log(1001 / 50) + (
            1 + math.log(1 + math.log(1))
        ) * math.log(1001 / 400)
        assert fn.score(QS, DS, CS) == pytest.approx(expected)

    def test_rare_term_scores_higher(self):
        """Lower df ⇒ higher idf ⇒ higher score, all else equal."""
        fn = PivotedNormalizationTFIDF()
        ds = DocumentStatistics(100, 60, {"w1": 1})
        qs = QueryStatistics.from_keywords(["w1"])
        rare = CollectionStatistics(1000, 100_000, {"w1": 10})
        common = CollectionStatistics(1000, 100_000, {"w1": 500})
        assert fn.score(qs, ds, rare) > fn.score(qs, ds, common)

    def test_length_normalisation_penalises_long_docs(self):
        fn = PivotedNormalizationTFIDF(slope=0.5)
        short = DocumentStatistics(50, 40, {"w1": 1})
        long_ = DocumentStatistics(200, 120, {"w1": 1})
        qs = QueryStatistics.from_keywords(["w1"])
        assert fn.score(qs, short, CS) > fn.score(qs, long_, CS)

    def test_unmatched_terms_contribute_zero(self):
        fn = PivotedNormalizationTFIDF()
        ds = DocumentStatistics(100, 60, {})
        assert fn.score(QS, ds, CS) == 0.0

    def test_repeated_query_terms_scale_by_tq(self):
        fn = PivotedNormalizationTFIDF()
        qs1 = QueryStatistics.from_keywords(["w1"])
        qs2 = QueryStatistics.from_keywords(["w1", "w1"])
        ds = DocumentStatistics(100, 60, {"w1": 2})
        assert fn.score(qs2, ds, CS) == pytest.approx(2 * fn.score(qs1, ds, CS))

    def test_slope_validation(self):
        with pytest.raises(ValueError):
            PivotedNormalizationTFIDF(slope=1.5)

    def test_context_sensitivity_is_statistics_only(self):
        """Formula 4 == Formula 3 with S_c(D_P) substituted: same object,
        different statistics argument."""
        fn = PivotedNormalizationTFIDF()
        ctx_stats = CollectionStatistics(
            cardinality=100, total_length=10_000, df={"w1": 40, "w2": 5}
        )
        s_global = fn.score(QS, DS, CS)
        s_context = fn.score(QS, DS, ctx_stats)
        assert s_global != s_context  # same doc, different collections

    def test_required_specs(self):
        fn = PivotedNormalizationTFIDF()
        specs = fn.required_collection_specs(["w1", "w2", "w1"])
        names = [s.column_name() for s in specs]
        assert names == ["cardinality", "total_length", "df:w1", "df:w2"]


class TestBM25:
    def test_score_positive_for_matches(self):
        assert BM25().score(QS, DS, CS) > 0

    def test_idf_never_negative(self):
        """Even df close to N keeps contributions non-negative."""
        fn = BM25()
        qs = QueryStatistics.from_keywords(["w1"])
        ds = DocumentStatistics(100, 60, {"w1": 2})
        cs = CollectionStatistics(1000, 100_000, {"w1": 999})
        assert fn.score(qs, ds, cs) >= 0

    def test_tf_saturation(self):
        """BM25's tf component saturates: the 10→20 gain is smaller than 1→2."""
        fn = BM25()
        qs = QueryStatistics.from_keywords(["w1"])

        def score(tf):
            return fn.score(
                qs, DocumentStatistics(100, 60, {"w1": tf}), CS
            )

        assert score(2) - score(1) > score(20) - score(10)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25(k1=-1)
        with pytest.raises(ValueError):
            BM25(b=1.5)

    def test_required_specs_are_df_based(self):
        specs = BM25().required_collection_specs(["a"])
        assert [s.column_name() for s in specs] == [
            "cardinality",
            "total_length",
            "df:a",
        ]


class TestDirichletLM:
    def test_matching_doc_beats_nonmatching(self):
        fn = DirichletLanguageModel(mu=100)
        qs = QueryStatistics.from_keywords(["w1"])
        match = DocumentStatistics(100, 60, {"w1": 5})
        nomatch = DocumentStatistics(100, 60, {})
        assert fn.score(qs, match, CS) > fn.score(qs, nomatch, CS)

    def test_uses_tc_specs(self):
        specs = DirichletLanguageModel().required_collection_specs(["a", "b"])
        assert [s.column_name() for s in specs] == [
            "cardinality",
            "total_length",
            "tc:a",
            "tc:b",
        ]

    def test_unseen_background_term_does_not_crash(self):
        fn = DirichletLanguageModel()
        qs = QueryStatistics.from_keywords(["unknown"])
        ds = DocumentStatistics(100, 60, {"unknown": 1})
        cs = CollectionStatistics(10, 1000, {}, tc={})
        assert math.isfinite(fn.score(qs, ds, cs))

    def test_mu_validation(self):
        with pytest.raises(ValueError):
            DirichletLanguageModel(mu=0)


class TestRegistry:
    def test_all_models_registered(self):
        assert set(ALL_RANKING_FUNCTIONS) == {
            "pivoted-tfidf",
            "bm25",
            "dirichlet-lm",
        }

    def test_registry_constructs(self):
        for cls in ALL_RANKING_FUNCTIONS.values():
            assert cls().score(QS, DS, CS) is not None
