"""Fixture-free micro-tests for small API corners across the library."""

import pytest

from repro.core.engine import ExecutionReport, SearchHit, SearchResults
from repro.core.query import ContextSpecification, KeywordQuery, parse_query
from repro.errors import (
    BudgetExceededError,
    EmptyContextError,
    QueryError,
    ReproError,
)
from repro.index.postings import PostingList
from repro.views.rewrite import ResolutionReport


class TestErrorMessages:
    def test_budget_error_carries_fields(self):
        error = BudgetExceededError("apriori", 150, 100)
        assert error.algorithm == "apriori"
        assert error.work_done == 150
        assert error.budget == 100
        assert "150 > 100" in str(error)

    def test_hierarchy_catchability(self):
        with pytest.raises(ReproError):
            raise EmptyContextError("empty")
        with pytest.raises(QueryError):
            raise EmptyContextError("empty")  # subclass of QueryError


class TestExecutionReportDefaults:
    def test_fresh_report(self):
        report = ExecutionReport()
        assert report.elapsed_seconds == 0.0
        assert report.counter.model_cost == 0
        assert report.resolution.path == "straightforward"
        assert report.context_size is None
        assert report.result_size == 0

    def test_resolution_report_defaults(self):
        resolution = ResolutionReport()
        assert resolution.views_used == 0
        assert resolution.rare_term_fallbacks == 0


class TestSearchResults:
    def test_len_and_external_ids(self):
        hits = [
            SearchHit(doc_id=1, external_id="A", score=2.0),
            SearchHit(doc_id=0, external_id="B", score=1.0),
        ]
        results = SearchResults(hits=hits, report=ExecutionReport())
        assert len(results) == 2
        assert results.external_ids() == ["A", "B"]

    def test_empty_results(self):
        results = SearchResults(hits=[], report=ExecutionReport())
        assert len(results) == 0
        assert results.external_ids() == []


class TestQueryStrings:
    def test_parse_query_strips_whitespace(self):
        query = parse_query("  a   b |  M1   M2  ")
        assert query.keywords == ("a", "b")
        assert query.predicates == ("M1", "M2")

    def test_str_roundtrip_semantics(self):
        query = parse_query("w1 w2 | m2 m1")
        reparsed = parse_query(str(query).replace("∧", " "))
        assert reparsed.keywords == query.keywords
        assert reparsed.predicates == query.predicates

    def test_keyword_query_repetition_counts(self):
        assert len(KeywordQuery(["x", "x", "y"])) == 3

    def test_context_specification_frozen(self):
        spec = ContextSpecification(["m"])
        with pytest.raises(AttributeError):
            spec.predicates = ("other",)


class TestPostingListRepr:
    def test_repr_mentions_term_and_length(self):
        plist = PostingList.from_pairs("leukemia", [(1, 1), (2, 3)])
        text = repr(plist)
        assert "leukemia" in text
        assert "2" in text

    def test_empty_constant_is_frozen(self):
        from repro.index.postings import EMPTY_POSTING_LIST

        assert len(EMPTY_POSTING_LIST) == 0
        assert not EMPTY_POSTING_LIST.contains(0)


class TestRankingReprs:
    def test_reprs_are_informative(self):
        from repro import BM25, DirichletLanguageModel, PivotedNormalizationTFIDF

        assert "PivotedNormalizationTFIDF" in repr(PivotedNormalizationTFIDF())
        assert "BM25" in repr(BM25())
        assert "DirichletLanguageModel" in repr(DirichletLanguageModel())

    def test_model_names_unique(self):
        from repro.core.ranking import ALL_RANKING_FUNCTIONS

        names = [cls().name for cls in ALL_RANKING_FUNCTIONS.values()]
        assert len(set(names)) == len(names)


class TestViewReprs:
    def test_materialized_view_repr(self):
        from repro.views.view import GroupTuple, MaterializedView

        view = MaterializedView(
            {"m1", "m2"},
            {frozenset({"m1"}): GroupTuple(count=3, sum_len=30)},
            df_terms=["w"],
        )
        text = repr(view)
        assert "|K|=2" in text
        assert "size=1" in text

    def test_group_tuple_defaults(self):
        from repro.views.view import GroupTuple

        group = GroupTuple()
        assert group.count == 0
        assert group.df == {} and group.tc == {}
