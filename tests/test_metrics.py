"""Unit tests for IR metrics (hand-computed values)."""

import pytest

from repro.eval.metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    precision_fraction_at_k,
    reciprocal_rank,
)

RANKED = ["d1", "d2", "d3", "d4", "d5"]


class TestPrecisionAtK:
    def test_counts_relevant_in_top_k(self):
        assert precision_at_k(RANKED, {"d1", "d3", "d9"}, 3) == 2
        assert precision_at_k(RANKED, {"d5"}, 3) == 0
        assert precision_at_k(RANKED, {"d5"}, 5) == 1

    def test_k_beyond_ranking_length(self):
        assert precision_at_k(RANKED, {"d1"}, 100) == 1

    def test_fraction(self):
        assert precision_fraction_at_k(RANKED, {"d1", "d2"}, 4) == 0.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKED, set(), 0)

    def test_empty_ranking(self):
        assert precision_at_k([], {"d1"}, 5) == 0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(RANKED, {"d1"}) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(RANKED, {"d3", "d5"}) == pytest.approx(1 / 3)

    def test_no_relevant(self):
        assert reciprocal_rank(RANKED, {"x"}) == 0.0

    def test_empty_ranking(self):
        assert reciprocal_rank([], {"d1"}) == 0.0


class TestAveragePrecision:
    def test_hand_computed(self):
        # Relevant at ranks 1 and 3, |relevant| = 2:
        # AP = (1/1 + 2/3) / 2 = 5/6.
        assert average_precision(RANKED, {"d1", "d3"}) == pytest.approx(5 / 6)

    def test_unretrieved_relevant_penalised(self):
        # Relevant: d1 (rank 1) and dX (never retrieved): AP = (1/1)/2.
        assert average_precision(RANKED, {"d1", "dX"}) == pytest.approx(0.5)

    def test_empty_relevant(self):
        assert average_precision(RANKED, set()) == 0.0


class TestNdcg:
    def test_perfect_ranking(self):
        assert ndcg_at_k(["r1", "r2", "n1"], {"r1", "r2"}, 3) == pytest.approx(1.0)

    def test_worst_nonzero_ranking(self):
        import math

        # One relevant doc at rank 3 of 3; ideal puts it at rank 1.
        got = ndcg_at_k(["n1", "n2", "r1"], {"r1"}, 3)
        assert got == pytest.approx((1 / math.log2(4)) / (1 / math.log2(2)))

    def test_no_relevant(self):
        assert ndcg_at_k(RANKED, set(), 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ndcg_at_k(RANKED, {"d1"}, 0)

    def test_bounded_by_one(self):
        assert 0.0 <= ndcg_at_k(RANKED, {"d2", "d4"}, 5) <= 1.0
