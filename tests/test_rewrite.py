"""Tests for query-time statistic resolution helpers (rare-term fallback)."""

import pytest

from repro.core.query import parse_query
from repro.core.statistics import cardinality_spec, df_spec, tc_spec
from repro.errors import QueryError
from repro.index.postings import CostCounter
from repro.views.rewrite import compute_rare_term_statistics


class TestRareTermFallback:
    def test_df_matches_plan_ground_truth(self, handmade_index, handmade_engine):
        query = parse_query("leukemia | DigestiveSystem")
        truth = handmade_engine.context_statistics(
            query.context, ["leukemia"]
        )
        values = compute_rare_term_statistics(
            handmade_index, query, [df_spec("leukemia")]
        )
        assert values[df_spec("leukemia")] == truth.df_for("leukemia")

    def test_tc_sums_term_frequencies(self, handmade_index):
        query = parse_query("leukemia | Neoplasms")
        values = compute_rare_term_statistics(
            handmade_index, query, [tc_spec("leukemia")]
        )
        # C3 (tf 4) and C5 (tf 1) are the Neoplasms docs with leukemia.
        assert values[tc_spec("leukemia")] == 5

    def test_df_and_tc_in_one_walk(self, handmade_index):
        query = parse_query("leukemia | Diseases")
        counter = CostCounter()
        values = compute_rare_term_statistics(
            handmade_index,
            query,
            [df_spec("leukemia"), tc_spec("leukemia")],
            counter,
        )
        assert values[df_spec("leukemia")] == 3
        assert values[tc_spec("leukemia")] == 7
        assert counter.entries_scanned > 0

    def test_unknown_term_zero(self, handmade_index):
        query = parse_query("zzz | Diseases")
        values = compute_rare_term_statistics(
            handmade_index, query, [df_spec("zzz")]
        )
        assert values[df_spec("zzz")] == 0

    def test_rejects_non_term_specs(self, handmade_index):
        query = parse_query("leukemia | Diseases")
        with pytest.raises(QueryError):
            compute_rare_term_statistics(
                handmade_index, query, [cardinality_spec()]
            )

    def test_work_bounded_by_keyword_list(self, handmade_index):
        """The point of the fallback: work scales with |L_w|, not the
        context size (Section 6.2's storage-rule rationale)."""
        query = parse_query("pancreas | Diseases")  # Diseases = whole collection
        counter = CostCounter()
        compute_rare_term_statistics(
            handmade_index, query, [df_spec("pancrea")], counter
        )
        keyword_len = handmade_index.document_frequency("pancrea")
        context_len = handmade_index.predicate_frequency("Diseases")
        # Entries touched is O(|L_w|) per predicate list, far below a
        # full context scan for rare keywords.
        assert counter.entries_scanned <= keyword_len * 4 + context_len
