"""Block-max top-k: rank-safety and bit-identity at every layer.

The block-max scorer may only *skip* work, never change results.  The
property tests here assert rankings — docids *and* exact float scores —
are identical with blocks on, with blocks off (global-bound MaxScore),
and against the exhaustive reference: at the scorer level over
adversarial tf-skewed corpora, through the flat and sharded engines
(1/2/3/8 shards), and at every lifecycle point (memtable-only,
post-flush, post-compaction, WAL-replay reopen).  Small segment sizes
make block boundaries dense so the skip machinery actually fires.
"""

from __future__ import annotations

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BM25,
    ContextSearchEngine,
    Document,
    PivotedNormalizationTFIDF,
    build_index,
)
from repro.core.sharded_engine import ShardedEngine
from repro.core.statistics import CollectionStatistics
from repro.core.topk import (
    MaxScoreScorer,
    TopKDiagnostics,
    exhaustive_disjunctive,
)
from repro.index.sharded import ShardedInvertedIndex
from repro.lifecycle import LifecycleEngine, SegmentedIndex

TERMS = ("alpha", "beta", "gamma", "delta")
QUERY = "alpha beta gamma delta | Common"


def skewed_docs(rows, prefix="S"):
    """One document per row of per-term tfs.  Every document carries the
    ``Common`` predicate so the query context is never empty."""
    docs = []
    for i, row in enumerate(rows):
        body = " ".join(" ".join([t] * tf) for t, tf in zip(TERMS, row) if tf)
        docs.append(
            Document(
                f"{prefix}{i}",
                {
                    "title": body or "filler",
                    "mesh": "Common " + ("Odd" if i % 2 else "Even"),
                },
            )
        )
    return docs


def global_stats(index, keywords):
    return CollectionStatistics(
        cardinality=index.num_docs,
        total_length=index.total_length,
        df={w: index.document_frequency(w) for w in keywords},
    )


def exact_ranking(results):
    """(external_id, exact score) pairs — no rounding, bit-identity."""
    return [(h.external_id, h.score) for h in results.hits]


ROWS = st.lists(
    st.tuples(*(st.integers(min_value=0, max_value=48) for _ in TERMS)),
    min_size=4,
    max_size=64,
)


class TestScorerBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(rows=ROWS, k=st.integers(min_value=1, max_value=16))
    def test_blocks_match_global_and_exhaustive(self, rows, k):
        index = build_index(skewed_docs(rows), segment_size=4)
        keywords = [t for t in TERMS if t in index.vocabulary]
        if not keywords:
            return
        stats = global_stats(index, keywords)
        for ranking in (PivotedNormalizationTFIDF(), BM25()):
            blocked = MaxScoreScorer(
                index, keywords, stats, ranking, block_max=True
            ).top_k(k)
            unblocked = MaxScoreScorer(
                index, keywords, stats, ranking, block_max=False
            ).top_k(k)
            reference = exhaustive_disjunctive(
                index, keywords, stats, ranking, k
            )
            # Blocks on vs off run the same scoring code — bit-identical.
            assert [(s.doc_id, s.score) for s in blocked] == [
                (s.doc_id, s.score) for s in unblocked
            ]
            # Vs the exhaustive reference: identical ranking; scores agree
            # to the repo-wide 1e-12 contract (summation order differs).
            assert [s.doc_id for s in blocked] == [
                s.doc_id for s in reference
            ]
            for a, b in zip(blocked, reference):
                assert a.score == pytest.approx(b.score, abs=1e-12)


class TestEngineBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(rows=ROWS, k=st.integers(min_value=1, max_value=12))
    def test_flat_and_sharded_rankings_identical(self, rows, k):
        index = build_index(skewed_docs(rows), segment_size=4)
        flat = ContextSearchEngine(index)
        on = flat.search_disjunctive(QUERY, top_k=k, block_max=True)
        off = flat.search_disjunctive(QUERY, top_k=k, block_max=False)
        assert exact_ranking(on) == exact_ranking(off)
        assert on.report.topk["block_max"] is True
        assert off.report.topk["block_max"] is False
        for shards in (1, 2, 3, 8):
            sharded = ShardedInvertedIndex.from_index(index, shards, "hash")
            with ShardedEngine(sharded, executor="serial") as engine:
                s_on = engine.search_disjunctive(
                    QUERY, top_k=k, block_max=True
                )
                s_off = engine.search_disjunctive(
                    QUERY, top_k=k, block_max=False
                )
            assert exact_ranking(s_on) == exact_ranking(on)
            assert exact_ranking(s_off) == exact_ranking(on)


def lifecycle_checkpoints(directory, docs, shards):
    """Drive one segmented index through its lifecycle, yielding an
    engine at each point: memtable-only, post-flush, post-compaction,
    and a WAL-replay reopen (last batch left unflushed)."""
    index = SegmentedIndex(directory, segment_size=4)
    engine = LifecycleEngine(index, num_shards=shards)
    try:
        engine.ingest(docs[: len(docs) // 2])
        yield "memtable", engine, docs[: len(docs) // 2]
        engine.flush()
        yield "post-flush", engine, docs[: len(docs) // 2]
        engine.ingest(docs[len(docs) // 2 :])
        engine.flush()
        engine.compact(full=True)
        yield "post-compaction", engine, docs
    finally:
        engine.close()
    reopened = SegmentedIndex.open(directory)
    replayed = LifecycleEngine(reopened, num_shards=shards)
    try:
        yield "wal-replay", replayed, docs
    finally:
        replayed.close()


class TestLifecycleBitIdentity:
    @settings(max_examples=4, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                *(st.integers(min_value=0, max_value=32) for _ in TERMS)
            ),
            min_size=8,
            max_size=32,
        ),
        k=st.integers(min_value=1, max_value=10),
        shards=st.sampled_from([0, 3]),
    )
    def test_every_lifecycle_point(self, rows, k, shards):
        docs = skewed_docs(rows, prefix="L")
        with tempfile.TemporaryDirectory() as directory:
            for point, engine, live in lifecycle_checkpoints(
                directory, docs, shards
            ):
                on = engine.search_disjunctive(QUERY, top_k=k, block_max=True)
                off = engine.search_disjunctive(
                    QUERY, top_k=k, block_max=False
                )
                assert exact_ranking(on) == exact_ranking(off), point
                reference = ContextSearchEngine(
                    build_index(live, segment_size=4)
                ).search_disjunctive(QUERY, top_k=k, block_max=False)
                assert [h.external_id for h in on.hits] == [
                    h.external_id for h in reference.hits
                ], point
                for a, b in zip(on.hits, reference.hits):
                    assert a.score == pytest.approx(b.score, abs=1e-12), point


@pytest.fixture(scope="module")
def spike_index():
    """The classic block-max shape: the top answer sits in the first
    block (tf=12 for both query terms), every later block holds tf=1
    postings whose block bound cannot beat it, and long keyword-free
    filler docs keep the query terms selective (healthy idf) and the
    spike docs near the average length (scores close to their bound)."""
    rows = []
    for i in range(400):
        if i < 4:
            rows.append((12, 12, 0, 0))
        elif i % 5 == 0:
            rows.append((1, 1, 0, 0))
        else:
            rows.append((0, 0, 30, 0))
    return build_index(skewed_docs(rows, prefix="K"), segment_size=4)


class TestDiagnostics:
    def test_blocks_skipped_fires(self, spike_index):
        keywords = ["alpha", "beta"]
        stats = global_stats(spike_index, keywords)
        diagnostics = TopKDiagnostics()
        hits = MaxScoreScorer(
            spike_index, keywords, stats, BM25(), block_max=True
        ).top_k(1, diagnostics=diagnostics)
        assert len(hits) == 1
        assert diagnostics.blocks_considered > 0
        assert diagnostics.blocks_skipped > 0

    def test_counters_zero_without_blocks(self, spike_index):
        keywords = ["alpha", "beta"]
        stats = global_stats(spike_index, keywords)
        diagnostics = TopKDiagnostics()
        MaxScoreScorer(
            spike_index, keywords, stats, BM25(), block_max=False
        ).top_k(1, diagnostics=diagnostics)
        assert diagnostics.blocks_considered == 0
        assert diagnostics.blocks_skipped == 0

    def test_skipping_saves_scoring_work(self, spike_index):
        keywords = ["alpha", "beta"]
        stats = global_stats(spike_index, keywords)
        with_blocks = TopKDiagnostics()
        without = TopKDiagnostics()
        a = MaxScoreScorer(
            spike_index, keywords, stats, BM25(), block_max=True
        ).top_k(1, diagnostics=with_blocks)
        b = MaxScoreScorer(
            spike_index, keywords, stats, BM25(), block_max=False
        ).top_k(1, diagnostics=without)
        assert [(s.doc_id, s.score) for s in a] == [
            (s.doc_id, s.score) for s in b
        ]
        assert with_blocks.candidates_seen < without.candidates_seen

    def test_report_carries_topk_diagnostics(self, spike_index):
        engine = ContextSearchEngine(spike_index)
        report = engine.search_disjunctive(
            QUERY, top_k=5, block_max=True
        ).report
        assert report.topk is not None
        assert report.topk["block_max"] is True
        assert report.topk["candidates_scored"] > 0
        assert report.topk["blocks_considered"] > 0
        roundtrip = type(report).from_dict(report.to_dict())
        assert roundtrip.topk == report.topk

    def test_sharded_report_merges_per_shard_counters(self, spike_index):
        sharded = ShardedInvertedIndex.from_index(spike_index, 3, "hash")
        with ShardedEngine(sharded, executor="serial") as engine:
            report = engine.search_disjunctive(
                QUERY, top_k=5, block_max=True
            ).report
        assert report.topk is not None
        assert report.topk["block_max"] is True
        assert report.topk["candidates_seen"] > 0
