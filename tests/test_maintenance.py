"""Tests for incremental index updates and view maintenance."""

import pytest

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    Document,
    build_index,
    generate_corpus,
    materialize_view,
    select_views,
)
from repro.errors import ReproError
from repro.views import (
    WideSparseTable,
    maintain_catalog,
    maintain_views,
    needs_reselection,
)
from repro.views.maintenance import MaintenanceReport

from .conftest import HANDMADE_DOCS

NEW_DOCS = [
    Document(
        "N1",
        {
            "title": "pancreas imaging in leukemia survivors",
            "abstract": "imaging outcomes for pancreas and liver",
            "mesh": "Diseases DigestiveSystem Neoplasms",
        },
    ),
    Document(
        "N2",
        {
            "title": "novel lymphoma therapies",
            "abstract": "therapy outcomes in lymphoma cohorts",
            "mesh": "Diseases Blood",
        },
    ),
]


class TestIndexAppend:
    def test_postings_extend_correctly(self):
        index = build_index(HANDMADE_DOCS)
        before_df = index.document_frequency("pancrea")
        stored = index.append_documents(NEW_DOCS)
        assert len(stored) == 2
        assert index.num_docs == len(HANDMADE_DOCS) + 2
        assert index.document_frequency("pancrea") == before_df + 1
        assert index.predicate_frequency("Blood") == 2

    def test_docids_stay_sorted(self):
        index = build_index(HANDMADE_DOCS)
        index.append_documents(NEW_DOCS)
        for term in index.vocabulary:
            ids = list(index.postings(term).doc_ids)
            assert ids == sorted(ids)

    def test_total_length_updates(self):
        index = build_index(HANDMADE_DOCS)
        before = index.total_length
        stored = index.append_documents(NEW_DOCS)
        assert index.total_length == before + sum(s.length for s in stored)

    def test_append_before_commit_rejected(self):
        from repro.index import InvertedIndex

        index = InvertedIndex()
        with pytest.raises(ReproError):
            index.append_documents(NEW_DOCS)

    def test_appended_docs_searchable(self):
        index = build_index(HANDMADE_DOCS)
        index.append_documents(NEW_DOCS)
        engine = ContextSearchEngine(index)
        hits = engine.search("lymphoma | Blood").external_ids()
        assert "N2" in hits


class TestViewMaintenance:
    def _fresh_stack(self):
        index = build_index(HANDMADE_DOCS)
        table = WideSparseTable.from_index(index)
        view = materialize_view(
            table,
            {"Diseases", "DigestiveSystem", "Neoplasms", "Blood"},
            df_terms=list(index.vocabulary),
            tc_terms=["leukemia"],
        )
        return index, view

    def test_maintained_view_equals_rebuilt_view(self):
        """The gold-standard check: incremental deltas produce exactly the
        view a full rebuild would."""
        index, view = self._fresh_stack()
        stored = index.append_documents(NEW_DOCS)
        maintain_views([view], index, stored)

        rebuilt = materialize_view(
            WideSparseTable.from_index(index),
            view.keyword_set,
            df_terms=view.df_terms,
            tc_terms=view.tc_terms,
        )
        assert set(view.groups) == set(rebuilt.groups)
        for key, group in view.groups.items():
            other = rebuilt.groups[key]
            assert group.count == other.count
            assert group.sum_len == other.sum_len
            assert group.df == other.df
            assert group.tc == other.tc

    def test_new_group_tuple_counted(self):
        index, view = self._fresh_stack()
        # A document with a never-seen predicate pattern within K.
        novel = Document(
            "N3",
            {"title": "standalone blood study", "abstract": "x", "mesh": "Blood"},
        )
        stored = index.append_documents([novel])
        report = maintain_views([view], index, stored)
        assert report.new_group_tuples == 1

    def test_tv_violation_reported(self):
        index, view = self._fresh_stack()
        novel = Document(
            "N4", {"title": "a", "abstract": "b", "mesh": "Neoplasms Blood"}
        )
        stored = index.append_documents([novel])
        report = maintain_views([view], index, stored, t_v=view.size - 1)
        assert view.keyword_set in report.views_over_tv
        assert needs_reselection(report)

    def test_growth_triggers_reselection(self):
        report = MaintenanceReport(growth_since_selection=0.5)
        assert needs_reselection(report, growth_threshold=0.2)
        assert not needs_reselection(
            MaintenanceReport(growth_since_selection=0.1)
        )


class TestEndToEndMaintenance:
    def test_maintained_catalog_answers_match_fresh_build(self):
        """Pipeline form: insert a batch into a selected system, maintain,
        and require identical rankings to a from-scratch system over the
        enlarged corpus."""
        corpus = generate_corpus(
            CorpusConfig(num_docs=900, seed=31, num_roots=4, depth=2)
        )
        split = 800
        initial, extra = corpus.documents[:split], corpus.documents[split:]

        index = build_index(initial)
        t_c = 20
        catalog, report = select_views(index, t_c=t_c, t_v=256)
        baseline = index.num_docs

        stored = index.append_documents(extra)
        maintenance = maintain_catalog(
            catalog, index, stored, t_v=256, baseline_num_docs=baseline
        )
        assert maintenance.documents_applied == len(extra)
        assert maintenance.growth_since_selection == pytest.approx(
            len(extra) / split
        )

        fresh_index = build_index(corpus.documents)
        engine_maintained = ContextSearchEngine(index, catalog=catalog)
        engine_fresh = ContextSearchEngine(fresh_index)

        # Compare rankings for a context covered by the catalog.
        covered = next(iter(catalog)).keyword_set
        predicate = max(sorted(covered), key=index.predicate_frequency)
        term = max(
            list(index.vocabulary)[:300], key=index.document_frequency
        )
        query = f"{term} | {predicate}"
        a = engine_maintained.search(query)
        b = engine_fresh.search(query)
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-10)


class TestCacheInvalidation:
    """Maintenance is the invalidation point for query-time memoisation:
    a statistics cache passed via ``caches=`` must be dropped when views
    absorb an ingestion batch, so memoised per-context statistics never
    outlive the collection state they were computed from."""

    def _cached_engine(self):
        from repro.core.stats_cache import CachingSearchEngine
        from repro.views import ViewCatalog

        index = build_index(HANDMADE_DOCS)
        catalog = ViewCatalog()
        cached = CachingSearchEngine(ContextSearchEngine(index))
        return index, catalog, cached

    def test_maintain_catalog_invalidates_caches(self):
        index, catalog, cached = self._cached_engine()
        cached.search("leukemia | DigestiveSystem")
        assert len(cached.cache) > 0

        stored = index.append_documents(NEW_DOCS)
        report = maintain_catalog(catalog, index, stored, caches=[cached])
        assert report.caches_invalidated == 1
        assert len(cached.cache) == 0
        assert cached.cache.metrics.invalidations == 1

    def test_statistics_fresh_after_maintenance(self):
        """Regression: without invalidation the cached context statistics
        would be served stale after an incremental update."""
        index, catalog, cached = self._cached_engine()
        before = cached.search("leukemia | DigestiveSystem")

        # N1 joins the DigestiveSystem context and mentions leukemia.
        stored = index.append_documents(NEW_DOCS)
        maintain_catalog(catalog, index, stored, caches=[cached])

        after = cached.search("leukemia | DigestiveSystem")
        assert after.report.context_size == before.report.context_size + 1
        fresh = ContextSearchEngine(index).search("leukemia | DigestiveSystem")
        assert after.external_ids() == fresh.external_ids()
        for ha, hb in zip(after.hits, fresh.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_epoch_guard_invalidates_without_caches(self):
        """Even when ``caches=`` is skipped, the engine's epoch counter
        (bumped by ``append_documents``) makes the caching wrapper drop
        its memoised statistics — a stale cardinality is never served."""
        index, catalog, cached = self._cached_engine()
        before = cached.search("leukemia | DigestiveSystem")

        stored = index.append_documents(NEW_DOCS)
        maintain_catalog(catalog, index, stored)  # no caches passed

        after = cached.search("leukemia | DigestiveSystem")
        assert after.report.context_size == before.report.context_size + 1
        fresh = ContextSearchEngine(index).search("leukemia | DigestiveSystem")
        assert after.external_ids() == fresh.external_ids()

    def test_plain_statistics_cache_accepted(self):
        from repro.core.stats_cache import StatisticsCache
        from repro.views import ViewCatalog

        index = build_index(HANDMADE_DOCS)
        cache = StatisticsCache()
        cache.store(("DigestiveSystem",), {})
        stored = index.append_documents(NEW_DOCS)
        report = maintain_catalog(
            ViewCatalog(), index, stored, caches=[cache]
        )
        assert report.caches_invalidated == 1
        assert len(cache) == 0
