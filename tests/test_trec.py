"""Tests for the TREC-Genomics-style quality_benchmark generator."""

import pytest

from repro.data.trec import generate_benchmark
from repro.errors import DataGenerationError
from repro.index.searcher import BooleanSearcher


@pytest.fixture(scope="module")
def quality_benchmark(corpus, corpus_index):
    return generate_benchmark(
        corpus, corpus_index, num_topics=8, min_result_size=10, min_relevant=3, seed=13
    )


class TestQualification:
    def test_requested_topic_count(self, quality_benchmark):
        assert len(quality_benchmark) == 8
        assert [t.topic_id for t in quality_benchmark.topics] == list(range(1, 9))

    def test_result_sets_meet_threshold(self, quality_benchmark, corpus_index):
        searcher = BooleanSearcher(corpus_index)
        analyzer = corpus_index.analyzer
        for topic in quality_benchmark.topics:
            keywords = [analyzer.analyze_query_term(w) for w in topic.keywords]
            result = searcher.search_conjunction(keywords, topic.query.predicates)
            assert len(result) >= quality_benchmark.min_result_size

    def test_relevant_in_result_meets_threshold(self, quality_benchmark, corpus_index):
        searcher = BooleanSearcher(corpus_index)
        analyzer = corpus_index.analyzer
        for topic in quality_benchmark.topics:
            keywords = [analyzer.analyze_query_term(w) for w in topic.keywords]
            result = searcher.search_conjunction(keywords, topic.query.predicates)
            externals = {corpus_index.store.get(i).external_id for i in result}
            assert len(externals & topic.relevant) >= quality_benchmark.min_relevant


class TestTopicStructure:
    def test_contexts_are_focus_ancestors(self, quality_benchmark, corpus):
        ontology = corpus.ontology
        for topic in quality_benchmark.topics:
            ancestors = set(ontology.ancestors(topic.focus_concept))
            assert set(topic.query.predicates) <= ancestors

    def test_questions_mention_keywords(self, quality_benchmark):
        for topic in quality_benchmark.topics:
            for keyword in topic.keywords:
                assert keyword in topic.question

    def test_deterministic(self, corpus, corpus_index):
        a = generate_benchmark(
            corpus, corpus_index, num_topics=4, min_result_size=10,
            min_relevant=3, seed=5,
        )
        b = generate_benchmark(
            corpus, corpus_index, num_topics=4, min_result_size=10,
            min_relevant=3, seed=5,
        )
        assert [t.query.keywords for t in a.topics] == [
            t.query.keywords for t in b.topics
        ]
        assert [t.relevant for t in a.topics] == [t.relevant for t in b.topics]

    def test_idf_inversion_present(self, quality_benchmark, corpus_index, corpus_engine):
        """The generator's defining property: the context word is rarer
        globally but more frequent in-context than the focus word."""
        num_docs = corpus_index.num_docs
        for topic in quality_benchmark.topics:
            aw, hw = [
                corpus_index.analyzer.analyze_query_term(w) for w in topic.keywords
            ]
            stats = corpus_engine.context_statistics(
                topic.query.context, list(topic.keywords)
            )
            fg_aw = corpus_index.document_frequency(aw) / num_docs
            fg_hw = corpus_index.document_frequency(hw) / num_docs
            fc_aw = stats.df_for(aw) / stats.cardinality
            fc_hw = stats.df_for(hw) / stats.cardinality
            assert fg_hw >= 1.3 * fg_aw
            assert fc_aw >= 1.3 * fc_hw


class TestFailureModes:
    def test_impossible_thresholds_raise(self, corpus, corpus_index):
        with pytest.raises(DataGenerationError):
            generate_benchmark(
                corpus,
                corpus_index,
                num_topics=5,
                min_result_size=10_000,  # larger than the corpus
                max_attempts=50,
                seed=1,
            )
