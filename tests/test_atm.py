"""Tests for the Automatic Term Mapping simulation."""

import pytest

from repro.data.atm import AutomaticTermMapper


@pytest.fixture(scope="module")
def atm(corpus):
    return AutomaticTermMapper.from_corpus(corpus)


@pytest.fixture(scope="module")
def atm_general(corpus):
    return AutomaticTermMapper.from_corpus(corpus, generalise_to_parent=True)


class TestMapping:
    def test_alias_word_maps_to_owner(self, corpus, atm):
        # Pick any known alias word.
        word, terms = next(iter(corpus.aliases.items()))
        assert atm.map_keyword(word) == terms

    def test_case_insensitive(self, corpus, atm):
        word = next(iter(corpus.aliases))
        assert atm.map_keyword(word.upper()) == atm.map_keyword(word)

    def test_unmapped_keyword_empty(self, atm):
        assert atm.map_keyword("notawordatall") == []

    def test_map_keywords_union_dedup(self, corpus, atm):
        words = list(corpus.aliases)[:3]
        union = atm.map_keywords(words)
        assert len(union) == len(set(union))
        for word in words:
            for term in atm.map_keyword(word):
                assert term in union


class TestGeneralisation:
    def test_leaf_hits_lift_to_parent(self, corpus, atm, atm_general):
        ontology = corpus.ontology
        # Find an alias word owned by a leaf term.
        for word, terms in corpus.aliases.items():
            leaf_terms = [t for t in terms if ontology.term(t).is_leaf]
            if leaf_terms:
                lifted = atm_general.map_keyword(word)
                assert ontology.term(leaf_terms[0]).parent in lifted
                return
        pytest.skip("no leaf-owned alias in this corpus")

    def test_generalise_requires_ontology(self, corpus):
        with pytest.raises(ValueError):
            AutomaticTermMapper(corpus.aliases, None, generalise_to_parent=True)


class TestBuildContext:
    def test_context_from_mapped_keywords(self, corpus, atm):
        word = next(iter(corpus.aliases))
        context = atm.build_context([word])
        assert context is not None
        assert set(context.predicates) == set(atm.map_keyword(word))

    def test_unmappable_returns_none(self, atm):
        assert atm.build_context(["qqqqqq"]) is None

    def test_max_terms_truncation(self, corpus, atm):
        words = list(corpus.aliases)[:5]
        context = atm.build_context(words, max_terms=2)
        assert context is not None
        assert len(context.predicates) <= 2
