"""Tests for the distributed serving tier (repro.service.cluster).

The load-bearing property is *bit-identity*: the router's rankings over
wire-separated shard workers must equal the in-process
:class:`~repro.core.sharded_engine.ShardedEngine` exactly — same docs,
same float scores, same error messages — across shard counts, replica
counts, and all three query modes.  On top of that: failover when a
worker dies mid-stream, clean shedding when a whole replica group is
down, replica bootstrap by segment shipping, readable errors for
protocol-violating workers (torn and garbage frames), aggregated
healthz/metrics, consistent-hash placement, the cluster config format,
workload-state persistence, and the multi-endpoint load generator.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time

import pytest

from repro import ContextSearchEngine, ViewCatalog, materialize_view
from repro.core.backend import VersionVector
from repro.core.sharded_engine import ShardedEngine
from repro.errors import QueryError, ReproError, SelectionError
from repro.index.sharded import ShardedInvertedIndex
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    WorkloadRecorder,
    load_workload_state,
    run_load,
    save_workload_state,
)
from repro.service.cluster import (
    ClusterConfig,
    ClusterConfigError,
    HashRing,
    fetch_artifact,
    load_cluster_config,
    parse_address,
    place_shards,
    router_thread,
    worker_thread,
)
from repro.storage import load_shard, save_sharded_index
from repro.views import WideSparseTable

MODES = ("context", "conventional", "disjunctive")

# Ordinary queries plus ones that must *fail identically* on both paths
# (a context matching nothing, a keyword analysis removes entirely).
QUERIES = [
    "pancreas | DigestiveSystem",
    "leukemia | DigestiveSystem",
    "pancreas leukemia | DigestiveSystem",
    "leukemia | Neoplasms",
    "pancreas leukemia | Diseases Neoplasms",
    "cancer | Neoplasms",
    "pancreas | Cardiology",
]


def _worker_config(**overrides) -> ServiceConfig:
    overrides.setdefault("workers", 1)
    overrides.setdefault("drain_timeout", 0.2)
    return ServiceConfig(**overrides)


@contextlib.contextmanager
def running_cluster(
    index,
    num_shards: int,
    replication: int,
    *,
    fail_threshold: int = 2,
    health_interval_s: float = 30.0,
    attempt_timeout_ms: float = 5000.0,
):
    """Start one worker process-equivalent per replica plus the router.

    Everything runs on background threads over real sockets; the wire
    format, scatter-gather, and failover paths are exactly the deployed
    ones — only process isolation is elided (the benchmark covers that).
    """
    sharded = ShardedInvertedIndex.from_index(
        index, num_shards, partitioner="hash"
    )
    threads = []
    try:
        worker_groups = []
        groups_payload = []
        for shard_id, shard in enumerate(sharded.shards):
            replicas = []
            for _ in range(replication):
                thread = worker_thread(shard, _worker_config())
                thread.start()
                threads.append(thread)
                replicas.append(thread)
            worker_groups.append(replicas)
            groups_payload.append(
                {
                    "shard": shard_id,
                    "replicas": [
                        f"{t.address[0]}:{t.address[1]}" for t in replicas
                    ],
                }
            )
        cluster = ClusterConfig.from_payload(
            {
                "kind": "cluster",
                "num_shards": num_shards,
                "replication": replication,
                "groups": groups_payload,
                "router": {
                    "health_interval_s": health_interval_s,
                    "fail_threshold": fail_threshold,
                    "attempt_timeout_ms": attempt_timeout_ms,
                },
            }
        )
        router = router_thread(cluster, _worker_config())
        router.start()
        threads.append(router)
        yield sharded, worker_groups, router
    finally:
        for thread in reversed(threads):
            with contextlib.suppress(Exception):
                thread.stop(timeout=10.0)


def run_local(engine, query: str, mode: str, top_k: int = 10):
    """The in-process reference outcome in the router's response shape."""
    try:
        if mode == "conventional":
            results = engine.search_conventional(query, top_k=top_k)
        elif mode == "disjunctive":
            results = engine.search_disjunctive(query, top_k=top_k)
        else:
            results = engine.search(query, top_k=top_k)
    except ReproError as exc:
        return "error", f"{type(exc).__name__}: {exc}"
    return "ok", [(hit.external_id, hit.score) for hit in results.hits]


def assert_router_matches(client, engine, query, mode, top_k=10):
    response = client.request(
        {"op": "query", "query": query, "mode": mode, "top_k": top_k}
    )
    status, expected = run_local(engine, query, mode, top_k)
    assert response["status"] == status, (query, mode, response)
    if status == "ok":
        got = [(hit["doc"], hit["score"]) for hit in response["hits"]]
        assert got == expected, (query, mode)
    else:
        assert response["error"] == expected, (query, mode)


# ---------------------------------------------------------------------------
# Bit-identity: router over the wire == in-process ShardedEngine


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("replication", [1, 2])
    def test_all_modes_identical(
        self, handmade_index, num_shards, replication
    ):
        with running_cluster(
            handmade_index, num_shards, replication
        ) as (sharded, _groups, router):
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                for mode in MODES:
                    for query in QUERIES:
                        assert_router_matches(client, engine, query, mode)
            finally:
                client.close()
                engine.close()

    def test_forced_paths_identical(self, handmade_index):
        with running_cluster(handmade_index, 2, 1) as (
            sharded,
            _groups,
            router,
        ):
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                # Only 'straightforward' is forceable here: these
                # workers carry no view catalogs, so 'views' errors.
                for path in ("straightforward",):
                    response = client.request(
                        {
                            "op": "query",
                            "query": "pancreas | DigestiveSystem",
                            "path": path,
                            "top_k": 10,
                        }
                    )
                    local = engine.explain(
                        "pancreas | DigestiveSystem",
                        top_k=10,
                        mode="context",
                        path=path,
                    )
                    assert response["status"] == "ok"
                    got = [
                        (hit["doc"], hit["score"]) for hit in response["hits"]
                    ]
                    want = [
                        (hit.external_id, hit.score) for hit in local.hits
                    ]
                    assert got == want
                    assert (
                        response["report"]["resolution"]["path"]
                        == local.report.resolution.path
                    )
            finally:
                client.close()
                engine.close()

    def test_report_merges_like_in_process(self, handmade_index):
        with running_cluster(handmade_index, 2, 1) as (
            sharded,
            _groups,
            router,
        ):
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                response = client.request(
                    {
                        "op": "query",
                        "query": "pancreas leukemia | DigestiveSystem",
                        "top_k": 10,
                    }
                )
                local = engine.search(
                    "pancreas leukemia | DigestiveSystem", top_k=10
                )
                remote_report = response["report"]
                local_report = local.report.to_dict()
                for key in ("context_size", "result_size"):
                    assert remote_report[key] == local_report[key]
                assert remote_report["counter"] == local_report["counter"]
                assert len(remote_report["per_shard"]) == 2
            finally:
                client.close()
                engine.close()


# ---------------------------------------------------------------------------
# Failover and shedding


class TestFailover:
    def test_killed_replica_fails_over_identically(self, handmade_index):
        with running_cluster(handmade_index, 2, 2) as (
            sharded,
            groups,
            router,
        ):
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                # Warm: both replicas answer.
                assert_router_matches(
                    client, engine, "pancreas | DigestiveSystem", "context"
                )
                # Kill one replica of shard 0 while queries keep coming.
                killer = threading.Thread(
                    target=lambda: groups[0][0].stop(timeout=10.0)
                )
                killer.start()
                for _ in range(10):
                    for mode in MODES:
                        assert_router_matches(
                            client,
                            engine,
                            "pancreas leukemia | DigestiveSystem",
                            mode,
                        )
                killer.join()
                # And after the kill has fully settled.
                for query in QUERIES:
                    assert_router_matches(client, engine, query, "context")
                metrics = client.request({"op": "metrics"})
                assert metrics["router"]["failovers"] >= 1
                assert metrics["router"]["group_down_sheds"] == 0
            finally:
                client.close()
                engine.close()

    def test_whole_group_down_sheds_readably(self, handmade_index):
        with running_cluster(
            handmade_index, 2, 1, fail_threshold=1
        ) as (sharded, groups, router):
            client = ServiceClient(*router.address)
            try:
                groups[1][0].stop(timeout=10.0)
                response = client.request(
                    {
                        "op": "query",
                        "query": "pancreas | DigestiveSystem",
                        "top_k": 5,
                    }
                )
                assert response["status"] == "shed"
                assert "shard group 1 unavailable" in response["error"]
                assert "worker 127.0.0.1:" in response["error"]
                metrics = client.request({"op": "metrics"})
                assert metrics["router"]["group_down_sheds"] >= 1
                health = client.request({"op": "healthz"})
                assert health["status"] == "degraded"
                assert health["groups_available"] == 1
            finally:
                client.close()


# ---------------------------------------------------------------------------
# Protocol-violating workers: readable errors, never hangs


class FakeWorker:
    """A listener that answers every request line with canned bytes.

    ``reply`` is sent verbatim after one line is read; with
    ``truncate=True`` the connection closes without a trailing newline —
    a torn frame mid-response.
    """

    def __init__(self, reply: bytes, truncate: bool = False):
        self.reply = reply
        self.truncate = truncate
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "{}:{}".format(*self._listener.getsockname())
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(5.0)
            buffered = b""
            while b"\n" not in buffered:
                chunk = conn.recv(4096)
                if not chunk:
                    return
                buffered += chunk
            conn.sendall(self.reply)
        except OSError:
            pass
        finally:
            with contextlib.suppress(OSError):
                conn.close()

    def close(self) -> None:
        self._closing = True
        with contextlib.suppress(OSError):
            self._listener.close()
        self._thread.join(timeout=5.0)


@contextlib.contextmanager
def router_over_fake_worker(reply: bytes, truncate: bool = False):
    fake = FakeWorker(reply, truncate=truncate)
    cluster = ClusterConfig.from_payload(
        {
            "kind": "cluster",
            "num_shards": 1,
            "replication": 1,
            "groups": [{"shard": 0, "replicas": [fake.address]}],
            "router": {
                "health_interval_s": 30.0,
                "fail_threshold": 10,
                "attempt_timeout_ms": 3000.0,
            },
        }
    )
    router = router_thread(cluster, _worker_config())
    router.start()
    client = ServiceClient(*router.address)
    try:
        yield fake, client
    finally:
        client.close()
        router.stop(timeout=10.0)
        fake.close()


class TestMalformedWorkerFrames:
    def _shed_error(self, client) -> str:
        began = time.monotonic()
        response = client.request(
            {"op": "query", "query": "pancreas | DigestiveSystem", "top_k": 5}
        )
        elapsed = time.monotonic() - began
        assert elapsed < 10.0, "router hung on a protocol-violating worker"
        assert response["status"] == "shed"
        return response["error"]

    def test_non_json_frame_names_the_worker(self):
        with router_over_fake_worker(b"utter garbage, not json\n") as (
            fake,
            client,
        ):
            error = self._shed_error(client)
            assert fake.address in error
            assert "non-JSON bytes" in error
            assert "Traceback" not in error

    def test_torn_frame_names_the_worker(self):
        with router_over_fake_worker(
            b'{"status": "ok", "results": [', truncate=True
        ) as (fake, client):
            error = self._shed_error(client)
            assert fake.address in error
            assert "malformed response frame" in error

    def test_non_dict_frame_names_the_worker(self):
        with router_over_fake_worker(b"[1, 2, 3]\n") as (fake, client):
            error = self._shed_error(client)
            assert fake.address in error
            assert "malformed response frame" in error

    def test_router_refuses_cluster_ops_from_clients(self, handmade_index):
        with running_cluster(handmade_index, 2, 1) as (_s, _g, router):
            client = ServiceClient(*router.address)
            try:
                response = client.request(
                    {"op": "shard_resolve", "tasks": []}
                )
                assert response["status"] == "error"
                assert "cluster-internal" in response["error"]
            finally:
                client.close()


# ---------------------------------------------------------------------------
# Replica bootstrap by segment shipping


class TestBootstrap:
    def test_shipped_replica_serves_identical_rankings(
        self, tmp_path, handmade_index
    ):
        sharded = ShardedInvertedIndex.from_index(
            handmade_index, 2, partitioner="hash"
        )
        save_sharded_index(sharded, tmp_path / "idx.bin", format=4)
        shard_path = tmp_path / "idx.shard0.bin"
        shard = load_shard(shard_path, shard_id=0)
        source = worker_thread(
            shard, _worker_config(), artifact=shard_path
        )
        source.start()
        try:
            address = "{}:{}".format(*source.address)
            local, copied = fetch_artifact(address, tmp_path / "boot")
            assert copied == 1
            assert local == tmp_path / "boot" / "idx.shard0.bin"
            # A second pull verifies checksums and ships nothing.
            _, copied_again = fetch_artifact(address, tmp_path / "boot")
            assert copied_again == 0
            # A tampered local copy is detected and re-shipped.
            local.write_bytes(b"corrupted beyond recognition")
            _, reshipped = fetch_artifact(address, tmp_path / "boot")
            assert reshipped == 1

            boot_shard = load_shard(local, shard_id=0)
            bootstrapped = worker_thread(boot_shard, _worker_config())
            bootstrapped.start()
            try:
                a = ServiceClient(*source.address)
                b = ServiceClient(*bootstrapped.address)
                try:
                    request = {
                        "op": "query",
                        "query": "pancreas | DigestiveSystem",
                        "top_k": 10,
                    }
                    first = a.request(dict(request))
                    second = b.request(dict(request))
                    assert first["status"] == second["status"] == "ok"
                    assert first["hits"] == second["hits"]
                finally:
                    a.close()
                    b.close()
            finally:
                bootstrapped.stop(timeout=10.0)
        finally:
            source.stop(timeout=10.0)

    def test_worker_without_artifact_refuses_shipping(self, handmade_index):
        sharded = ShardedInvertedIndex.from_index(
            handmade_index, 2, partitioner="hash"
        )
        thread = worker_thread(sharded.shards[0], _worker_config())
        thread.start()
        try:
            client = ServiceClient(*thread.address)
            try:
                response = client.request({"op": "segment_manifest"})
                assert response["status"] == "error"
                assert "no artefact files to ship" in response["error"]
            finally:
                client.close()
        finally:
            thread.stop(timeout=10.0)


# ---------------------------------------------------------------------------
# Router healthz / metrics aggregation


class TestRouterObservability:
    def test_healthz_aggregates_replica_states(self, handmade_index):
        with running_cluster(handmade_index, 2, 2) as (_s, _g, router):
            client = ServiceClient(*router.address)
            try:
                health = client.request({"op": "healthz"})
                assert health["status"] == "ok"
                assert health["engine"] == "router"
                assert health["num_shards"] == 2
                assert health["replication"] == 2
                assert health["groups_available"] == 2
                assert health["num_docs"] == handmade_index.num_docs
                assert len(health["groups"]) == 2
                for group in health["groups"]:
                    assert group["available"] is True
                    assert group["consistent"] is True
                    states = [r["state"] for r in group["replicas"]]
                    assert states == ["up", "up"]
            finally:
                client.close()

    def test_metrics_aggregate_per_shard_latency(self, handmade_index):
        with running_cluster(handmade_index, 2, 1) as (_s, _g, router):
            client = ServiceClient(*router.address)
            try:
                # Distinct top_k per request: the router's result cache
                # would absorb identical repeats before any shard attempt.
                for top_k in (5, 6, 7):
                    client.request(
                        {
                            "op": "query",
                            "query": "pancreas | DigestiveSystem",
                            "top_k": top_k,
                        }
                    )
                metrics = client.request({"op": "metrics"})
                assert metrics["status"] == "ok"
                router_stats = metrics["router"]
                assert router_stats["failovers"] == 0
                per_shard = router_stats["per_shard"]
                assert set(per_shard) == {"0", "1"}
                for stats in per_shard.values():
                    assert stats["attempts"] >= 3
                    assert stats["errors"] == 0
                    assert stats["latency_ms"]["p95"] >= 0.0
                assert len(router_stats["replicas"]) == 2
                assert metrics["requests"] == 3
                assert metrics["ok"] == 3
            finally:
                client.close()


# ---------------------------------------------------------------------------
# Cluster-wide version coherence: shipped catalogs, swap under traffic,
# placement changes — every event rank-safe, every cache vector-guarded


def whole_collection_catalog(index) -> ViewCatalog:
    """A one-view catalog over the reference (unsharded) index; the
    router ships its *definitions* and workers re-materialise locally."""
    table = WideSparseTable.from_index(index)
    view = materialize_view(
        table,
        {"DigestiveSystem"},
        df_terms=["pancreas"],
        tc_terms=["pancreas"],
    )
    return ViewCatalog([view])


class TestClusterCoherence:
    def test_install_is_bit_identical_and_acked_by_every_worker(
        self, handmade_index
    ):
        with running_cluster(handmade_index, 2, 2) as (
            sharded,
            _groups,
            router,
        ):
            flat = ContextSearchEngine(handmade_index)
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                # Before: cluster == in-process sharded == single-node.
                for query in QUERIES:
                    assert_router_matches(client, engine, query, "context")
                status, flat_ranking = run_local(
                    flat, "pancreas | DigestiveSystem", "context"
                )

                generation = router.service.install_catalog(
                    whole_collection_catalog(handmade_index),
                    info={"trigger": "test-install"},
                )
                assert generation == 1

                # The router's vector moved exactly one catalog step,
                # and every worker acked with the shipped generation.
                vector = router.service.version
                assert isinstance(vector, VersionVector)
                assert vector.catalog_generation == 1
                assert vector.placement_generation == 0
                health = client.request({"op": "healthz"})
                assert health["catalog_generation"] == 1
                assert health["version_vector"]["catalog_generation"] == 1
                assert (
                    health["catalog"]["provenance"]["trigger"]
                    == "test-install"
                )
                for group in health["groups"]:
                    for replica in group["replicas"]:
                        acked = replica["version_vector"]
                        assert acked["catalog_generation"] == 1

                # After: rankings bit-identical to both references —
                # the install redirected statistics resolution only.
                for query in QUERIES:
                    assert_router_matches(client, engine, query, "context")
                response = client.request(
                    {
                        "op": "query",
                        "query": "pancreas | DigestiveSystem",
                        "top_k": 10,
                    }
                )
                assert status == "ok"
                got = [(h["doc"], h["score"]) for h in response["hits"]]
                assert got == flat_ranking
            finally:
                client.close()
                engine.close()
                flat.close()

    def test_swap_under_traffic_with_replica_kill(self, handmade_index):
        """Interleave catalog installs, a replica kill, and live queries:
        every response the clients see must match the reference ranking
        (no stale ranking from any cache) and every worker thread must
        finish (no hung future)."""
        with running_cluster(handmade_index, 2, 2) as (
            _sharded,
            groups,
            router,
        ):
            flat = ContextSearchEngine(handmade_index)
            traffic_queries = [
                "pancreas | DigestiveSystem",
                "pancreas leukemia | DigestiveSystem",
                "leukemia | Neoplasms",
            ]
            expected = {
                query: run_local(flat, query, "context", top_k=8)
                for query in traffic_queries
            }
            flat.close()

            stop = threading.Event()
            mismatches = []
            errors = []

            def drive(thread_id: int):
                client = ServiceClient(*router.address)
                try:
                    while not stop.is_set():
                        query = traffic_queries[
                            thread_id % len(traffic_queries)
                        ]
                        response = client.request(
                            {"op": "query", "query": query, "top_k": 8}
                        )
                        if response["status"] != "ok":
                            errors.append((query, response))
                            continue
                        got = [
                            (h["doc"], h["score"]) for h in response["hits"]
                        ]
                        if got != expected[query][1]:
                            mismatches.append((query, got))
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append((f"thread-{thread_id}", repr(exc)))
                finally:
                    client.close()

            threads = [
                threading.Thread(target=drive, args=(i,), daemon=True)
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            try:
                catalog = whole_collection_catalog(handmade_index)
                # Swap 1 with all replicas healthy.
                assert router.service.install_catalog(catalog) == 1
                # Kill one replica of shard 0 mid-traffic; failover
                # absorbs it.
                groups[0][0].stop(timeout=10.0)
                # Swap 2 with the replica dead: healthy workers install,
                # the dead one is reported by name — generation still
                # advances and rankings stay exact.
                try:
                    generation = router.service.install_catalog(catalog)
                except QueryError as exc:
                    assert "did not reach every worker" in str(exc)
                    generation = router.service.catalog_generation
                assert generation == 2
                # Drop every catalog again (swap 3) — still rank-safe.
                try:
                    router.service.install_catalog(None)
                except QueryError as exc:
                    assert "did not reach every worker" in str(exc)
                assert router.service.catalog_generation == 3
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30.0)
            assert not any(thread.is_alive() for thread in threads), (
                "hung traffic thread"
            )
            assert mismatches == [], mismatches[:3]
            assert errors == [], errors[:3]

    def test_update_placement_is_rank_safe_and_bumps_generation(
        self, handmade_index
    ):
        with running_cluster(handmade_index, 2, 2) as (
            sharded,
            _groups,
            router,
        ):
            engine = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                for query in QUERIES:
                    assert_router_matches(client, engine, query, "context")
                assert router.service.placement_generation == 0

                # Shrink every group to its first replica — a placement
                # change that keeps the data identical.
                new_groups = {
                    shard_id: [addresses[0]]
                    for shard_id, addresses in router.service.cluster
                    .groups.items()
                }
                generation = router.service.update_placement(new_groups)
                assert generation == 1

                health = client.request({"op": "healthz"})
                assert health["placement_generation"] == 1
                assert (
                    health["version_vector"]["placement_generation"] == 1
                )
                assert health["replication"] == 2  # config unchanged
                for group in health["groups"]:
                    assert len(group["replicas"]) == 1

                # Rankings are placement-independent: still bit-identical.
                for query in QUERIES:
                    assert_router_matches(client, engine, query, "context")

                # A placement cover gap is refused readably.
                with pytest.raises(QueryError, match="placement"):
                    router.service.update_placement({0: ["127.0.0.1:1"]})
            finally:
                client.close()
                engine.close()


# ---------------------------------------------------------------------------
# Placement and cluster config


class TestPlacement:
    WORKERS = [f"10.0.0.{i}:7100" for i in range(1, 7)]

    def test_deterministic(self):
        first = place_shards(self.WORKERS, 8, 2)
        second = place_shards(self.WORKERS, 8, 2)
        assert first == second

    def test_groups_are_distinct_workers(self):
        groups = place_shards(self.WORKERS, 8, 3)
        assert set(groups) == set(range(8))
        for replicas in groups.values():
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert set(replicas) <= set(self.WORKERS)

    def test_replication_capped_at_cluster_size(self):
        groups = place_shards(["a:1", "b:2"], 2, 5)
        for replicas in groups.values():
            assert len(replicas) == 2

    def test_removal_moves_only_affected_shards(self):
        before = place_shards(self.WORKERS, 16, 1)
        after = place_shards(self.WORKERS[:-1], 16, 1)
        lost = self.WORKERS[-1]
        for shard_id, replicas in before.items():
            if lost not in replicas:
                assert after[shard_id] == replicas

    def test_ring_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a:1", "a:1"])


class TestClusterConfig:
    def payload(self, **overrides):
        payload = {
            "kind": "cluster",
            "num_shards": 2,
            "replication": 2,
            "workers": ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"],
        }
        payload.update(overrides)
        return payload

    def test_ring_placement_from_workers(self):
        config = ClusterConfig.from_payload(self.payload())
        assert set(config.groups) == {0, 1}
        for shard_id in (0, 1):
            assert len(config.groups[shard_id]) == 2
            assert config.replicas(shard_id)[0][0] == "127.0.0.1"

    def test_explicit_groups_override_ring(self):
        config = ClusterConfig.from_payload(
            self.payload(
                groups=[
                    {"shard": 0, "replicas": ["127.0.0.1:9001"]},
                    {"shard": 1, "replicas": ["127.0.0.1:9002"]},
                ]
            )
        )
        assert config.groups[0] == ["127.0.0.1:9001"]
        assert config.groups[1] == ["127.0.0.1:9002"]

    def test_round_trips_through_payload(self):
        config = ClusterConfig.from_payload(self.payload())
        again = ClusterConfig.from_payload(config.to_payload())
        assert again.groups == config.groups
        assert again.router.fail_threshold == config.router.fail_threshold

    @pytest.mark.parametrize(
        ("mutation", "match"),
        [
            ({"kind": "nope"}, "kind='cluster'"),
            ({"num_shards": 0}, "num_shards"),
            ({"replication": 0}, "replication"),
            ({"workers": ["no-port"]}, "host:port"),
            ({"workers": ["h:not-a-number"]}, "non-numeric"),
            ({"workers": ["h:99999"]}, "out-of-range"),
            ({"workers": []}, "workers"),
            ({"router": {"fail_threshold": 0}}, "fail_threshold"),
            ({"router": {"health_interval_s": 0}}, "health_interval_s"),
            ({"router": {"attempt_timeout_ms": 0}}, "attempt_timeout_ms"),
            (
                {"groups": [{"shard": 0, "replicas": []}]},
                "empty replica group",
            ),
            (
                {"groups": [{"shard": 0, "replicas": ["h:1"]}]},
                "missing for shards",
            ),
        ],
    )
    def test_validation_errors_are_readable(self, mutation, match):
        with pytest.raises(ClusterConfigError, match=match):
            ClusterConfig.from_payload(self.payload(**mutation))

    def test_load_cluster_config_names_the_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ClusterConfigError, match="nope.json"):
            load_cluster_config(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ClusterConfigError, match="not valid JSON"):
            load_cluster_config(bad)
        good = tmp_path / "cluster.json"
        good.write_text(
            json.dumps(
                {
                    "kind": "cluster",
                    "num_shards": 1,
                    "workers": ["127.0.0.1:7101"],
                }
            )
        )
        config = load_cluster_config(good)
        assert config.groups[0] == ["127.0.0.1:7101"]

    def test_parse_address(self):
        assert parse_address("example.org:7070") == ("example.org", 7070)
        with pytest.raises(ClusterConfigError, match="host:port"):
            parse_address("7070")


# ---------------------------------------------------------------------------
# Workload-state persistence (satellite of the serving tier: survive
# restarts and failovers)


class TestWorkloadPersistence:
    def build_recorder(self) -> WorkloadRecorder:
        recorder = WorkloadRecorder(capacity=8, floor=0.1)
        for _ in range(3):
            recorder.record(["DigestiveSystem"], context_size=4)
        recorder.record(["Neoplasms", "Diseases"], context_size=3)
        recorder.decay(0.5)
        recorder.record(["Blood"], context_size=2)
        return recorder

    @staticmethod
    def entries(recorder):
        return [
            (sorted(e.predicates), e.frequency, e.context_size)
            for e in recorder.to_workload()
        ]

    def test_payload_round_trip_is_exact(self):
        recorder = self.build_recorder()
        clone = WorkloadRecorder.from_payload(recorder.to_payload())
        assert self.entries(clone) == self.entries(recorder)
        assert clone.total_recorded == recorder.total_recorded
        assert clone.capacity == recorder.capacity
        assert clone.floor == recorder.floor
        # Weights survive as decayed floats, not rounded frequencies.
        assert clone.to_payload() == recorder.to_payload()

    def test_restore_in_place(self):
        recorder = self.build_recorder()
        target = WorkloadRecorder(capacity=8)
        target.record(["Stale"], context_size=9)
        target.restore(recorder.to_payload())
        assert self.entries(target) == self.entries(recorder)
        assert target.recorded_since_mark == 0

    def test_restore_respects_own_capacity(self):
        recorder = self.build_recorder()
        tiny = WorkloadRecorder(capacity=1)
        tiny.restore(recorder.to_payload())
        assert len(tiny) == 1

    def test_save_and_load_state_file(self, tmp_path):
        recorder = self.build_recorder()
        state = tmp_path / "workload.json"
        save_workload_state(recorder, state)
        loaded = WorkloadRecorder.from_payload(load_workload_state(state))
        assert self.entries(loaded) == self.entries(recorder)

    def test_load_errors_name_the_file(self, tmp_path):
        with pytest.raises(SelectionError, match="workload.json"):
            load_workload_state(tmp_path / "workload.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(SelectionError, match="not valid JSON"):
            load_workload_state(bad)

    def test_rejects_foreign_payloads(self):
        with pytest.raises(SelectionError, match="workload-recorder"):
            WorkloadRecorder.from_payload({"kind": "cluster"})
        with pytest.raises(SelectionError, match="malformed"):
            WorkloadRecorder.from_payload(
                {
                    "kind": "workload-recorder",
                    "contexts": [{"predicates": ["A"]}],
                }
            )


# ---------------------------------------------------------------------------
# Multi-endpoint load generation


class TestMultiEndpointLoad:
    QUERIES = ["pancreas | DigestiveSystem", "leukemia | Neoplasms"] * 4

    def test_round_robin_with_per_endpoint_breakdown(self, handmade_index):
        with ServerThread(
            ContextSearchEngine(handmade_index), _worker_config()
        ) as first, ServerThread(
            ContextSearchEngine(handmade_index), _worker_config()
        ) as second:
            report = run_load(
                [first.address, second.address], self.QUERIES, threads=4
            )
            assert report.ok == report.sent == len(self.QUERIES)
            keys = {
                "{}:{}".format(*first.address),
                "{}:{}".format(*second.address),
            }
            assert set(report.endpoints) == keys
            assert (
                sum(s.sent for s in report.endpoints.values()) == report.sent
            )
            for stats in report.endpoints.values():
                assert stats.sent > 0
                assert len(stats.latencies) == stats.sent
            assert set(report.to_dict()["endpoints"]) == keys

    def test_single_endpoint_report_shape_is_unchanged(self, handmade_index):
        with ServerThread(
            ContextSearchEngine(handmade_index), _worker_config()
        ) as only:
            report = run_load(only.address, self.QUERIES, threads=2)
            assert report.ok == report.sent
            assert "endpoints" not in report.to_dict()
