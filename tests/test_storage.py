"""Round-trip tests for index and catalog persistence."""

import pytest

from repro import ContextSearchEngine, build_index, select_views
from repro.storage import (
    StorageError,
    load_catalog,
    load_index,
    save_catalog,
    save_index,
)

from .conftest import HANDMADE_DOCS


class TestIndexRoundTrip:
    @pytest.fixture(
        params=[
            ("idx.json", 4),
            ("idx.json", 3),
            ("idx.json.gz", 3),
        ],
        ids=["v4-binary", "v3-json", "v3-json-gz"],
    )
    def saved_path(self, request, tmp_path, handmade_index):
        name, fmt = request.param
        path = tmp_path / name
        save_index(handmade_index, path, format=fmt)
        return path

    def test_statistics_survive(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        assert loaded.num_docs == handmade_index.num_docs
        assert loaded.total_length == handmade_index.total_length
        assert set(loaded.vocabulary) == set(handmade_index.vocabulary)
        assert set(loaded.predicate_vocabulary) == set(
            handmade_index.predicate_vocabulary
        )

    def test_postings_identical(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        for term in handmade_index.vocabulary:
            original = list(handmade_index.postings(term))
            assert list(loaded.postings(term)) == original

    def test_search_results_identical(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        a = ContextSearchEngine(handmade_index).search("leukemia | Diseases")
        b = ContextSearchEngine(loaded).search("leukemia | Diseases")
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_uncommitted_index_rejected(self, tmp_path):
        from repro.index import InvertedIndex

        with pytest.raises(StorageError):
            save_index(InvertedIndex(), tmp_path / "x.json")

    def test_wrong_kind_rejected(self, tmp_path, handmade_index):
        path = tmp_path / "idx.json"
        save_index(handmade_index, path)
        with pytest.raises(StorageError):
            load_catalog(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "index", "version": 999, "documents": []}')
        with pytest.raises(StorageError):
            load_index(path)


class TestCatalogRoundTrip:
    @pytest.fixture(scope="class")
    def selected(self, corpus_index):
        t_c = corpus_index.num_docs // 20
        catalog, _ = select_views(corpus_index, t_c=t_c, t_v=128)
        return catalog

    def test_views_survive(self, tmp_path, selected):
        path = tmp_path / "catalog.json.gz"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        assert len(loaded) == len(selected)
        for a, b in zip(selected, loaded):
            assert a.keyword_set == b.keyword_set
            assert a.df_terms == b.df_terms
            assert a.size == b.size

    def test_answers_identical(self, tmp_path, selected, corpus_index):
        from repro.core.query import ContextSpecification
        from repro.core.statistics import cardinality_spec, total_length_spec

        path = tmp_path / "catalog.json"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        view_a = next(iter(selected))
        view_b = next(v for v in loaded if v.keyword_set == view_a.keyword_set)
        context = ContextSpecification([sorted(view_a.keyword_set)[0]])
        specs = [cardinality_spec(), total_length_spec()]
        assert view_a.answer_many(specs, context) == view_b.answer_many(
            specs, context
        )

    def test_engine_with_loaded_catalog(self, tmp_path, selected, corpus_index):
        path = tmp_path / "catalog.json"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        covered = next(iter(loaded)).keyword_set
        predicate = max(sorted(covered), key=corpus_index.predicate_frequency)
        term = max(
            list(corpus_index.vocabulary)[:200],
            key=corpus_index.document_frequency,
        )
        a = ContextSearchEngine(corpus_index, catalog=selected).search(
            f"{term} | {predicate}"
        )
        b = ContextSearchEngine(corpus_index, catalog=loaded).search(
            f"{term} | {predicate}"
        )
        assert b.report.resolution.path == "views"
        assert a.external_ids() == b.external_ids()


class TestFormatVersions:
    """Format-version 3 persists precompiled postings plus block-max
    metadata; version-2 (columns, no block metadata) and version-1
    (token streams only) payloads must keep loading through the legacy
    decoders."""

    def _v1_payload(self, index) -> dict:
        return {
            "kind": "index",
            "version": 1,
            "searchable_fields": list(index.searchable_fields),
            "predicate_field": index.predicate_field,
            "segment_size": index.segment_size,
            "documents": [
                {
                    "external_id": doc.external_id,
                    "field_tokens": {
                        name: list(tokens)
                        for name, tokens in doc.field_tokens.items()
                    },
                }
                for doc in index.store
            ],
        }

    def test_v1_payload_still_loads(self, tmp_path, handmade_index):
        import json

        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self._v1_payload(handmade_index)))
        loaded = load_index(path)
        assert loaded.num_docs == handmade_index.num_docs
        for term in handmade_index.vocabulary:
            assert list(loaded.postings(term)) == list(
                handmade_index.postings(term)
            )
        a = ContextSearchEngine(handmade_index).search("leukemia | Diseases")
        b = ContextSearchEngine(loaded).search("leukemia | Diseases")
        assert a.external_ids() == b.external_ids()

    @staticmethod
    def _as_v2_payload(payload: dict) -> dict:
        """Strip a saved v3 payload down to the legacy v2 shape."""
        payload = dict(payload)
        payload["version"] = 2
        payload["content"] = {
            term: column[:3] for term, column in payload["content"].items()
        }
        return payload

    def test_v3_payload_carries_precompiled_postings(
        self, tmp_path, handmade_index
    ):
        import json

        path = tmp_path / "v3.json"
        save_index(handmade_index, path, format=3)
        payload = json.loads(path.read_text())
        from repro.storage import decode_column

        assert payload["version"] == 3
        assert payload["content"]  # postings columns, not just tokens
        term, column = next(iter(payload["content"].items()))
        packed_ids, packed_tfs, max_tf, packed_blocks = column
        ids, tfs = decode_column(packed_ids), decode_column(packed_tfs)
        blocks = decode_column(packed_blocks)
        assert len(ids) == len(tfs)
        assert max_tf == max(tfs)
        seg = payload["segment_size"]
        assert len(blocks) == -(-len(ids) // seg)
        assert list(blocks) == [
            max(tfs[start : start + seg]) for start in range(0, len(ids), seg)
        ]
        entry = payload["documents"][0]
        assert "length" in entry and "unique_terms" in entry

    def test_v3_reload_preserves_max_tf_and_blocks(
        self, tmp_path, handmade_index
    ):
        path = tmp_path / "v3.json"
        save_index(handmade_index, path, format=3)
        loaded = load_index(path)
        for term in handmade_index.vocabulary:
            original = handmade_index.postings(term)
            reloaded = loaded.postings(term)
            assert reloaded.max_tf == original.max_tf
            assert list(reloaded.block_max_tfs) == list(original.block_max_tfs)
            assert reloaded.segment_bounds() == original.segment_bounds()

    def test_v2_payload_still_loads_with_recomputed_blocks(
        self, tmp_path, handmade_index
    ):
        import json

        save_path = tmp_path / "v3.json"
        save_index(handmade_index, save_path, format=3)
        path = tmp_path / "v2.json"
        path.write_text(
            json.dumps(self._as_v2_payload(json.loads(save_path.read_text())))
        )
        loaded = load_index(path)
        for term in handmade_index.vocabulary:
            original = handmade_index.postings(term)
            reloaded = loaded.postings(term)
            assert list(reloaded) == list(original)
            assert reloaded.max_tf == original.max_tf
            # Block maxima are not in the v2 payload; the legacy decoder
            # recomputes them and they must match exactly.
            assert list(reloaded.block_max_tfs) == list(original.block_max_tfs)
        a = ContextSearchEngine(handmade_index).search_disjunctive(
            "leukemia | Diseases"
        )
        b = ContextSearchEngine(loaded).search_disjunctive(
            "leukemia | Diseases"
        )
        assert a.external_ids() == b.external_ids()

    def test_future_version_rejected_with_supported_list(
        self, tmp_path, handmade_index
    ):
        import json

        path = tmp_path / "v9.json"
        save_index(handmade_index, path, format=3)
        payload = json.loads(path.read_text())
        payload["version"] = 9
        path.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="versions 1, 2"):
            load_index(path)

    def test_malformed_v2_payload_is_storage_error(
        self, tmp_path, handmade_index
    ):
        import json

        path = tmp_path / "broken.json"
        save_index(handmade_index, path, format=3)
        payload = json.loads(path.read_text())
        term = next(iter(payload["content"]))
        payload["content"][term] = [[0, 1]]  # not an (ids, tfs, max_tf) triple
        path.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="malformed index payload"):
            load_index(path)


class TestShardedLoadRobustness:
    """A missing, truncated, or version-incompatible per-shard file must
    surface as one readable StorageError naming the offending file."""

    @pytest.fixture(params=[3, 4], ids=["v3-json", "v4-binary"])
    def saved_sharded(self, request, tmp_path, handmade_index):
        from repro.index.sharded import ShardedInvertedIndex
        from repro.storage import load_sharded_index, save_sharded_index

        sharded = ShardedInvertedIndex.from_index(handmade_index, 2, "hash")
        path = tmp_path / "idx.json"
        save_sharded_index(sharded, path, format=request.param)
        return path, load_sharded_index

    def test_missing_shard_file(self, saved_sharded):
        path, load_sharded_index = saved_sharded
        victim = path.parent / "idx.shard1.json"
        victim.unlink()
        with pytest.raises(StorageError, match="is missing") as exc_info:
            load_sharded_index(path)
        assert victim.name in str(exc_info.value)

    def test_truncated_gzip_shard(self, tmp_path, handmade_index):
        from repro.index.sharded import ShardedInvertedIndex
        from repro.storage import load_sharded_index, save_sharded_index

        sharded = ShardedInvertedIndex.from_index(handmade_index, 2, "hash")
        path = tmp_path / "idx.json.gz"
        save_sharded_index(sharded, path, format=3)
        victim = tmp_path / "idx.shard0.json.gz"
        victim.write_bytes(victim.read_bytes()[:40])  # truncate mid-stream
        with pytest.raises(StorageError, match="unreadable") as exc_info:
            load_sharded_index(path)
        assert victim.name in str(exc_info.value)

    def test_truncated_binary_shard(self, tmp_path, handmade_index):
        from repro.index.sharded import ShardedInvertedIndex
        from repro.storage import load_sharded_index, save_sharded_index

        sharded = ShardedInvertedIndex.from_index(handmade_index, 2, "hash")
        path = tmp_path / "idx.json"
        save_sharded_index(sharded, path, format=4)
        victim = tmp_path / "idx.shard0.json"
        victim.write_bytes(victim.read_bytes()[:64])  # torn mid-header
        with pytest.raises(StorageError, match="unreadable") as exc_info:
            load_sharded_index(path)
        assert victim.name in str(exc_info.value)

    def test_shard_version_mismatch(self, tmp_path, handmade_index):
        import json

        from repro.index.sharded import ShardedInvertedIndex
        from repro.storage import load_sharded_index, save_sharded_index

        sharded = ShardedInvertedIndex.from_index(handmade_index, 2, "hash")
        path = tmp_path / "idx.json"
        save_sharded_index(sharded, path, format=3)
        victim = path.parent / "idx.shard0.json"
        payload = json.loads(victim.read_text())
        payload["version"] = 99
        victim.write_text(json.dumps(payload))
        with pytest.raises(StorageError, match="unreadable") as exc_info:
            load_sharded_index(path)
        assert victim.name in str(exc_info.value)

    def test_intact_set_roundtrips(self, saved_sharded, handmade_index):
        path, load_sharded_index = saved_sharded
        loaded = load_sharded_index(path)
        assert loaded.num_docs == handmade_index.num_docs
        loaded.close()


class TestBinaryFormatV4:
    """The v4 block format: lazy loads, torn-file diagnostics, and
    resource lifecycle."""

    @pytest.fixture()
    def v4_path(self, tmp_path, handmade_index):
        path = tmp_path / "idx.bin"
        save_index(handmade_index, path, format=4)
        return path

    def test_rankings_bit_identical_to_eager_v3(
        self, tmp_path, v4_path, handmade_index
    ):
        v3_path = tmp_path / "idx.json"
        save_index(handmade_index, v3_path, format=3)
        eager = load_index(v3_path)
        lazy = load_index(v4_path)
        a = ContextSearchEngine(eager).search("leukemia | Diseases")
        b = ContextSearchEngine(lazy).search("leukemia | Diseases")
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == hb.score  # bit-identical, not approx
        lazy.close()

    def test_loaded_lists_are_lazy_until_touched(self, v4_path):
        from repro.index.postings import LazyPostingList

        loaded = load_index(v4_path)
        plist = next(
            loaded.postings(t)
            for t in loaded.vocabulary
            if len(loaded.postings(t))
        )
        assert isinstance(plist, LazyPostingList)
        assert not plist.materialized
        # Metadata reads decode nothing...
        assert plist.max_tf >= 1 and len(plist) >= 1
        assert not plist.materialized
        # ...while an element read decodes (memoised) blocks.
        assert plist.doc_ids[0] >= 0
        loaded.close()

    def test_close_is_idempotent_and_blocks_reads(self, v4_path):
        loaded = load_index(v4_path)
        untouched = [
            t for t in loaded.vocabulary if len(loaded.postings(t))
        ]
        loaded.close()
        loaded.close()  # idempotent
        with pytest.raises(StorageError, match="closed"):
            list(loaded.postings(untouched[0]).doc_ids)

    def test_context_manager_closes(self, v4_path):
        with load_index(v4_path) as loaded:
            assert loaded.num_docs > 0

    def test_json_loader_names_binary_artefact(self, v4_path):
        from repro.storage import load_catalog

        with pytest.raises(StorageError, match="byte 0.*format v4"):
            load_catalog(v4_path)

    def test_torn_header_names_file_and_offset(self, tmp_path, v4_path):
        torn = tmp_path / "torn.bin"
        torn.write_bytes(v4_path.read_bytes()[:32])
        with pytest.raises(StorageError, match="at byte") as exc_info:
            load_index(torn)
        assert torn.name in str(exc_info.value)

    def test_torn_blocks_surface_offset_on_decode(self, tmp_path, v4_path):
        # Keep the header/dictionary intact but cut the file short, so
        # the tear is only discovered when a block is actually decoded.
        data = v4_path.read_bytes()
        torn = tmp_path / "torn-tail.bin"
        torn.write_bytes(data[: int(len(data) * 0.7)])
        try:
            loaded = load_index(torn)
        except StorageError as exc:
            assert "at byte" in str(exc)
            return
        with pytest.raises(StorageError, match="at byte"):
            for term in loaded.vocabulary:
                list(loaded.postings(term).doc_ids)
        loaded.close()

    def test_flipped_magic_reports_damage(self, tmp_path, v4_path):
        data = bytearray(v4_path.read_bytes())
        data[5] ^= 0xFF  # damage inside the magic, after the sniff prefix
        bad = tmp_path / "bad-magic.bin"
        bad.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_index(bad)

    def test_no_resource_warning_when_closed(self, v4_path):
        import gc
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            loaded = load_index(v4_path)
            for term in list(loaded.vocabulary)[:5]:
                list(loaded.postings(term))
            loaded.close()
            del loaded
            gc.collect()
