"""Round-trip tests for index and catalog persistence."""

import pytest

from repro import ContextSearchEngine, build_index, select_views
from repro.storage import (
    StorageError,
    load_catalog,
    load_index,
    save_catalog,
    save_index,
)

from .conftest import HANDMADE_DOCS


class TestIndexRoundTrip:
    @pytest.fixture(params=["idx.json", "idx.json.gz"])
    def saved_path(self, request, tmp_path, handmade_index):
        path = tmp_path / request.param
        save_index(handmade_index, path)
        return path

    def test_statistics_survive(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        assert loaded.num_docs == handmade_index.num_docs
        assert loaded.total_length == handmade_index.total_length
        assert set(loaded.vocabulary) == set(handmade_index.vocabulary)
        assert set(loaded.predicate_vocabulary) == set(
            handmade_index.predicate_vocabulary
        )

    def test_postings_identical(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        for term in handmade_index.vocabulary:
            original = list(handmade_index.postings(term))
            assert list(loaded.postings(term)) == original

    def test_search_results_identical(self, saved_path, handmade_index):
        loaded = load_index(saved_path)
        a = ContextSearchEngine(handmade_index).search("leukemia | Diseases")
        b = ContextSearchEngine(loaded).search("leukemia | Diseases")
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_uncommitted_index_rejected(self, tmp_path):
        from repro.index import InvertedIndex

        with pytest.raises(StorageError):
            save_index(InvertedIndex(), tmp_path / "x.json")

    def test_wrong_kind_rejected(self, tmp_path, handmade_index):
        path = tmp_path / "idx.json"
        save_index(handmade_index, path)
        with pytest.raises(StorageError):
            load_catalog(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "index", "version": 999, "documents": []}')
        with pytest.raises(StorageError):
            load_index(path)


class TestCatalogRoundTrip:
    @pytest.fixture(scope="class")
    def selected(self, corpus_index):
        t_c = corpus_index.num_docs // 20
        catalog, _ = select_views(corpus_index, t_c=t_c, t_v=128)
        return catalog

    def test_views_survive(self, tmp_path, selected):
        path = tmp_path / "catalog.json.gz"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        assert len(loaded) == len(selected)
        for a, b in zip(selected, loaded):
            assert a.keyword_set == b.keyword_set
            assert a.df_terms == b.df_terms
            assert a.size == b.size

    def test_answers_identical(self, tmp_path, selected, corpus_index):
        from repro.core.query import ContextSpecification
        from repro.core.statistics import cardinality_spec, total_length_spec

        path = tmp_path / "catalog.json"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        view_a = next(iter(selected))
        view_b = next(v for v in loaded if v.keyword_set == view_a.keyword_set)
        context = ContextSpecification([sorted(view_a.keyword_set)[0]])
        specs = [cardinality_spec(), total_length_spec()]
        assert view_a.answer_many(specs, context) == view_b.answer_many(
            specs, context
        )

    def test_engine_with_loaded_catalog(self, tmp_path, selected, corpus_index):
        path = tmp_path / "catalog.json"
        save_catalog(selected, path)
        loaded = load_catalog(path)
        covered = next(iter(loaded)).keyword_set
        predicate = max(sorted(covered), key=corpus_index.predicate_frequency)
        term = max(
            list(corpus_index.vocabulary)[:200],
            key=corpus_index.document_frequency,
        )
        a = ContextSearchEngine(corpus_index, catalog=selected).search(
            f"{term} | {predicate}"
        )
        b = ContextSearchEngine(corpus_index, catalog=loaded).search(
            f"{term} | {predicate}"
        )
        assert b.report.resolution.path == "views"
        assert a.external_ids() == b.external_ids()
