"""Tests for the Figure 7/8 performance-workload generators."""

import pytest

from repro.data.workloads import generate_performance_workload
from repro.errors import DataGenerationError
from repro.index.searcher import BooleanSearcher


T_C_DIVISOR = 30


@pytest.fixture(scope="module")
def t_c(corpus_index):
    return max(corpus_index.num_docs // T_C_DIVISOR, 10)


@pytest.fixture(scope="module")
def large_workload(corpus, corpus_index, t_c):
    return generate_performance_workload(
        corpus,
        corpus_index,
        t_c=t_c,
        kind="large",
        keyword_counts=(2, 3),
        queries_per_count=8,
        seed=17,
    )


@pytest.fixture(scope="module")
def small_workload(corpus, corpus_index, t_c):
    return generate_performance_workload(
        corpus,
        corpus_index,
        t_c=t_c,
        kind="small",
        keyword_counts=(2, 3),
        queries_per_count=8,
        seed=17,
    )


class TestBucketing:
    def test_large_contexts_meet_threshold(self, large_workload, t_c):
        for bucket in large_workload.queries.values():
            for wq in bucket:
                assert wq.context_size >= t_c

    def test_small_contexts_below_threshold(self, small_workload, t_c):
        for bucket in small_workload.queries.values():
            for wq in bucket:
                assert 2 <= wq.context_size < t_c

    def test_keyword_counts(self, large_workload):
        for n, bucket in large_workload.queries.items():
            assert all(wq.num_keywords == n for wq in bucket)

    def test_queries_per_count(self, large_workload):
        assert all(len(b) == 8 for b in large_workload.queries.values())

    def test_context_sizes_accurate(self, large_workload, corpus_index):
        searcher = BooleanSearcher(corpus_index)
        for wq in large_workload.all_queries()[:10]:
            assert searcher.context_size(wq.query.predicates) == wq.context_size


class TestDeterminism:
    def test_same_seed_same_workload(self, corpus, corpus_index, t_c):
        kwargs = dict(
            t_c=t_c, kind="small", keyword_counts=(2,), queries_per_count=5, seed=9
        )
        a = generate_performance_workload(corpus, corpus_index, **kwargs)
        b = generate_performance_workload(corpus, corpus_index, **kwargs)
        assert [q.query.keywords for q in a.all_queries()] == [
            q.query.keywords for q in b.all_queries()
        ]


class TestValidation:
    def test_bad_kind(self, corpus, corpus_index, t_c):
        with pytest.raises(DataGenerationError):
            generate_performance_workload(
                corpus, corpus_index, t_c=t_c, kind="medium"
            )

    def test_impossible_budget_raises(self, corpus, corpus_index):
        with pytest.raises(DataGenerationError):
            generate_performance_workload(
                corpus,
                corpus_index,
                t_c=2,  # nearly nothing qualifies as "large... wait, small"
                kind="small",
                keyword_counts=(2,),
                queries_per_count=50,
                max_attempts_per_query=3,
                seed=1,
            )
