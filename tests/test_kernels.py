"""Property tests: every intersection kernel computes the same answer.

Three pairwise kernels coexist (adaptive array kernel, skip-pointer
merge, naive two-pointer merge) plus the dense/galloping primitives they
dispatch to — including the set-based fallback that runs when numpy is
absent.  All of them must agree bit-for-bit on any pair of sorted docid
lists; hypothesis drives the general case and the edge regimes (empty,
disjoint, subset, heavy asymmetry) are pinned explicitly.
"""

from array import array

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index import kernels
from repro.index.intersection import intersect, intersect_skip_merge
from repro.index.kernels import (
    GALLOP_RATIO,
    adaptive_intersect,
    dense_intersect,
    gallop_intersect,
    gallop_search,
    intersect_ids_with_tfs,
)
from repro.index.postings import CostCounter, PostingList


def make_list(ids, segment_size=4):
    return PostingList.from_pairs(
        "t", [(i, 1) for i in ids], segment_size=segment_size
    )


sorted_ids = st.lists(
    st.integers(min_value=0, max_value=3_000), unique=True, max_size=300
).map(sorted)


def all_kernel_results(ids_a, ids_b, segment_size=4):
    """Run every pairwise kernel over the same inputs."""
    a, b = make_list(ids_a, segment_size), make_list(ids_b, segment_size)
    return {
        "adaptive": intersect(a, b, CostCounter(), use_skips=True),
        "skip_merge": intersect_skip_merge(a, b, CostCounter()),
        "naive": intersect(a, b, CostCounter(), use_skips=False),
        "gallop_ab": gallop_intersect(
            a.doc_ids, b.doc_ids, segment_size, CostCounter()
        ),
        "dense": dense_intersect(a.doc_ids, b.doc_ids, CostCounter()),
    }


class TestKernelAgreement:
    @given(sorted_ids, sorted_ids)
    def test_all_kernels_agree(self, ids_a, ids_b):
        expected = sorted(set(ids_a) & set(ids_b))
        for name, result in all_kernel_results(ids_a, ids_b).items():
            assert list(result) == expected, name

    @given(sorted_ids)
    def test_empty_side(self, ids):
        for name, result in all_kernel_results([], ids).items():
            assert list(result) == [], name

    @given(sorted_ids)
    def test_self_intersection_is_identity(self, ids):
        for name, result in all_kernel_results(ids, ids).items():
            assert list(result) == ids, name

    def test_disjoint_ranges(self):
        a, b = list(range(0, 50)), list(range(100, 150))
        for name, result in all_kernel_results(a, b).items():
            assert list(result) == [], name

    def test_interleaved_disjoint(self):
        a, b = list(range(0, 100, 2)), list(range(1, 100, 2))
        for name, result in all_kernel_results(a, b).items():
            assert list(result) == [], name

    def test_strict_subset(self):
        big = list(range(0, 400, 2))
        small = big[:: GALLOP_RATIO * 2]  # forces the galloping regime
        for name, result in all_kernel_results(small, big).items():
            assert list(result) == small, name

    @given(sorted_ids, sorted_ids)
    def test_argument_order_irrelevant(self, ids_a, ids_b):
        a, b = make_list(ids_a), make_list(ids_b)
        assert intersect(a, b) == intersect(b, a)

    @given(sorted_ids, sorted_ids)
    def test_set_fallback_agrees_with_numpy_path(self, ids_a, ids_b):
        a = array("q", ids_a)
        b = array("q", ids_b)
        with_numpy = dense_intersect(a, b)
        saved = kernels._np
        kernels._np = None
        try:
            without_numpy = dense_intersect(a, b)
        finally:
            kernels._np = saved
        assert list(with_numpy) == list(without_numpy)


class TestGallopSearch:
    @given(sorted_ids, st.integers(min_value=0, max_value=3_000))
    def test_finds_leftmost_geq(self, ids, target):
        index, probes = gallop_search(ids, target, 0)
        assert probes >= 1
        assert all(v < target for v in ids[:index])
        assert all(v >= target for v in ids[index:])

    @given(sorted_ids, st.data())
    def test_start_position_respected(self, ids, data):
        if not ids:
            return
        position = data.draw(
            st.integers(min_value=0, max_value=len(ids) - 1)
        )
        target = data.draw(st.integers(min_value=0, max_value=3_000))
        index, _ = gallop_search(ids, target, position)
        assert index >= position
        assert all(v < target for v in ids[position:index])
        assert index == len(ids) or ids[index] >= target


class TestCounters:
    def test_gallop_charges_probes_and_skips(self):
        long_ids = array("q", range(10_000))
        short_ids = array("q", range(0, 10_000, 1_000))
        counter = CostCounter()
        gallop_intersect(short_ids, long_ids, 64, counter)
        assert counter.entries_scanned >= len(short_ids)
        # Galloping leaps nearly the whole long list; almost every
        # segment of it must be accounted as skipped.
        assert counter.segments_skipped > 0
        assert counter.entries_scanned < len(long_ids) // 2

    def test_dense_charges_both_sides(self):
        counter = CostCounter()
        dense_intersect(array("q", range(100)), array("q", range(100)), counter)
        assert counter.entries_scanned == 200

    def test_adaptive_disjoint_ranges_charge_nothing(self):
        counter = CostCounter()
        result = adaptive_intersect(
            array("q", range(10)), array("q", range(50, 60)), 4, 4, counter
        )
        assert result == []
        assert counter.entries_scanned == 0


class TestIntersectIdsWithTfs:
    @given(sorted_ids, sorted_ids)
    def test_matches_and_tc(self, ids, plist_ids):
        doc_ids = array("q", plist_ids)
        tfs = array("q", [i % 7 + 1 for i in range(len(plist_ids))])
        matched, tc = intersect_ids_with_tfs(
            ids, doc_ids, tfs, 4, CostCounter(), want_tc=True
        )
        expected = sorted(set(ids) & set(plist_ids))
        assert list(matched) == expected
        assert tc == sum(
            tfs[plist_ids.index(doc_id)] for doc_id in expected
        )

    def test_tc_skipped_unless_requested(self):
        doc_ids = array("q", [1, 2, 3])
        tfs = array("q", [5, 6, 7])
        matched, tc = intersect_ids_with_tfs([1, 3], doc_ids, tfs, 4)
        assert list(matched) == [1, 3]
        assert tc == 0
