"""Tests for the ontology navigator (Figure 2's context-building tool)."""

import pytest

from repro.data.navigator import OntologyNavigator
from repro.errors import DataGenerationError, QueryError


@pytest.fixture
def navigator(corpus, corpus_index):
    return OntologyNavigator(corpus.ontology, corpus_index)


class TestBrowsing:
    def test_roots_sorted_by_count(self, navigator):
        roots = navigator.roots()
        assert roots
        counts = [entry.document_count for entry in roots]
        assert counts == sorted(counts, reverse=True)

    def test_children_counts_match_index(self, navigator, corpus_index):
        root = navigator.roots()[0]
        for child in navigator.children(root.name):
            assert child.document_count == corpus_index.predicate_frequency(
                child.name
            )
            assert child.depth == root.depth + 1

    def test_path_to_root(self, navigator, corpus):
        leaf = corpus.ontology.leaves[0]
        path = navigator.path_to_root(leaf)
        assert path[0].name == leaf
        assert path[-1].depth == 0
        depths = [entry.depth for entry in path]
        assert depths == sorted(depths, reverse=True)

    def test_leaf_detection(self, navigator, corpus):
        leaf = corpus.ontology.leaves[0]
        entry = navigator.path_to_root(leaf)[0]
        assert entry.is_leaf


class TestSelection:
    def test_select_build_roundtrip(self, navigator):
        root = navigator.roots()[0]
        context = navigator.select(root.name).build()
        assert context.predicates == (root.name,)

    def test_unknown_term_rejected(self, navigator):
        with pytest.raises(DataGenerationError):
            navigator.select("Mistyped")

    def test_duplicate_select_idempotent(self, navigator):
        root = navigator.roots()[0]
        navigator.select(root.name).select(root.name)
        assert navigator.selection == (root.name,)

    def test_deselect_and_clear(self, navigator):
        root = navigator.roots()[0]
        navigator.select(root.name).deselect(root.name)
        assert navigator.selection == ()
        navigator.select(root.name).clear()
        assert navigator.selection == ()

    def test_empty_build_rejected(self, navigator):
        with pytest.raises(QueryError):
            navigator.build()

    def test_context_size_preview(self, navigator, corpus_index):
        assert navigator.context_size() == corpus_index.num_docs
        root = navigator.roots()[0]
        navigator.select(root.name)
        assert navigator.context_size() == root.document_count

    def test_disjoint_selection_rejected_at_build(self, navigator, corpus):
        """Two roots whose contexts never intersect produce an empty
        context; build() must refuse rather than hand the engine a query
        that cannot be ranked."""
        ontology = corpus.ontology
        roots = list(ontology.roots)
        navigator.select(roots[0])
        # Find a second root with zero co-occurrence, if one exists.
        for other in roots[1:]:
            navigator.clear()
            navigator.select(roots[0]).select(other)
            if navigator.context_size() == 0:
                with pytest.raises(QueryError):
                    navigator.build()
                return
        pytest.skip("all root pairs co-occur in this corpus")


class TestSuggestions:
    def test_narrower_suggestions_shrink_context(self, navigator):
        root = navigator.roots()[0]
        navigator.select(root.name)
        before = navigator.context_size()
        suggestions = navigator.suggest_narrower()
        assert suggestions
        for entry in suggestions:
            narrowed = OntologyNavigator(navigator.ontology, navigator.index)
            narrowed.select(root.name).select(entry.name)
            assert 0 < narrowed.context_size() < before

    def test_broader_suggestions_are_parents(self, navigator, corpus):
        leaf = corpus.ontology.leaves[0]
        navigator.select(leaf)
        suggestions = navigator.suggest_broader()
        assert suggestions
        assert suggestions[0].name == corpus.ontology.term(leaf).parent

    def test_no_selection_no_suggestions(self, navigator):
        assert navigator.suggest_narrower() == []
        assert navigator.suggest_broader() == []
