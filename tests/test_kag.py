"""Tests for the Keyword Association Graph (Definition 3)."""

import pytest

from repro.selection.kag import Edge, KeywordAssociationGraph
from repro.selection.mining import TransactionDatabase


@pytest.fixture
def db():
    return TransactionDatabase(
        [
            {"a", "b", "c"},
            {"a", "b"},
            {"a", "b"},
            {"b", "c"},
            {"c", "d"},
            {"d"},
            {"d", "e"},
        ]
    )


class TestConstruction:
    def test_edge_weights_are_cooccurrence_counts(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=1)
        assert kag.edge_weight("a", "b") == 3
        assert kag.edge_weight("b", "c") == 2
        assert kag.edge_weight("c", "d") == 1
        assert kag.edge_weight("a", "d") == 0

    def test_light_edges_dropped(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=2)
        assert kag.has_edge("a", "b")
        assert not kag.has_edge("c", "d")  # weight 1 < T_C

    def test_low_frequency_vertices_excluded(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=2)
        assert "e" not in kag  # frequency 1 < T_C

    def test_weights_match_brute_force(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=1)
        for edge in kag.edges():
            assert edge.weight == db.support({edge.a, edge.b})

    def test_from_edges(self):
        kag = KeywordAssociationGraph.from_edges(
            [("x", "y", 5)], vertices=["z"]
        )
        assert set(kag.vertices) == {"x", "y", "z"}
        assert kag.edge_weight("x", "y") == 5


class TestStructure:
    def test_connected_components(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=2)
        components = kag.connected_components()
        assert frozenset({"a", "b", "c"}) in components
        assert frozenset({"d"}) in components

    def test_components_largest_first(self):
        kag = KeywordAssociationGraph.from_edges(
            [("a", "b", 1)], vertices=["c", "d", "e"]
        )
        components = kag.connected_components()
        assert components[0] == frozenset({"a", "b"})

    def test_subgraph(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=1)
        sub = kag.subgraph({"a", "b", "d"})
        assert set(sub.vertices) == {"a", "b", "d"}
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("c", "d")

    def test_is_clique(self):
        triangle = KeywordAssociationGraph.from_edges(
            [("a", "b", 1), ("b", "c", 1), ("a", "c", 1)]
        )
        path = KeywordAssociationGraph.from_edges([("a", "b", 1), ("b", "c", 1)])
        assert triangle.is_clique()
        assert not path.is_clique()

    def test_single_vertex_is_clique(self):
        kag = KeywordAssociationGraph.from_edges([], vertices=["a"])
        assert kag.is_clique()

    def test_remove_light_edges(self):
        kag = KeywordAssociationGraph.from_edges(
            [("a", "b", 10), ("b", "c", 1)]
        )
        pruned = kag.remove_light_edges(5)
        assert pruned.has_edge("a", "b")
        assert not pruned.has_edge("b", "c")

    def test_edges_sorted_and_canonical(self):
        kag = KeywordAssociationGraph.from_edges(
            [("z", "a", 1), ("m", "b", 2)]
        )
        edges = kag.edges()
        assert edges == [Edge("a", "z", 1), Edge("b", "m", 2)]

    def test_num_edges(self, db):
        kag = KeywordAssociationGraph.from_transactions(db, t_c=1)
        assert kag.num_edges() == len(kag.edges())


class TestOnCorpus:
    def test_kag_from_corpus_predicates(self, corpus_db):
        t_c = len(corpus_db) // 10
        kag = KeywordAssociationGraph.from_transactions(corpus_db, t_c)
        # Vertices are exactly the frequent predicates.
        expected = set(corpus_db.frequent_items(t_c))
        assert set(kag.vertices) == expected
        # Spot-check edge weights against scans.
        for edge in kag.edges()[:10]:
            assert edge.weight == corpus_db.support({edge.a, edge.b})
            assert edge.weight >= t_c
