"""SearchBackend conformance: one contract, four engine shapes.

Every engine in the repo — flat :class:`ContextSearchEngine`, in-process
:class:`ShardedEngine`, :class:`LifecycleEngine`, and the cluster
:class:`RouterService` — must satisfy the same structural protocol from
:mod:`repro.core.backend`: a hashable :class:`VersionVector` ``version``
property, an ``install_catalog`` entry point that bumps exactly the
vector's catalog component and never changes a ranking, and an
idempotent ``close``.  This suite runs the identical checklist against
all four, plus unit coverage for the coherence primitives themselves
(:class:`VersionClock`, :class:`VersionVector`,
:class:`VersionAuthority`) and the deprecated swap shims.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    ContextSearchEngine,
    IncrementalReselector,
    ShardedEngine,
    ShardedInvertedIndex,
    ViewCatalog,
    build_index,
    materialize_view,
)
from repro.core.backend import (
    SearchBackend,
    VersionAuthority,
    VersionClock,
    VersionVector,
)
from repro.lifecycle import LifecycleEngine, SegmentedIndex
from repro.selection.workload_driven import WorkloadEntry
from repro.service import ServiceClient
from repro.views import WideSparseTable

from .conftest import HANDMADE_DOCS
from .test_cluster import running_cluster

QUERY = "pancreas | DigestiveSystem"


def digestive_catalog(index) -> ViewCatalog:
    table = WideSparseTable.from_index(index)
    view = materialize_view(
        table,
        {"DigestiveSystem"},
        df_terms=["pancreas"],
        tc_terms=["pancreas"],
    )
    return ViewCatalog([view])


def ranking_of(engine, query=QUERY, top_k=6):
    results = engine.search(query, top_k=top_k)
    return [(h.external_id, h.score) for h in results.hits]


def assert_conforms(backend, catalog, ranking_before):
    """The shared conformance checklist, identical for every shape."""
    assert isinstance(backend, SearchBackend)

    vector = backend.version
    assert isinstance(vector, VersionVector)
    assert backend.version == vector  # stable across reads
    assert {vector: "cache-entry"}[vector] == "cache-entry"  # hashable

    generation = backend.install_catalog(
        catalog, info={"trigger": "conformance"}
    )
    assert isinstance(generation, int)

    after = backend.version
    assert after.catalog_generation == generation
    assert after.catalog_generation > vector.catalog_generation
    assert after.placement_generation == vector.placement_generation
    assert after != vector  # any component moving invalidates caches
    assert backend.last_reselection == {"trigger": "conformance"}
    return generation


# ---------------------------------------------------------------------------
# Coherence primitives


class TestVersionClock:
    def test_monotonic_advance(self):
        clock = VersionClock()
        assert clock.version == 0
        assert clock.advance() == 1
        assert clock.advance() == 2

    def test_advance_to_never_moves_backwards(self):
        clock = VersionClock(5)
        assert clock.advance_to(3) == 5
        assert clock.advance_to(9) == 9
        assert clock.version == 9

    def test_thread_safety(self):
        clock = VersionClock()

        def bump():
            for _ in range(200):
                clock.advance()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.version == 8 * 200

    def test_shim_module_reexports_same_class(self):
        from repro.lifecycle.version import VersionClock as Shimmed

        assert Shimmed is VersionClock


class TestVersionVector:
    def test_equality_and_hash_key(self):
        a = VersionVector(epoch=3, catalog_generation=1)
        b = VersionVector(epoch=3, catalog_generation=1)
        assert a == b and hash(a) == hash(b)
        # Every component participates in inequality.
        assert a != VersionVector(epoch=4, catalog_generation=1)
        assert a != VersionVector(epoch=3, catalog_generation=2)
        assert a != VersionVector(
            epoch=3, catalog_generation=1, placement_generation=1
        )

    def test_opaque_epoch_supports_cluster_tuples(self):
        vector = VersionVector(epoch=(2, 5), catalog_generation=1)
        assert hash(vector) is not None
        assert vector != VersionVector(epoch=(2, 6), catalog_generation=1)

    def test_dict_roundtrip_int_and_tuple_epochs(self):
        for epoch in (7, (1, 2, 3)):
            vector = VersionVector(
                epoch=epoch, catalog_generation=4, placement_generation=2
            )
            payload = vector.to_dict()
            # Wire form is JSON-safe: tuples become lists.
            assert payload["epoch"] == (
                list(epoch) if isinstance(epoch, tuple) else epoch
            )
            assert VersionVector.from_dict(payload) == vector

    def test_as_tuple(self):
        assert VersionVector(1, 2, 3).as_tuple() == (1, 2, 3)


class TestVersionAuthority:
    def test_reads_epoch_from_source(self):
        state = {"epoch": 10}
        authority = VersionAuthority(epoch_source=lambda: state["epoch"])
        assert authority.vector() == VersionVector(epoch=10)
        state["epoch"] = 11
        assert authority.vector().epoch == 11

    def test_bumps_are_independent(self):
        authority = VersionAuthority()
        assert authority.bump_catalog() == 1
        assert authority.bump_placement() == 1
        assert authority.bump_placement() == 2
        assert authority.vector() == VersionVector(
            epoch=0, catalog_generation=1, placement_generation=2
        )

    def test_bump_adopts_shipped_generation(self):
        authority = VersionAuthority()
        assert authority.bump_catalog(generation=7) == 7
        # Never backwards: a stale shipped generation is absorbed.
        assert authority.bump_catalog(generation=4) == 7


# ---------------------------------------------------------------------------
# The conformance checklist, per shape


class TestFlatConformance:
    def test_contract(self):
        index = build_index(HANDMADE_DOCS)
        with ContextSearchEngine(index) as engine:
            before = ranking_of(engine)
            assert_conforms(engine, digestive_catalog(index), before)
            assert ranking_of(engine) == before  # bit-identical post-swap
        engine.close()  # idempotent

    def test_deprecated_swap_catalog_shim(self):
        index = build_index(HANDMADE_DOCS)
        with ContextSearchEngine(index) as engine:
            assert engine.swap_catalog(digestive_catalog(index)) == 1
            assert engine.version.catalog_generation == 1


class TestShardedConformance:
    def test_contract(self):
        index = build_index(HANDMADE_DOCS)
        sharded = ShardedInvertedIndex.from_index(
            index, 2, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="serial") as engine:
            before = ranking_of(engine)
            # A whole-collection catalog: definitions re-materialise
            # per shard inside install_catalog.
            assert_conforms(engine, digestive_catalog(index), before)
            assert ranking_of(engine) == before
            engine.close()  # idempotent

    def test_deprecated_swap_catalogs_shim(self):
        index = build_index(HANDMADE_DOCS)
        sharded = ShardedInvertedIndex.from_index(
            index, 2, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="serial") as engine:
            assert engine.swap_catalogs(None) == 1
            assert engine.version.catalog_generation == 1


class TestLifecycleConformance:
    def test_contract(self):
        with LifecycleEngine(SegmentedIndex()) as engine:
            engine.ingest(HANDMADE_DOCS)
            engine.flush()
            before = ranking_of(engine)

            reselector = IncrementalReselector(storage_budget=100_000)
            catalog, _report = reselector.reselect(
                engine.index.snapshot(),
                [WorkloadEntry(frozenset({"DigestiveSystem"}), frequency=4)],
                trigger="conformance",
            )
            epoch_before = engine.version.epoch
            assert_conforms(engine, catalog, before)
            # Lifecycle installs happen at a snapshot-version boundary,
            # so (uniquely among the shapes) the data epoch moves too.
            assert engine.version.epoch > epoch_before
            assert ranking_of(engine) == before
        engine.close()  # idempotent


class TestClusterConformance:
    def test_contract(self, handmade_index):
        with running_cluster(handmade_index, 2, 1) as (
            sharded,
            _groups,
            router,
        ):
            service = router.service
            reference = ShardedEngine(sharded, executor="serial")
            client = ServiceClient(*router.address)
            try:
                client.request({"op": "healthz"})  # populate replica info
                before = [
                    (hit["doc"], hit["score"])
                    for hit in client.request(
                        {"op": "query", "query": QUERY, "top_k": 6}
                    )["hits"]
                ]
                assert before == ranking_of(reference)

                generation = assert_conforms(
                    service, digestive_catalog(handmade_index), before
                )

                # The cluster vector's epoch is the tuple of per-shard
                # worker epochs.
                assert isinstance(service.version.epoch, tuple)
                assert len(service.version.epoch) == 2

                # Every worker acked with the router's generation.
                health = client.request({"op": "healthz"})
                for group in health["groups"]:
                    for replica in group["replicas"]:
                        assert (
                            replica["version_vector"]["catalog_generation"]
                            == generation
                        )

                after = [
                    (hit["doc"], hit["score"])
                    for hit in client.request(
                        {"op": "query", "query": QUERY, "top_k": 6}
                    )["hits"]
                ]
                assert after == before  # bit-identical post-install
            finally:
                client.close()
                reference.close()
