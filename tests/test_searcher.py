"""Unit tests for boolean retrieval over the handmade collection."""

import pytest

from repro.errors import QueryError
from repro.index import BooleanSearcher, CostCounter


@pytest.fixture
def searcher(handmade_index):
    return BooleanSearcher(handmade_index)


def externals(index, ids):
    return [index.store.get(i).external_id for i in ids]


class TestKeywordSearch:
    def test_single_keyword(self, searcher, handmade_index):
        ids = searcher.search_keywords(["leukemia"])
        assert externals(handmade_index, ids) == ["C2", "C3", "C5"]

    def test_conjunction(self, searcher, handmade_index):
        ids = searcher.search_keywords(["leukemia", "cancer"])
        assert externals(handmade_index, ids) == ["C3"]

    def test_no_match(self, searcher):
        assert searcher.search_keywords(["leukemia", "pancrea"]) == []

    def test_empty_keywords_raises(self, searcher):
        with pytest.raises(QueryError):
            searcher.search_keywords([])


class TestContextSearch:
    def test_single_predicate(self, searcher, handmade_index):
        ids = searcher.search_context(["DigestiveSystem"])
        assert externals(handmade_index, ids) == ["C1", "C2", "C4", "C6"]

    def test_predicate_conjunction(self, searcher, handmade_index):
        ids = searcher.search_context(["DigestiveSystem", "Neoplasms"])
        assert externals(handmade_index, ids) == ["C1"]

    def test_context_size(self, searcher):
        assert searcher.context_size(["DigestiveSystem"]) == 4
        assert searcher.context_size(["Nope"]) == 0

    def test_empty_predicates_raises(self, searcher):
        with pytest.raises(QueryError):
            searcher.search_context([])


class TestConjunction:
    def test_keywords_and_predicates(self, searcher, handmade_index):
        ids = searcher.search_conjunction(["leukemia"], ["DigestiveSystem"])
        assert externals(handmade_index, ids) == ["C2"]

    def test_matches_manual_composition(self, searcher):
        """Q_c's unranked result equals context ∩ keyword results."""
        combined = searcher.search_conjunction(["pancrea"], ["Diseases"])
        manual = set(searcher.search_keywords(["pancrea"])) & set(
            searcher.search_context(["Diseases"])
        )
        assert combined == sorted(manual)

    def test_counter_accumulates(self, searcher):
        counter = CostCounter()
        searcher.search_conjunction(["leukemia"], ["Diseases"], counter)
        assert counter.entries_scanned > 0

    def test_no_skips_variant_agrees(self, handmade_index):
        plain = BooleanSearcher(handmade_index, use_skips=False)
        skippy = BooleanSearcher(handmade_index, use_skips=True)
        assert plain.search_conjunction(
            ["leukemia"], ["Diseases"]
        ) == skippy.search_conjunction(["leukemia"], ["Diseases"])
