"""Integration tests for the search engine: both paths, both rankings."""

import pytest

from repro import (
    BM25,
    ContextSearchEngine,
    DirichletLanguageModel,
    EmptyContextError,
    QueryError,
    ViewCatalog,
    WideSparseTable,
    materialize_view,
    parse_query,
)


@pytest.fixture(scope="module")
def handmade_catalog(handmade_index):
    table = WideSparseTable.from_index(handmade_index)
    view = materialize_view(
        table,
        {"Diseases", "DigestiveSystem", "Neoplasms"},
        df_terms=list(handmade_index.vocabulary),
        tc_terms=list(handmade_index.vocabulary),
    )
    return ViewCatalog([view])


class TestContextSearch:
    def test_section11_example(self, handmade_engine):
        """The paper's motivating example: in the DigestiveSystem context,
        the leukemia citation (C2) outranks what conventional ranking
        prefers, because leukemia is rarer than pancreas there."""
        ctx = handmade_engine.search("leukemia | DigestiveSystem")
        assert ctx.hits[0].external_id == "C2"

    def test_result_set_equals_conventional(self, handmade_engine):
        """Q_c and Q_t = Q_k ∪ P return the same unranked result."""
        q = parse_query("pancreas | Diseases")
        ctx = handmade_engine.search(q)
        conv = handmade_engine.search_conventional(q)
        assert sorted(h.doc_id for h in ctx.hits) == sorted(
            h.doc_id for h in conv.hits
        )

    def test_scores_differ_between_modes(self, handmade_engine):
        q = parse_query("leukemia | DigestiveSystem")
        ctx = handmade_engine.search(q)
        conv = handmade_engine.search_conventional(q)
        assert ctx.hits[0].score != conv.hits[0].score

    def test_top_k_truncation(self, handmade_engine):
        q = parse_query("leukemia | Diseases")
        full = handmade_engine.search(q)
        top1 = handmade_engine.search(q, top_k=1)
        assert len(top1.hits) == 1
        assert top1.hits[0] == full.hits[0]

    def test_deterministic_tie_break(self, handmade_engine):
        q = parse_query("leukemia | Diseases")
        a = handmade_engine.search(q)
        b = handmade_engine.search(q)
        assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]

    def test_string_queries_accepted(self, handmade_engine):
        assert len(handmade_engine.search("cancer | Neoplasms")) > 0

    def test_empty_context_raises(self, handmade_engine):
        with pytest.raises(EmptyContextError):
            handmade_engine.search("leukemia | Unknown")

    def test_stopword_keyword_raises(self, handmade_engine):
        with pytest.raises(QueryError):
            handmade_engine.search("the | Diseases")

    def test_uncommitted_index_rejected(self):
        from repro.index import InvertedIndex

        with pytest.raises(QueryError):
            ContextSearchEngine(InvertedIndex())

    def test_report_fields(self, handmade_engine):
        r = handmade_engine.search("leukemia | DigestiveSystem")
        assert r.report.resolution.path == "straightforward"
        assert r.report.context_size == 4
        assert r.report.result_size == len(r.hits)
        assert r.report.elapsed_seconds >= 0
        assert r.report.counter.model_cost > 0


class TestViewsPath:
    def test_views_path_used(self, handmade_index, handmade_catalog):
        engine = ContextSearchEngine(handmade_index, catalog=handmade_catalog)
        r = engine.search("leukemia | DigestiveSystem")
        assert r.report.resolution.path == "views"
        assert r.report.resolution.views_used == 1

    def test_views_and_straightforward_scores_identical(
        self, handmade_index, handmade_catalog
    ):
        """The central correctness property: statistics from views are
        exact, so rankings agree bit-for-bit with the straightforward
        plan."""
        with_views = ContextSearchEngine(handmade_index, catalog=handmade_catalog)
        without = ContextSearchEngine(handmade_index)
        for text in (
            "leukemia | DigestiveSystem",
            "pancreas | Diseases",
            "cancer leukemia | Neoplasms",
            "outcomes | Diseases DigestiveSystem",
        ):
            a = with_views.search(text)
            b = without.search(text)
            assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]
            for ha, hb in zip(a.hits, b.hits):
                assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_uncovered_context_falls_back(self, handmade_index):
        table = WideSparseTable.from_index(handmade_index)
        view = materialize_view(table, {"Neoplasms"}, df_terms=[])
        engine = ContextSearchEngine(handmade_index, catalog=ViewCatalog([view]))
        r = engine.search("leukemia | DigestiveSystem")
        assert r.report.resolution.path == "straightforward"

    def test_rare_term_fallback_matches_plan(self, handmade_index):
        """A view without df columns still serves the context-level
        statistics; per-keyword df comes from selective intersections and
        must equal the plan's answer."""
        table = WideSparseTable.from_index(handmade_index)
        view = materialize_view(
            table, {"Diseases", "DigestiveSystem", "Neoplasms"}, df_terms=[]
        )
        with_views = ContextSearchEngine(
            handmade_index, catalog=ViewCatalog([view])
        )
        without = ContextSearchEngine(handmade_index)
        a = with_views.search("leukemia | DigestiveSystem")
        b = without.search("leukemia | DigestiveSystem")
        assert a.report.resolution.rare_term_fallbacks == 1
        assert [(h.doc_id, h.score) for h in a.hits] == [
            (h.doc_id, h.score) for h in b.hits
        ]


class TestOtherRankingModels:
    @pytest.mark.parametrize("ranking", [BM25(), DirichletLanguageModel(mu=50)])
    def test_views_agree_with_plan_for_model(
        self, handmade_index, handmade_catalog, ranking
    ):
        with_views = ContextSearchEngine(
            handmade_index, ranking=ranking, catalog=handmade_catalog
        )
        without = ContextSearchEngine(handmade_index, ranking=ranking)
        a = with_views.search("leukemia cancer | Neoplasms")
        b = without.search("leukemia cancer | Neoplasms")
        assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_models_produce_different_rankings_somewhere(self, corpus_engine, corpus_index):
        """Sanity: the three models are not secretly the same function."""
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        term = max(
            list(corpus_index.vocabulary)[:500],
            key=corpus_index.document_frequency,
        )
        tfidf = corpus_engine.search(f"{term} | {predicate}")
        bm25 = ContextSearchEngine(corpus_index, ranking=BM25()).search(
            f"{term} | {predicate}"
        )
        assert tfidf.hits[0].score != bm25.hits[0].score


class TestContextStatisticsHelper:
    def test_against_index_totals(self, handmade_engine, handmade_index):
        stats = handmade_engine.context_statistics(["Diseases"], ["leukemia"])
        assert stats.cardinality == handmade_index.num_docs
        assert stats.total_length == handmade_index.total_length
        assert stats.df_for("leukemia") == handmade_index.document_frequency(
            "leukemia"
        )
