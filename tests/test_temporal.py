"""Tests for time/range-extended contexts (the Section 7 extension)."""

import pytest

from repro.core.statistics import cardinality_spec, df_spec, total_length_spec
from repro.core.query import ContextSpecification
from repro.errors import EmptyContextError, QueryError, ViewNotUsableError
from repro.temporal import (
    NumericAttributeIndex,
    TemporalContextQuery,
    TemporalSearchEngine,
    materialize_temporal_view,
)
from repro.views import WideSparseTable


@pytest.fixture(scope="module")
def years(corpus_index):
    return NumericAttributeIndex.from_index(corpus_index, "year")


@pytest.fixture(scope="module")
def top_predicate(corpus_index):
    return max(
        corpus_index.predicate_vocabulary, key=corpus_index.predicate_frequency
    )


@pytest.fixture(scope="module")
def probe_term(corpus_index):
    return max(
        list(corpus_index.vocabulary)[:300], key=corpus_index.document_frequency
    )


@pytest.fixture(scope="module")
def temporal_view(corpus_index, corpus_table, years, top_predicate, probe_term):
    return materialize_temporal_view(
        corpus_table, years, {top_predicate}, df_terms=[probe_term]
    )


class TestAttributeIndex:
    def test_parses_year_field(self, corpus_index, years):
        assert len(years) == corpus_index.num_docs
        assert years.min_value is not None
        assert 1985 <= years.min_value <= years.max_value <= 2010

    def test_value_and_in_range(self, years):
        value = years.value(0)
        assert years.in_range(0, value, value)
        assert not years.in_range(0, value + 1, None)
        assert years.in_range(0, None, None)

    def test_range_doc_ids_matches_scan(self, years):
        low, high = 1995, 2003
        expected = sorted(
            d for d in range(len(years)) if years.in_range(d, low, high)
        )
        assert years.range_doc_ids(low, high) == expected

    def test_open_ranges(self, years):
        assert years.range_doc_ids(None, None) == sorted(
            d for d in range(len(years)) if years.value(d) is not None
        )

    def test_missing_values(self):
        attr = NumericAttributeIndex.from_values("y", [5, None, 7])
        assert attr.value(1) is None
        assert not attr.in_range(1, None, None)
        assert attr.range_doc_ids(None, None) == [0, 2]

    def test_unknown_docid(self, years):
        with pytest.raises(QueryError):
            years.value(10**9)


class TestTemporalView:
    def test_answers_match_brute_force(
        self, corpus_index, corpus_table, years, temporal_view,
        top_predicate, probe_term,
    ):
        context = ContextSpecification([top_predicate])
        for low, high in ((None, None), (1990, 2000), (2005, None), (None, 1992)):
            expected_docs = [
                row
                for row in corpus_table
                if top_predicate in row.predicates
                and years.in_range(row.doc_id, low, high)
            ]
            values = temporal_view.answer_many(
                [cardinality_spec(), total_length_spec(), df_spec(probe_term)],
                context,
                low,
                high,
            )
            assert values[cardinality_spec()] == len(expected_docs)
            assert values[total_length_spec()] == sum(
                r.length for r in expected_docs
            )
            plist = corpus_index.postings(probe_term)
            expected_df = sum(
                1 for r in expected_docs if plist.contains(r.doc_id)
            )
            assert values[df_spec(probe_term)] == expected_df

    def test_unusable_context_raises(self, temporal_view):
        with pytest.raises(ViewNotUsableError):
            temporal_view.answer_many(
                [cardinality_spec()], ContextSpecification(["Nope"]), None, None
            )

    def test_bucketed_view_alignment(self, corpus_table, years, top_predicate):
        view = materialize_temporal_view(
            corpus_table, years, {top_predicate}, bucket_width=5
        )
        context = ContextSpecification([top_predicate])
        assert view.covers_range_exactly(1990, 1994)
        assert not view.covers_range_exactly(1991, 1994)
        with pytest.raises(ViewNotUsableError):
            view.answer_many([cardinality_spec()], context, 1991, 1994)

    def test_bucketed_view_aligned_answers(
        self, corpus_table, years, top_predicate
    ):
        """Width-5 buckets answer aligned ranges exactly."""
        wide = materialize_temporal_view(
            corpus_table, years, {top_predicate}, bucket_width=5
        )
        fine = materialize_temporal_view(
            corpus_table, years, {top_predicate}, bucket_width=1
        )
        context = ContextSpecification([top_predicate])
        low, high = 1990, 1994
        assert wide.answer_many(
            [cardinality_spec()], context, low, high
        ) == fine.answer_many([cardinality_spec()], context, low, high)
        assert wide.size <= fine.size


class TestTemporalEngine:
    @pytest.fixture(scope="class")
    def engines(self, corpus_index, years, temporal_view):
        with_views = TemporalSearchEngine(
            corpus_index, years, views=[temporal_view]
        )
        plain = TemporalSearchEngine(corpus_index, years)
        return with_views, plain

    def test_views_and_straightforward_agree(
        self, engines, top_predicate, probe_term
    ):
        with_views, plain = engines
        text = f"{probe_term} | {top_predicate}"
        a = with_views.search(text, low=1995, high=2005)
        b = plain.search(text, low=1995, high=2005)
        assert a.report.resolution.path == "views"
        assert b.report.resolution.path == "straightforward"
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-10)

    def test_range_restricts_results(
        self, engines, years, top_predicate, probe_term
    ):
        with_views, _ = engines
        text = f"{probe_term} | {top_predicate}"
        unrestricted = with_views.search(text)
        restricted = with_views.search(text, low=2000, high=2005)
        assert len(restricted.hits) <= len(unrestricted.hits)
        for hit in restricted.hits:
            assert years.in_range(hit.doc_id, 2000, 2005)

    def test_range_changes_statistics(self, engines, top_predicate, probe_term):
        """The point of the extension: different time windows are
        different contexts with different statistics, hence potentially
        different scores for the same document."""
        with_views, _ = engines
        text = f"{probe_term} | {top_predicate}"
        early = with_views.search(text, low=None, high=1997)
        late = with_views.search(text, low=1998, high=None)
        assert early.report.context_size != late.report.context_size

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            TemporalContextQuery(None, low=5, high=1)

    def test_empty_context_raises(self, engines, top_predicate, probe_term):
        with_views, plain = engines
        with pytest.raises(EmptyContextError):
            plain.search(f"{probe_term} | {top_predicate}", low=3000, high=3001)

    def test_rare_term_fallback(self, corpus_index, years, corpus_table, top_predicate):
        """A view without df columns still serves context-level stats;
        keyword stats fall back and must match the plain path."""
        view = materialize_temporal_view(corpus_table, years, {top_predicate})
        with_views = TemporalSearchEngine(corpus_index, years, views=[view])
        plain = TemporalSearchEngine(corpus_index, years)
        term = max(
            list(corpus_index.vocabulary)[:300],
            key=corpus_index.document_frequency,
        )
        text = f"{term} | {top_predicate}"
        a = with_views.search(text, low=1990, high=2008)
        b = plain.search(text, low=1990, high=2008)
        assert a.report.resolution.rare_term_fallbacks == 1
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert ha.score == pytest.approx(hb.score, abs=1e-10)
