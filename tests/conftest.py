"""Shared fixtures: a handmade mini-collection and a synthetic corpus.

The handmade collection keeps statistics small enough to verify by hand;
the synthetic corpus (session-scoped — generation costs a second or two)
exercises realistic scale and distributions.
"""

from __future__ import annotations

import pytest

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    Document,
    InvertedIndex,
    build_index,
    generate_corpus,
)
from repro.selection import TransactionDatabase
from repro.views import ViewSizeEstimator, WideSparseTable

# The running example of Section 1.1: pancreas/leukemia in a digestive-
# system context, plus filler documents that shape the statistics.
HANDMADE_DOCS = [
    Document(
        "C1",
        {
            "title": "Complications following pancreas transplant",
            "abstract": "pancreas transplant outcomes and pancreas grafts",
            "mesh": "Diseases DigestiveSystem Neoplasms",
        },
    ),
    Document(
        "C2",
        {
            "title": "Organ failure with acute leukemia",
            "abstract": "leukemia treatment and organ failure outcomes",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "C3",
        {
            "title": "leukemia leukemia studies in cancer research",
            "abstract": "leukemia is common in cancer cohorts leukemia",
            "mesh": "Diseases Neoplasms",
        },
    ),
    Document(
        "C4",
        {
            "title": "gastric cancer and pancreas function",
            "abstract": "pancreas pancreatic enzyme levels",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "C5",
        {
            "title": "blood disorders overview",
            "abstract": "leukemia lymphoma and anemia incidence",
            "mesh": "Diseases Neoplasms Blood",
        },
    ),
    Document(
        "C6",
        {
            "title": "dietary fiber and digestion",
            "abstract": "fiber intake improves digestion outcomes",
            "mesh": "Diseases DigestiveSystem Nutrition",
        },
    ),
]


@pytest.fixture(scope="session")
def handmade_index() -> InvertedIndex:
    return build_index(HANDMADE_DOCS)


@pytest.fixture(scope="session")
def handmade_engine(handmade_index) -> ContextSearchEngine:
    return ContextSearchEngine(handmade_index)


@pytest.fixture(scope="session")
def corpus():
    """A small but realistic synthetic corpus (deterministic)."""
    return generate_corpus(CorpusConfig(num_docs=1500, seed=101))


@pytest.fixture(scope="session")
def corpus_index(corpus) -> InvertedIndex:
    return corpus.build_index()


@pytest.fixture(scope="session")
def corpus_engine(corpus_index) -> ContextSearchEngine:
    return ContextSearchEngine(corpus_index)


@pytest.fixture(scope="session")
def corpus_table(corpus_index) -> WideSparseTable:
    return WideSparseTable.from_index(corpus_index)


@pytest.fixture(scope="session")
def corpus_db(corpus_table) -> TransactionDatabase:
    return TransactionDatabase(corpus_table.predicate_sets())


@pytest.fixture(scope="session")
def corpus_estimator(corpus_table) -> ViewSizeEstimator:
    return ViewSizeEstimator(corpus_table, seed=7)
