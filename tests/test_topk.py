"""Tests for disjunctive top-k retrieval with MaxScore pruning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BM25, DirichletLanguageModel, PivotedNormalizationTFIDF
from repro.core.topk import (
    MaxScoreScorer,
    PredicateMembership,
    TopKDiagnostics,
    exhaustive_disjunctive,
)
from repro.errors import QueryError


@pytest.fixture(scope="module")
def stats(corpus_engine, corpus_index):
    """Whole-collection statistics for a small set of probe keywords."""

    def make(keywords):
        return corpus_engine._global_statistics(keywords)

    return make


def probe_keywords(corpus_index, count=3, offset=0):
    """Pick content terms with healthy posting lists, deterministically."""
    terms = sorted(
        corpus_index.vocabulary,
        key=lambda w: -corpus_index.document_frequency(w),
    )
    return terms[offset : offset + count]


class TestEquivalenceWithExhaustive:
    @pytest.mark.parametrize("k", [1, 5, 20])
    @pytest.mark.parametrize("ranking", [PivotedNormalizationTFIDF(), BM25()])
    def test_matches_reference(self, corpus_index, stats, k, ranking):
        keywords = probe_keywords(corpus_index, count=3)
        collection_stats = stats(keywords)
        scorer = MaxScoreScorer(corpus_index, keywords, collection_stats, ranking)
        pruned = scorer.top_k(k)
        reference = exhaustive_disjunctive(
            corpus_index, keywords, collection_stats, ranking, k
        )
        assert [s.doc_id for s in pruned] == [s.doc_id for s in reference]
        for a, b in zip(pruned, reference):
            assert a.score == pytest.approx(b.score, abs=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=30),
        offset=st.integers(min_value=0, max_value=40),
        count=st.integers(min_value=1, max_value=4),
    )
    def test_matches_reference_property(
        self, corpus_index, stats, k, offset, count
    ):
        keywords = probe_keywords(corpus_index, count=count, offset=offset)
        if not keywords:
            return
        collection_stats = stats(keywords)
        ranking = PivotedNormalizationTFIDF()
        pruned = MaxScoreScorer(
            corpus_index, keywords, collection_stats, ranking
        ).top_k(k)
        reference = exhaustive_disjunctive(
            corpus_index, keywords, collection_stats, ranking, k
        )
        assert [s.doc_id for s in pruned] == [s.doc_id for s in reference]

    def test_context_filtered_matches_reference(self, corpus_index, stats):
        keywords = probe_keywords(corpus_index, count=2)
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        membership = PredicateMembership(corpus_index, [predicate])
        collection_stats = stats(keywords)
        ranking = BM25()
        pruned = MaxScoreScorer(
            corpus_index, keywords, collection_stats, ranking,
            context_filter=membership,
        ).top_k(10)
        reference = exhaustive_disjunctive(
            corpus_index, keywords, collection_stats, ranking, 10,
            context_filter=set(
                corpus_index.predicate_postings(predicate).doc_ids
            ),
        )
        assert [s.doc_id for s in pruned] == [s.doc_id for s in reference]


class TestPruningBehaviour:
    def test_pruning_skips_candidates(self, corpus_index, stats):
        """With a small k and mixed-strength terms, MaxScore must score
        fewer candidates than it sees."""
        keywords = probe_keywords(corpus_index, count=4)
        collection_stats = stats(keywords)
        diagnostics = TopKDiagnostics()
        MaxScoreScorer(
            corpus_index, keywords, collection_stats, PivotedNormalizationTFIDF()
        ).top_k(3, diagnostics=diagnostics)
        assert diagnostics.candidates_seen > 0
        assert (
            diagnostics.candidates_scored + diagnostics.candidates_pruned
            <= diagnostics.candidates_seen
        ) or diagnostics.candidates_pruned > 0

    def test_upper_bounds_dominate_scores(self, corpus_index, stats):
        """Soundness of pruning: no term score exceeds its upper bound."""
        keywords = probe_keywords(corpus_index, count=3)
        collection_stats = stats(keywords)
        ranking = BM25()
        from repro.core.statistics import QueryStatistics

        qs = QueryStatistics.from_keywords(keywords)
        lengths = corpus_index.document_lengths()
        for term in keywords:
            plist = corpus_index.postings(term)
            if not len(plist):
                continue
            bound = ranking.term_upper_bound(
                term, max(plist.tfs), qs, collection_stats
            )
            for doc_id, tf in list(plist)[:200]:
                score = ranking.term_score(
                    term, tf, lengths[doc_id], qs, collection_stats
                )
                assert score <= bound + 1e-9


class TestValidation:
    def test_language_model_rejected(self, corpus_index, stats):
        keywords = probe_keywords(corpus_index, count=2)
        with pytest.raises(QueryError):
            MaxScoreScorer(
                corpus_index,
                keywords,
                stats(keywords),
                DirichletLanguageModel(),
            )

    def test_invalid_k(self, corpus_index, stats):
        keywords = probe_keywords(corpus_index, count=2)
        scorer = MaxScoreScorer(
            corpus_index, keywords, stats(keywords), BM25()
        )
        with pytest.raises(QueryError):
            scorer.top_k(0)

    def test_unknown_terms_empty_result(self, corpus_index, stats):
        scorer = MaxScoreScorer(
            corpus_index, ["zzzznope"], stats(["zzzznope"]), BM25()
        )
        assert scorer.top_k(5) == []


class TestEngineIntegration:
    def test_disjunctive_search_returns_or_matches(self, corpus_engine, corpus_index):
        keywords = probe_keywords(corpus_index, count=2)
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        results = corpus_engine.search_disjunctive(
            f"{keywords[0]} {keywords[1]} | {predicate}", top_k=10
        )
        assert 0 < len(results.hits) <= 10
        # Every hit is in the context and matches at least one keyword.
        context = set(corpus_index.predicate_postings(predicate).doc_ids)
        for hit in results.hits:
            assert hit.doc_id in context

    def test_disjunctive_superset_of_conjunctive(self, corpus_engine, corpus_index):
        """OR results must include every AND result's documents among the
        candidates (checked via scores: conjunctive hits appear with equal
        or higher rank count in a large-k disjunctive run)."""
        keywords = probe_keywords(corpus_index, count=2)
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        text = f"{keywords[0]} {keywords[1]} | {predicate}"
        conjunctive = corpus_engine.search(text)
        disjunctive = corpus_engine.search_disjunctive(text, top_k=5000)
        or_ids = {h.doc_id for h in disjunctive.hits}
        for hit in conjunctive.hits:
            assert hit.doc_id in or_ids

    def test_views_path_used_when_covered(self, corpus_index):
        from repro import ContextSearchEngine, select_views

        t_c = corpus_index.num_docs // 20
        catalog, _ = select_views(corpus_index, t_c=t_c, t_v=128)
        engine = ContextSearchEngine(corpus_index, catalog=catalog)
        covered = next(iter(catalog)).keyword_set
        predicate = max(sorted(covered), key=corpus_index.predicate_frequency)
        keywords = probe_keywords(corpus_index, count=2)
        results = engine.search_disjunctive(
            f"{keywords[0]} {keywords[1]} | {predicate}", top_k=10
        )
        assert results.report.resolution.path == "views"


class TestDisjunctiveFallbacks:
    def test_rare_term_fallback_on_views_path(self, corpus_index):
        """search_disjunctive with a catalog whose views lack df columns:
        statistics fall back per keyword, rankings still match the
        view-less engine."""
        from repro import ContextSearchEngine, ViewCatalog, WideSparseTable, materialize_view

        table = WideSparseTable.from_index(corpus_index)
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        bare_view = materialize_view(table, {predicate}, df_terms=[])
        with_views = ContextSearchEngine(
            corpus_index, catalog=ViewCatalog([bare_view])
        )
        plain = ContextSearchEngine(corpus_index)
        keywords = probe_keywords(corpus_index, count=2)
        text = f"{keywords[0]} {keywords[1]} | {predicate}"
        a = with_views.search_disjunctive(text, top_k=15)
        b = plain.search_disjunctive(text, top_k=15)
        assert a.report.resolution.path == "views"
        assert a.report.resolution.rare_term_fallbacks == 2
        assert a.external_ids() == b.external_ids()
        for ha, hb in zip(a.hits, b.hits):
            assert abs(ha.score - hb.score) < 1e-10

    def test_empty_context_raises(self, corpus_engine, corpus_index):
        from repro.errors import EmptyContextError
        import pytest as _pytest

        keywords = probe_keywords(corpus_index, count=1)
        with _pytest.raises(EmptyContextError):
            corpus_engine.search_disjunctive(f"{keywords[0]} | NoSuchTerm")
