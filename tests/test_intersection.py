"""Unit and property tests for inverted-list intersection operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.intersection import (
    intersect,
    intersect_ids,
    intersect_many,
    model_intersection_cost,
    union_many,
)
from repro.index.postings import CostCounter, PostingList


def make_list(ids, segment_size=4):
    return PostingList.from_pairs("t", [(i, 1) for i in ids], segment_size=segment_size)


sorted_ids = st.lists(
    st.integers(min_value=0, max_value=2_000), unique=True, max_size=200
).map(sorted)


class TestPairwise:
    def test_basic(self):
        a = make_list([1, 3, 5, 7, 9])
        b = make_list([3, 4, 5, 6, 9, 11])
        assert intersect(a, b) == [3, 5, 9]

    def test_empty_sides(self):
        a, empty = make_list([1, 2]), make_list([])
        assert intersect(a, empty) == []
        assert intersect(empty, a) == []

    @given(sorted_ids, sorted_ids)
    def test_matches_set_intersection(self, ids_a, ids_b):
        a, b = make_list(ids_a), make_list(ids_b)
        expected = sorted(set(ids_a) & set(ids_b))
        assert intersect(a, b) == expected

    @given(sorted_ids, sorted_ids)
    def test_skips_and_no_skips_agree(self, ids_a, ids_b):
        a, b = make_list(ids_a), make_list(ids_b)
        assert intersect(a, b, use_skips=True) == intersect(a, b, use_skips=False)

    def test_skips_touch_fewer_entries_on_sparse_join(self):
        long = make_list(list(range(1000)), segment_size=16)
        short = make_list([0, 999], segment_size=16)
        with_skips, without = CostCounter(), CostCounter()
        intersect(short, long, with_skips, use_skips=True)
        intersect(short, long, without, use_skips=False)
        assert with_skips.entries_scanned < without.entries_scanned
        assert with_skips.segments_skipped > 0

    def test_model_cost_charged(self):
        a = make_list(list(range(50)))
        b = make_list(list(range(25, 75)))
        counter = CostCounter()
        intersect(a, b, counter)
        assert counter.model_cost == model_intersection_cost(a, b)


class TestModelCost:
    def test_disjoint_lists_cost_zero(self):
        a = make_list(list(range(10)))
        b = make_list(list(range(100, 110)))
        assert model_intersection_cost(a, b) == 0

    def test_cost_bounded_by_sum_of_lengths_plus_padding(self):
        # M0·(N_i^o + N_j^o) <= |L_i| + |L_j| rounded up to segments.
        a = make_list(list(range(0, 200, 2)), segment_size=8)
        b = make_list(list(range(1, 200, 2)), segment_size=8)
        cost = model_intersection_cost(a, b)
        padded = (a.num_segments + b.num_segments) * 8
        assert cost <= padded

    def test_selective_list_cheap(self):
        """Section 3.2.2: tiny lists intersect long ones cheaply."""
        long = make_list(list(range(10_000)), segment_size=64)
        short = make_list([5_000], segment_size=64)
        cost = model_intersection_cost(short, long)
        # One short segment overlaps; at most one long segment overlaps it.
        assert cost <= 2 * 64

    def test_unequal_segment_sizes_charge_each_side_at_its_own_m0(self):
        """The generalisation M0_a·N_a^o + M0_b·N_b^o, hand-computed.

        Identical fully-overlapping ranges, one list segmented at 4 and
        the other at 16: every segment of each overlaps the other list,
        so each side contributes exactly its own segment size times its
        own segment count — never the other list's granularity.
        """
        a = make_list(list(range(32)), segment_size=4)  # 8 segments
        b = make_list(list(range(32)), segment_size=16)  # 2 segments
        assert model_intersection_cost(a, b) == 4 * 8 + 16 * 2

    def test_unequal_segment_sizes_selective_join(self):
        """A singleton joining a long list lands in one segment per side."""
        short = make_list([50], segment_size=4)
        long = make_list(list(range(100)), segment_size=16)
        # One overlapping segment on each side, each at its own M0.
        assert model_intersection_cost(short, long) == 4 * 1 + 16 * 1

    def test_unequal_segment_sizes_symmetric(self):
        a = make_list(list(range(0, 300, 3)), segment_size=4)
        b = make_list(list(range(0, 300, 7)), segment_size=32)
        assert model_intersection_cost(a, b) == model_intersection_cost(b, a)

    def test_equal_segment_sizes_match_paper_formula(self):
        """With one global M0 the general form degenerates to the paper's."""
        a = make_list(list(range(0, 120, 2)), segment_size=8)
        b = make_list(list(range(60, 180, 3)), segment_size=8)
        paper = 8 * (a.overlapping_segments(b) + b.overlapping_segments(a))
        assert model_intersection_cost(a, b) == paper


class TestIntersectIds:
    @given(sorted_ids, sorted_ids)
    def test_matches_set_semantics(self, ids, plist_ids):
        plist = make_list(plist_ids)
        expected = sorted(set(ids) & set(plist_ids))
        assert intersect_ids(sorted(ids), plist) == expected

    def test_empty_ids(self):
        assert intersect_ids([], make_list([1, 2])) == []


class TestIntersectMany:
    def test_three_way(self):
        lists = [
            make_list([1, 2, 3, 4, 5, 6]),
            make_list([2, 4, 6, 8]),
            make_list([4, 6, 10]),
        ]
        assert intersect_many(lists) == [4, 6]

    def test_single_list(self):
        assert intersect_many([make_list([3, 1 + 4])]) == [3, 5]

    def test_empty_input(self):
        assert intersect_many([]) == []

    def test_short_circuit_on_empty_intersection(self):
        lists = [make_list([1]), make_list([2]), make_list(list(range(1000)))]
        assert intersect_many(lists) == []

    @given(st.lists(sorted_ids, min_size=1, max_size=4))
    def test_matches_set_fold(self, id_lists):
        lists = [make_list(ids) for ids in id_lists]
        expected = set(id_lists[0])
        for ids in id_lists[1:]:
            expected &= set(ids)
        assert intersect_many(lists) == sorted(expected)


class TestUnionMany:
    @given(st.lists(sorted_ids, max_size=4))
    def test_matches_set_union(self, id_lists):
        lists = [make_list(ids) for ids in id_lists]
        expected = set()
        for ids in id_lists:
            expected |= set(ids)
        assert union_many(lists) == sorted(expected)
