"""Tests for the segmented index lifecycle.

The headline invariant: at *every* lifecycle point — memtable-only,
after flush, after tombstone deletes, after WAL-replay reopen, after
compaction — a ranking computed over the segmented index is
bit-identical to the ranking of a from-scratch
:class:`~repro.index.inverted_index.InvertedIndex` built over the
currently-live documents, in flat and sharded mode, across all three
query modes.  On top of that: snapshot isolation, crash recovery
(torn WAL tails vs real corruption), physical tombstone drop at
compaction, the single-epoch freshness contract of the statistics and
serving caches, exact incremental view maintenance, and a randomized
interleaving property test over the cached serving stack.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ContextSearchEngine, Document, InvertedIndex
from repro.core.stats_cache import CachingSearchEngine
from repro.errors import IndexError_, QueryError
from repro.lifecycle import (
    LifecycleEngine,
    SegmentedIndex,
    VersionClock,
    WriteAheadLog,
    replay_wal,
)
from repro.storage import StorageError, load_any_index

# ---------------------------------------------------------------------------
# Test corpus: deterministic, mesh predicates shared across docs so that
# contexts have several members and deletions visibly change statistics.

TOPICS = [
    ("protein folding dynamics", "Proteins Dynamics"),
    ("protein structure analysis", "Proteins Genomics"),
    ("genome sequencing pipelines", "Genomics Pipelines"),
    ("neural network training", "Learning Networks"),
    ("network protein interactions", "Proteins Networks"),
]


def make_docs(count, start=0):
    docs = []
    for i in range(start, start + count):
        title, mesh = TOPICS[i % len(TOPICS)]
        docs.append(
            Document(
                f"D{i}",
                {
                    "title": f"{title} study {i}",
                    "abstract": f"{title} results iteration {i % 7}",
                    "mesh": mesh,
                },
            )
        )
    return docs


DOCS = make_docs(20)

QUERIES = [
    "protein | Proteins",
    "protein structure | Proteins Genomics",
    "network training | Learning Networks",
    "genome | Genomics",
]


def fresh_reference(documents):
    """A from-scratch monolithic index over exactly these documents."""
    index = InvertedIndex()
    index.add_all(documents)
    index.commit()
    return index


def ranking_of(results):
    return [(h.external_id, round(h.score, 9)) for h in results.hits]


def assert_equivalent(engine, live_docs, queries=QUERIES):
    """Rankings from ``engine`` equal a from-scratch rebuild's, in all
    three query modes."""
    reference = ContextSearchEngine(fresh_reference(live_docs))
    for query in queries:
        for mode in ("context", "conventional", "disjunctive"):
            try:
                if mode == "context":
                    expected = reference.search(query)
                elif mode == "conventional":
                    expected = reference.search_conventional(query)
                else:
                    expected = reference.search_disjunctive(query)
                expected_error = None
            except QueryError as exc:
                expected, expected_error = None, type(exc)
            try:
                if mode == "context":
                    actual = engine.search(query)
                elif mode == "conventional":
                    actual = engine.search_conventional(query)
                else:
                    actual = engine.search_disjunctive(query)
            except QueryError as exc:
                assert expected_error is type(exc), (
                    f"{mode} {query!r}: engine raised {exc!r}, "
                    f"reference did not"
                )
                continue
            assert expected_error is None, (
                f"{mode} {query!r}: reference raised, engine did not"
            )
            assert ranking_of(actual) == ranking_of(expected), (
                f"{mode} {query!r}: ranking diverged"
            )


def live(documents, deleted):
    return [d for d in documents if d.doc_id not in deleted]


# ---------------------------------------------------------------------------
# Building blocks


class TestVersionClock:
    def test_monotonic(self):
        clock = VersionClock()
        assert clock.version == 0
        assert clock.advance() == 1
        assert clock.advance() == 2

    def test_advance_to_never_regresses(self):
        clock = VersionClock()
        clock.advance_to(7)
        assert clock.version == 7
        clock.advance_to(3)
        assert clock.version == 7


class TestMemtable:
    def _memtable(self):
        index = SegmentedIndex()
        return index._memtable

    def test_add_assigns_sequential_ids(self):
        table = self._memtable()
        stored = [table.add(doc) for doc in DOCS[:3]]
        assert [s.internal_id for s in stored] == [0, 1, 2]
        assert len(table) == 3

    def test_delete_removes_unsealed_doc(self):
        table = self._memtable()
        table.add(DOCS[0])
        table.add(DOCS[1])
        assert table.delete("D0") is not None
        assert table.get("D0") is None
        assert len(table) == 1
        # docid 0 is never reused
        stored = table.add(DOCS[2])
        assert stored.internal_id == 2


class TestSegment:
    def test_build_freezes_documents_and_postings(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:5])
        segment = index.flush()
        assert segment is not None
        assert segment.num_docs == 5
        assert segment.min_doc_id == 0
        assert segment.max_doc_id == 4
        for plist in segment.content.values():
            ids = list(plist.doc_ids)
            assert ids == sorted(ids)

    def test_live_documents_excludes_tombstones(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:5])
        segment = index.flush()
        survivors = segment.live_documents({1, 3})
        assert [d.internal_id for d in survivors] == [0, 2, 4]


# ---------------------------------------------------------------------------
# Snapshot semantics


class TestSnapshot:
    def test_snapshot_is_isolated_from_later_mutations(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:10])
        index.flush()
        before = index.snapshot()
        assert before.num_docs == 10

        index.delete_documents(["D3"])
        index.add_documents(DOCS[10:12])
        after = index.snapshot()

        # The old snapshot still sees the old world.
        assert before.num_docs == 10
        assert before.store.by_external_id("D3") is not None
        assert after.num_docs == 11
        assert after.store.by_external_id("D3") is None
        assert after.version > before.version

    def test_snapshot_cached_per_version(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:4])
        index.flush()
        assert index.snapshot() is index.snapshot()
        index.add_documents(DOCS[4:5])
        assert index.snapshot() is not None

    def test_clean_single_segment_postings_are_zero_copy(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:5])
        segment = index.flush()
        snapshot = index.snapshot()
        term = next(iter(segment.content))
        assert snapshot.postings(term) is segment.content[term]

    def test_tombstoned_ids_absent_from_all_postings(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:10])
        index.flush()
        index.delete_documents(["D0", "D5"])
        snapshot = index.snapshot()
        dead = {0, 5}
        for term in snapshot.vocabulary:
            assert not dead & set(snapshot.postings(term).doc_ids)
        for term in snapshot.predicate_vocabulary:
            assert not dead & set(snapshot.predicate_postings(term).doc_ids)

    def test_partitions_cover_disjoint_ranges(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:6])
        index.flush()
        index.add_documents(DOCS[6:10])
        index.flush()
        snapshot = index.snapshot()
        parts = snapshot.partitions()
        assert len(parts) == 2
        assert sum(p.num_docs for p in parts) == snapshot.num_docs

    def test_epoch_matches_version(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:2])
        snapshot = index.snapshot()
        assert snapshot.epoch == snapshot.version == index.epoch


# ---------------------------------------------------------------------------
# The headline invariant: bit-identity at every lifecycle point


@pytest.fixture(params=[0, 3], ids=["flat", "sharded3"])
def engine_factory(request):
    shards = request.param

    def make(index):
        return LifecycleEngine(index, num_shards=shards)

    return make


class TestBitIdentity:
    def test_memtable_only(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS[:10])
        assert_equivalent(engine, DOCS[:10])

    def test_mixed_segment_and_memtable(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS[:10])
        engine.flush()
        engine.ingest(DOCS[10:15])
        assert_equivalent(engine, DOCS[:15])

    def test_after_flush(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS)
        engine.flush()
        assert_equivalent(engine, DOCS)

    def test_after_tombstone_delete(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS[:15])
        engine.flush()
        engine.delete(["D3", "D7"])
        assert_equivalent(engine, live(DOCS[:15], {"D3", "D7"}))

    def test_ingest_after_delete(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS[:15])
        engine.flush()
        engine.delete(["D3", "D7"])
        engine.ingest(DOCS[15:])
        assert_equivalent(engine, live(DOCS, {"D3", "D7"}))

    def test_after_compaction(self, engine_factory):
        index = SegmentedIndex()
        engine = engine_factory(index)
        engine.ingest(DOCS[:8])
        engine.flush()
        engine.ingest(DOCS[8:15])
        engine.flush()
        engine.delete(["D3", "D7"])
        engine.ingest(DOCS[15:])
        report = engine.compact(full=True)
        assert report.changed
        assert_equivalent(engine, live(DOCS, {"D3", "D7"}))

    def test_after_reopen_with_wal_replay(self, engine_factory, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:12])
        index.flush()
        index.add_documents(DOCS[12:16])  # left in the WAL, unflushed
        index.delete_documents(["D2", "D13"])
        index.close()

        reopened = SegmentedIndex.open(directory)
        engine = engine_factory(reopened)
        try:
            assert_equivalent(engine, live(DOCS[:16], {"D2", "D13"}))
        finally:
            engine.close()


class TestSegmentStatsResolve:
    def test_matches_whole_snapshot_statistics(self):
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:8])
        engine.flush()
        engine.ingest(DOCS[8:16])
        engine.flush()
        engine.delete(["D4"])
        engine.ingest(DOCS[16:])

        ground = engine.current_engine().context_statistics(
            ["Proteins"], ["protein"]
        )
        merged = engine.context_statistics(["Proteins"], ["protein"])
        assert merged.cardinality == ground.cardinality
        assert merged.total_length == ground.total_length
        assert dict(merged.df) == dict(ground.df)

    def test_empty_context_raises(self):
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:5])
        with pytest.raises(QueryError):
            engine.context_statistics(["NoSuchPredicate"], ["protein"])


# ---------------------------------------------------------------------------
# Persistence and crash recovery


class TestPersistence:
    def test_reopen_restores_committed_state(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:10])
        index.flush()
        index.close()

        reopened = SegmentedIndex.open(directory)
        try:
            assert reopened.num_docs == 10
            assert reopened.num_segments == 1
            assert reopened.get_document("D4") is not None
        finally:
            reopened.close()

    def test_wal_replay_restores_unflushed_mutations(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:6])
        index.flush()
        index.add_documents(DOCS[6:9])
        index.delete_documents(["D1", "D7"])
        index.close()  # never flushed: adds + deletes live only in the WAL

        reopened = SegmentedIndex.open(directory)
        try:
            assert reopened.num_docs == 7
            assert reopened.get_document("D1") is None
            assert reopened.get_document("D7") is None
            assert reopened.get_document("D8") is not None
        finally:
            reopened.close()

    def test_torn_final_wal_line_is_dropped(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:5])
        index.close()
        wal_path = next(directory.glob("wal-*.jsonl"))
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "add", "doc_id": "D99", "fi')  # torn write

        reopened = SegmentedIndex.open(directory)
        try:
            assert reopened.num_docs == 5
            assert reopened.get_document("D99") is None
        finally:
            reopened.close()

    def test_mid_wal_corruption_is_a_storage_error(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:5])
        index.close()
        wal_path = next(directory.glob("wal-*.jsonl"))
        lines = wal_path.read_text(encoding="utf-8").splitlines()
        lines[1] = "NOT JSON"
        wal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        with pytest.raises(StorageError, match="corrupt WAL") as exc_info:
            SegmentedIndex.open(directory)
        assert wal_path.name in str(exc_info.value)

    def test_unknown_wal_op_is_a_storage_error(self, tmp_path):
        path = tmp_path / "wal-000000.jsonl"
        wal = WriteAheadLog(path)
        wal.log_add(DOCS[0])
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"op": "upsert", "doc_id": "D1"}) + "\n")
            handle.write(json.dumps({"op": "add", "doc_id": "D2", "fields": {}}) + "\n")
        with pytest.raises(StorageError, match="unknown record"):
            replay_wal(path)

    def test_missing_segment_file_names_the_file(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:5])
        index.flush()
        index.close()
        victim = next((directory / "segments").glob("seg-*"))
        victim.unlink()

        with pytest.raises(StorageError) as exc_info:
            SegmentedIndex.open(directory)
        assert victim.name in str(exc_info.value)

    def test_manifest_commit_is_atomic(self, tmp_path):
        """No .tmp siblings survive a commit, and the manifest is always
        parseable after any number of commits."""
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        for lo in range(0, 20, 5):
            index.add_documents(DOCS[lo : lo + 5])
            index.flush()
            assert not list(directory.rglob("*.tmp"))
            manifest = json.loads(
                (directory / "manifest.json").read_text(encoding="utf-8")
            )
            assert manifest["kind"] == "segmented_index"
        index.close()

    def test_commit_rotates_wal_generation(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:5])
        old = {p.name for p in directory.glob("wal-*.jsonl")}
        assert old  # the adds were logged
        index.flush()
        manifest = json.loads(
            (directory / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["wal"] not in old  # a fresh generation
        # The old generation is unlinked; the new one starts empty.
        assert not old & {p.name for p in directory.glob("wal-*.jsonl")}
        assert replay_wal(directory / manifest["wal"]) == []
        index.close()

    def test_load_any_index_opens_directories(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:5])
        index.flush()
        index.close()
        loaded = load_any_index(directory)
        try:
            assert isinstance(loaded, SegmentedIndex)
            assert loaded.num_docs == 5
        finally:
            loaded.close()

    def test_reopened_index_continues_docids(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:7])
        index.flush()
        index.close()
        reopened = SegmentedIndex.open(directory)
        stored = reopened.add_documents(DOCS[7:9])
        assert [s.internal_id for s in stored] == [7, 8]
        reopened.close()


# ---------------------------------------------------------------------------
# Compaction


class TestCompaction:
    def test_compaction_physically_drops_tombstones(self, tmp_path):
        directory = tmp_path / "idx"
        index = SegmentedIndex.open(directory)
        index.add_documents(DOCS[:10])
        index.flush()
        index.add_documents(DOCS[10:])
        index.flush()
        index.delete_documents(["D3", "D12"])
        report = index.compact(full=True)
        assert report.dropped_documents == 2
        assert index._tombstones == set()
        for segment in index._segments:
            externals = {d.external_id for d in segment.documents}
            assert "D3" not in externals and "D12" not in externals
        index.close()

        # And the physically-compacted state is what reloads.
        reopened = SegmentedIndex.open(directory)
        try:
            assert reopened._tombstones == set()
            assert reopened.num_docs == 18
        finally:
            reopened.close()

    def test_full_compaction_yields_single_segment(self):
        index = SegmentedIndex()
        for lo in range(0, 20, 5):
            index.add_documents(DOCS[lo : lo + 5])
            index.flush()
        assert index.num_segments == 4
        report = index.compact(full=True)
        assert index.num_segments == 1
        assert report.segments_before == 4
        assert report.segments_after == 1

    def test_tiered_compaction_merges_equal_sized_neighbours(self):
        index = SegmentedIndex()
        for lo in range(0, 12, 4):
            index.add_documents(DOCS[lo : lo + 4])
            index.flush()
        assert index.num_segments == 3
        report = index.compact()
        assert report.changed
        assert index.num_segments < 3

    def test_compaction_noop_when_nothing_to_do(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:5])
        index.flush()
        report = index.compact()
        assert not report.changed
        assert report.merged == []

    def test_compaction_preserves_docid_order(self):
        index = SegmentedIndex()
        for lo in range(0, 20, 5):
            index.add_documents(DOCS[lo : lo + 5])
            index.flush()
        index.delete_documents(["D2", "D11"])
        index.compact(full=True)
        snapshot = index.snapshot()
        ids = [d.internal_id for d in snapshot.store]
        assert ids == sorted(ids)
        for term in snapshot.vocabulary:
            column = list(snapshot.postings(term).doc_ids)
            assert column == sorted(column)


# ---------------------------------------------------------------------------
# The single-epoch contract: every cache reads one version counter


class TestEpochConsumers:
    def test_every_mutation_ticks_the_clock(self):
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        seen = [engine.epoch]
        engine.ingest(DOCS[:5])
        seen.append(engine.epoch)
        engine.delete(["D2"])
        seen.append(engine.epoch)
        engine.flush()
        seen.append(engine.epoch)
        engine.ingest(DOCS[5:10])
        engine.flush()
        engine.compact(full=True)
        seen.append(engine.epoch)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_single_epoch_source_across_the_stack(self):
        """Every epoch consumer reads the same VersionClock value: the
        lifecycle engine, its per-snapshot inner engine, the snapshot
        itself, and the stats-cache wrapper all agree — and a mutation
        advances all of them through the one clock."""
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:10])
        inner = engine.current_engine()
        cached = CachingSearchEngine(inner)
        assert (
            cached.epoch
            == inner.epoch
            == engine.epoch
            == index.epoch
            == index.snapshot().version
        )

        engine.ingest(DOCS[10:])
        fresh_inner = engine.current_engine()
        assert fresh_inner is not inner
        assert fresh_inner.epoch == index.epoch > cached.epoch

    def test_stats_cache_over_snapshot_engine_bit_identical(self):
        """A snapshot-backed engine's epoch is frozen, so the stats cache
        can serve hits forever without ever being stale — and the hit
        path must not change rankings."""
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS)
        engine.flush()
        inner = engine.current_engine()
        cached = CachingSearchEngine(inner)
        first = cached.search("protein | Proteins")
        assert len(cached.cache) > 0
        second = cached.search("protein | Proteins")
        assert cached.cache.metrics.spec_hits > 0
        assert ranking_of(second) == ranking_of(first)
        assert_equivalent_single(cached, DOCS, "protein | Proteins")

    def test_mutation_swaps_inner_engine_and_rankings_follow(self):
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:10])
        engine.search("protein | Proteins")
        engine.delete(["D0", "D5"])
        engine.compact(full=True)
        assert_equivalent_single(
            engine, live(DOCS[:10], {"D0", "D5"}), "protein | Proteins"
        )

    def test_sharded_engine_reports_snapshot_version(self):
        index = SegmentedIndex()
        engine = LifecycleEngine(index, num_shards=2)
        engine.ingest(DOCS[:10])
        inner = engine.current_engine()
        assert inner.epoch == engine.epoch == index.epoch


def assert_equivalent_single(engine, live_docs, query):
    reference = ContextSearchEngine(fresh_reference(live_docs))
    expected = reference.search(query)
    actual = engine.search(query)
    assert ranking_of(actual) == ranking_of(expected)


# ---------------------------------------------------------------------------
# Views stay exact across the lifecycle


class TestViewsMaintenance:
    def test_catalog_equals_from_scratch_materialization(self):
        """After any add/delete/flush/compact interleaving, the
        incrementally-maintained view equals one materialised from
        scratch over the surviving documents."""
        from repro.views import ViewCatalog, WideSparseTable
        from repro.views.view import materialize_view

        index = SegmentedIndex()
        catalog = ViewCatalog()
        engine = LifecycleEngine(index, catalog=catalog)

        keyword_set = frozenset({"Proteins", "Genomics"})
        engine.ingest(DOCS[:10])
        snapshot = index.snapshot()
        df_terms = tuple(
            sorted(
                snapshot.vocabulary,
                key=lambda t: -snapshot.document_frequency(t),
            )[:2]
        )
        table = WideSparseTable.from_index(snapshot)
        view = materialize_view(table, keyword_set, df_terms=df_terms)
        catalog.add(view)

        engine.ingest(DOCS[10:15])
        engine.flush()
        engine.delete(["D1", "D6"])
        engine.ingest(DOCS[15:])
        engine.compact(full=True)

        reference = fresh_reference(live(DOCS, {"D1", "D6"}))
        scratch = materialize_view(
            WideSparseTable.from_index(reference),
            keyword_set,
            df_terms=df_terms,
        )
        assert view.groups == scratch.groups

    def test_catalog_engine_matches_plain_engine(self):
        from repro.views import ViewCatalog

        index = SegmentedIndex()
        engine = LifecycleEngine(index, catalog=ViewCatalog())
        engine.ingest(DOCS[:12])
        engine.flush()
        engine.delete(["D4"])
        engine.ingest(DOCS[12:])
        assert_equivalent(engine, live(DOCS, {"D4"}))


# ---------------------------------------------------------------------------
# Serving: the result cache can never return a stale ranking


def make_service(engine, **overrides):
    from repro.service.server import QueryService, ServiceConfig

    return QueryService(engine, ServiceConfig(**overrides))


def query_request(text, top_k=5):
    from repro.service.protocol import Request

    return Request(op="query", query=text, top_k=top_k)


def serve(service, request):
    return asyncio.run(service.handle_request(request))


class TestLifecycleServing:
    def test_healthz_reports_lifecycle_state(self):
        from repro.service.protocol import Request

        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:5])
        service = make_service(engine)
        try:
            response = serve(service, query_request("protein | Proteins"))
            assert response["status"] == "ok"
            health = serve(service, Request(op="healthz"))
            assert health["engine"] == "lifecycle"
            assert health["lifecycle"]["live_docs"] == 5
            assert health["epoch"] == engine.epoch
        finally:
            service.close()

    def test_cached_serving_never_stale_after_mutations(self):
        """The serving cache hit path must go cold after every mutation:
        epoch stamps make stale entries unreachable."""
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        engine.ingest(DOCS[:10])
        service = make_service(engine, cache_entries=64)
        query = "protein | Proteins"
        try:
            first = serve(service, query_request(query))
            repeat = serve(service, query_request(query))
            assert repeat["cached"] is True
            assert repeat["hits"] == first["hits"]

            engine.ingest(DOCS[10:])
            fresh = serve(service, query_request(query))
            assert "cached" not in fresh
            assert service.result_cache.metrics.stale_drops == 1

            reference = ContextSearchEngine(fresh_reference(DOCS))
            expected = [
                h.external_id for h in reference.search(query, top_k=5).hits
            ]
            assert [h["doc"] for h in fresh["hits"]] == expected
        finally:
            service.close()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_interleaving_never_serves_stale(self, seed):
        """Property: under any interleaving of ingest/delete/flush/compact
        with cached serving, every response equals the from-scratch
        ranking over the currently-live documents."""
        rng = random.Random(seed)
        index = SegmentedIndex()
        engine = LifecycleEngine(index)
        service = make_service(engine, cache_entries=32)
        pending = make_docs(40)
        alive = []
        query = "protein | Proteins"
        try:
            engine.ingest(pending[:8])
            alive.extend(pending[:8])
            del pending[:8]
            for _ in range(12):
                op = rng.choice(
                    ["ingest", "delete", "flush", "compact", "query"]
                )
                if op == "ingest" and pending:
                    batch = pending[: rng.randint(1, 4)]
                    engine.ingest(batch)
                    alive.extend(batch)
                    del pending[: len(batch)]
                elif op == "delete" and len(alive) > 3:
                    victim = rng.choice(alive)
                    engine.delete([victim.doc_id])
                    alive.remove(victim)
                elif op == "flush":
                    engine.flush()
                elif op == "compact":
                    engine.compact(full=rng.random() < 0.5)
                response = serve(service, query_request(query))
                assert response["status"] == "ok"
                reference = ContextSearchEngine(fresh_reference(alive))
                expected = [
                    h.external_id
                    for h in reference.search(query, top_k=5).hits
                ]
                assert [h["doc"] for h in response["hits"]] == expected
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Error handling


class TestLifecycleErrors:
    def test_duplicate_add_rejected(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:3])
        with pytest.raises(IndexError_, match="duplicate"):
            index.add_documents([DOCS[0]])

    def test_delete_unknown_id_rejected_atomically(self):
        index = SegmentedIndex()
        index.add_documents(DOCS[:3])
        with pytest.raises(IndexError_, match="unknown"):
            index.delete_documents(["D0", "D99"])
        # Nothing was applied: D0 survives the failed batch.
        assert index.get_document("D0") is not None

    def test_auto_flush_seals_at_threshold(self):
        index = SegmentedIndex(flush_threshold=5)
        index.add_documents(DOCS[:12], auto_flush=True)
        assert index.num_segments >= 2
        assert len(index._memtable) < 5
        assert index.num_docs == 12
