"""Tests for posting-list compression (d-gaps + varint)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.index.compression import (
    compressed_size,
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
    index_compressed_bytes,
)
from repro.index.postings import PostingList


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21, 2**40])
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    def test_small_values_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            encode_varint(-1)

    def test_truncated_input(self):
        data = encode_varint(300)[:-1]
        with pytest.raises(ReproError):
            decode_varint(data)

    def test_sequence_decoding(self):
        data = encode_varint(5) + encode_varint(1000) + encode_varint(0)
        a, offset = decode_varint(data, 0)
        b, offset = decode_varint(data, offset)
        c, offset = decode_varint(data, offset)
        assert (a, b, c) == (5, 1000, 0)
        assert offset == len(data)


class TestPostingsRoundTrip:
    def test_simple(self):
        plist = PostingList.from_pairs("t", [(3, 2), (7, 1), (1000, 5)])
        decoded = decode_postings(encode_postings(plist), "t")
        assert list(decoded) == list(plist)

    def test_empty(self):
        plist = PostingList.from_pairs("t", [])
        assert list(decode_postings(encode_postings(plist))) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=1, max_value=500),
            ),
            unique_by=lambda pair: pair[0],
            max_size=200,
        )
    )
    def test_roundtrip_property(self, pairs):
        pairs = sorted(pairs)
        plist = PostingList.from_pairs("t", pairs)
        decoded = decode_postings(encode_postings(plist))
        assert list(decoded) == pairs

    def test_trailing_bytes_rejected(self):
        data = encode_postings(PostingList.from_pairs("t", [(1, 1)])) + b"\x81"
        with pytest.raises(ReproError):
            decode_postings(data)

    def test_dense_lists_compress_well(self):
        """Consecutive docids give 1-byte gaps: ~2 bytes per posting."""
        plist = PostingList.from_pairs("t", [(i, 1) for i in range(10_000)])
        size = compressed_size(plist)
        assert size < 2.1 * len(plist)
        assert size < 8 * len(plist)  # beats the raw accounting by 4x

    def test_index_compressed_bytes(self, handmade_index):
        total = index_compressed_bytes(handmade_index)
        raw = 8 * (
            sum(
                handmade_index.document_frequency(w)
                for w in handmade_index.vocabulary
            )
            + sum(
                handmade_index.predicate_frequency(m)
                for m in handmade_index.predicate_vocabulary
            )
        )
        assert 0 < total < raw

    def test_roundtrip_preserves_search(self, handmade_index):
        """Decoded lists answer exactly like the originals."""
        term = "leukemia"
        original = handmade_index.postings(term)
        decoded = decode_postings(encode_postings(original), term)
        assert decoded.doc_ids == original.doc_ids
        assert decoded.tfs == original.tfs
        assert decoded.tf_for(original.doc_ids[0]) == original.tfs[0]

    def test_roundtrip_preserves_max_tf_and_block_maxima(self):
        """Regression: decode used to drop the cached ``max_tf``, so a
        decoded list silently recomputed it (and with it every score
        upper bound) from a rescan.  The codec must carry ``max_tf``
        and the rebuilt per-block maxima must match exactly."""
        plist = PostingList.from_pairs(
            "t", [(i * 3, 1 + (7 * i) % 13) for i in range(300)]
        )
        decoded = decode_postings(encode_postings(plist), "t")
        assert decoded.max_tf == plist.max_tf
        assert list(decoded.block_max_tfs) == list(plist.block_max_tfs)
        assert decoded.segment_bounds() == plist.segment_bounds()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=1, max_value=500),
            ),
            unique_by=lambda pair: pair[0],
            max_size=200,
        )
    )
    def test_roundtrip_block_metadata_property(self, pairs):
        pairs = sorted(pairs)
        plist = PostingList.from_pairs("t", pairs, segment_size=8)
        decoded = decode_postings(
            encode_postings(plist), "t", segment_size=8
        )
        assert decoded.max_tf == plist.max_tf
        assert list(decoded.block_max_tfs) == list(plist.block_max_tfs)
