"""Tests for posting-list compression (d-gaps + varint)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.index.compression import (
    compressed_size,
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
    index_compressed_bytes,
)
from repro.index.postings import PostingList


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21, 2**40])
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_property(self, value):
        decoded, _ = decode_varint(encode_varint(value))
        assert decoded == value

    def test_small_values_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            encode_varint(-1)

    def test_truncated_input(self):
        data = encode_varint(300)[:-1]
        with pytest.raises(ReproError):
            decode_varint(data)

    def test_sequence_decoding(self):
        data = encode_varint(5) + encode_varint(1000) + encode_varint(0)
        a, offset = decode_varint(data, 0)
        b, offset = decode_varint(data, offset)
        c, offset = decode_varint(data, offset)
        assert (a, b, c) == (5, 1000, 0)
        assert offset == len(data)


class TestPostingsRoundTrip:
    def test_simple(self):
        plist = PostingList.from_pairs("t", [(3, 2), (7, 1), (1000, 5)])
        decoded = decode_postings(encode_postings(plist), "t")
        assert list(decoded) == list(plist)

    def test_empty(self):
        plist = PostingList.from_pairs("t", [])
        assert list(decode_postings(encode_postings(plist))) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=1, max_value=500),
            ),
            unique_by=lambda pair: pair[0],
            max_size=200,
        )
    )
    def test_roundtrip_property(self, pairs):
        pairs = sorted(pairs)
        plist = PostingList.from_pairs("t", pairs)
        decoded = decode_postings(encode_postings(plist))
        assert list(decoded) == pairs

    def test_trailing_bytes_rejected(self):
        data = encode_postings(PostingList.from_pairs("t", [(1, 1)])) + b"\x81"
        with pytest.raises(ReproError):
            decode_postings(data)

    def test_dense_lists_compress_well(self):
        """Consecutive docids give 1-byte gaps: ~2 bytes per posting."""
        plist = PostingList.from_pairs("t", [(i, 1) for i in range(10_000)])
        size = compressed_size(plist)
        assert size < 2.1 * len(plist)
        assert size < 8 * len(plist)  # beats the raw accounting by 4x

    def test_index_compressed_bytes(self, handmade_index):
        total = index_compressed_bytes(handmade_index)
        raw = 8 * (
            sum(
                handmade_index.document_frequency(w)
                for w in handmade_index.vocabulary
            )
            + sum(
                handmade_index.predicate_frequency(m)
                for m in handmade_index.predicate_vocabulary
            )
        )
        assert 0 < total < raw

    def test_roundtrip_preserves_search(self, handmade_index):
        """Decoded lists answer exactly like the originals."""
        term = "leukemia"
        original = handmade_index.postings(term)
        decoded = decode_postings(encode_postings(original), term)
        assert decoded.doc_ids == original.doc_ids
        assert decoded.tfs == original.tfs
        assert decoded.tf_for(original.doc_ids[0]) == original.tfs[0]

    def test_roundtrip_preserves_max_tf_and_block_maxima(self):
        """Regression: decode used to drop the cached ``max_tf``, so a
        decoded list silently recomputed it (and with it every score
        upper bound) from a rescan.  The codec must carry ``max_tf``
        and the rebuilt per-block maxima must match exactly."""
        plist = PostingList.from_pairs(
            "t", [(i * 3, 1 + (7 * i) % 13) for i in range(300)]
        )
        decoded = decode_postings(encode_postings(plist), "t")
        assert decoded.max_tf == plist.max_tf
        assert list(decoded.block_max_tfs) == list(plist.block_max_tfs)
        assert decoded.segment_bounds() == plist.segment_bounds()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=1, max_value=500),
            ),
            unique_by=lambda pair: pair[0],
            max_size=200,
        )
    )
    def test_roundtrip_block_metadata_property(self, pairs):
        pairs = sorted(pairs)
        plist = PostingList.from_pairs("t", pairs, segment_size=8)
        decoded = decode_postings(
            encode_postings(plist), "t", segment_size=8
        )
        assert decoded.max_tf == plist.max_tf
        assert list(decoded.block_max_tfs) == list(plist.block_max_tfs)


class TestBlockCodec:
    """The v4 per-block frame codec: bit-packed gaps/tfs with a varint
    fallback.  Every frame must round-trip exactly, and decoding
    arbitrary bytes must fail with StorageError — never crash."""

    @staticmethod
    def _roundtrip(doc_ids, tfs, prev, block=None):
        from array import array

        from repro.index.compression import decode_block, encode_block

        ids = array("q", doc_ids)
        freq = array("q", tfs)
        count = len(ids) if block is None else block
        frame = encode_block(ids, freq, 0, count, prev)
        out_ids, out_tfs = decode_block(frame, count, prev)
        assert list(out_ids) == list(doc_ids)[:count]
        assert list(out_tfs) == list(tfs)[:count]
        return frame

    def test_single_doc_block(self):
        self._roundtrip([0], [1], -1)
        self._roundtrip([2**62], [2**62], -1)

    @pytest.mark.parametrize("width", range(64))
    def test_every_gap_width_roundtrips(self, width):
        # Gaps of exactly 2**width exercise each packed width 0..63.
        gap = 2**width
        ids, prev = [], -1
        cursor = -1
        for _ in range(5):
            cursor += gap
            if cursor >= 2**63:
                break
            ids.append(cursor)
        self._roundtrip(ids, [1] * len(ids), prev)

    def test_max_int64_gap(self):
        self._roundtrip([2**63 - 1], [1], -1)
        self._roundtrip([0, 2**63 - 1], [1, 1], -1)

    def test_nonzero_prev_doc_id(self):
        self._roundtrip([100, 101, 200], [3, 1, 2], 99)

    def test_non_dividing_block_prefix(self):
        # A trailing short block: encode only the first `block` entries.
        ids = list(range(0, 700, 7))
        tfs = [(i % 9) + 1 for i in range(len(ids))]
        self._roundtrip(ids, tfs, -1, block=13)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**62),
                st.integers(min_value=1, max_value=2**40),
            ),
            unique_by=lambda pair: pair[0],
            min_size=1,
            max_size=128,
        ),
        st.integers(min_value=0, max_value=10),
    )
    def test_roundtrip_property(self, pairs, prev_offset):
        pairs = sorted(pairs)
        ids = [doc for doc, _ in pairs]
        prev = ids[0] - 1 - prev_offset
        if prev < -1:
            prev = -1
        self._roundtrip(ids, [tf for _, tf in pairs], prev)

    @given(
        st.integers(min_value=1, max_value=64),
        st.binary(min_size=0, max_size=80),
    )
    def test_fuzz_decode_never_crashes(self, count, data):
        from repro.errors import StorageError
        from repro.index.compression import decode_block

        try:
            out_ids, out_tfs = decode_block(data, count, -1)
        except StorageError:
            return  # rejection is the expected failure mode
        # A lucky decode must still satisfy the posting invariants.
        assert len(out_ids) == count
        assert all(tf >= 1 for tf in out_tfs)
        assert all(a < b for a, b in zip(out_ids, out_ids[1:]))

    def test_varint_fallback_for_wild_gaps(self):
        from array import array

        from repro.index.compression import VARINT_BLOCK, encode_block

        # One huge gap forces the packed width up for every entry; the
        # varint frame is smaller and must be chosen.
        ids = array("q", [0, 1, 2, 3, 2**60])
        tfs = array("q", [1] * 5)
        frame = encode_block(ids, tfs, 0, 5, -1)
        assert frame[0] == VARINT_BLOCK
        self._roundtrip(list(ids), list(tfs), -1)

    def test_unsorted_block_rejected(self):
        from array import array

        from repro.errors import ReproError
        from repro.index.compression import encode_block

        with pytest.raises(ReproError):
            encode_block(array("q", [5, 5]), array("q", [1, 1]), 0, 2, -1)
        with pytest.raises(ReproError):
            encode_block(array("q", [5]), array("q", [0]), 0, 1, -1)
