"""Round-trip tests for TREC-format topics, qrels, and run files."""

import pytest

from repro.data.trec import generate_benchmark
from repro.data.trec_io import (
    read_qrels,
    read_run,
    read_topics,
    write_qrels,
    write_run,
    write_topics,
)
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def small_benchmark(corpus, corpus_index):
    return generate_benchmark(
        corpus, corpus_index, num_topics=5,
        min_result_size=10, min_relevant=3, seed=13,
    )


class TestQrels:
    def test_roundtrip(self, tmp_path, small_benchmark):
        path = tmp_path / "gold.qrels"
        write_qrels(small_benchmark, path)
        judgements = read_qrels(path)
        for topic in small_benchmark.topics:
            assert judgements[topic.topic_id] == topic.relevant

    def test_zero_relevance_dropped(self, tmp_path):
        path = tmp_path / "mixed.qrels"
        path.write_text("1 0 docA 1\n1 0 docB 0\n2 0 docC 2\n")
        judgements = read_qrels(path)
        assert judgements == {1: frozenset({"docA"}), 2: frozenset({"docC"})}

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.qrels"
        path.write_text("1 0 docA\n")
        with pytest.raises(DataGenerationError):
            read_qrels(path)


class TestTopics:
    def test_roundtrip(self, tmp_path, small_benchmark):
        path = tmp_path / "topics.tsv"
        write_topics(small_benchmark, path)
        loaded = read_topics(path)
        assert len(loaded) == len(small_benchmark.topics)
        for (topic_id, question, query), topic in zip(
            loaded, small_benchmark.topics
        ):
            assert topic_id == topic.topic_id
            assert question == topic.question
            assert query.keywords == topic.query.keywords
            assert query.predicates == topic.query.predicates

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tno query column\n")
        with pytest.raises(DataGenerationError):
            read_topics(path)


class TestRuns:
    def test_roundtrip(self, tmp_path, small_benchmark, corpus_engine):
        results = {
            topic.topic_id: corpus_engine.search(topic.query, top_k=10)
            for topic in small_benchmark.topics
        }
        path = tmp_path / "system.run"
        write_run(results, path, run_tag="ctx")
        loaded = read_run(path)
        for topic_id, search_results in results.items():
            ranked = loaded[topic_id]
            assert [doc for doc, _ in ranked] == search_results.external_ids()
            for (_, score), hit in zip(ranked, search_results.hits):
                assert score == pytest.approx(hit.score, abs=1e-6)

    def test_run_format_columns(self, tmp_path, small_benchmark, corpus_engine):
        topic = small_benchmark.topics[0]
        path = tmp_path / "one.run"
        write_run(
            {topic.topic_id: corpus_engine.search(topic.query, top_k=3)},
            path,
            run_tag="mytag",
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        parts = lines[0].split()
        assert parts[1] == "Q0"
        assert parts[3] == "1"  # rank starts at 1
        assert parts[5] == "mytag"

    def test_malformed_run(self, tmp_path):
        path = tmp_path / "bad.run"
        path.write_text("1 Q0 doc 1 0.5\n")
        with pytest.raises(DataGenerationError):
            read_run(path)

    def test_end_to_end_scoring_from_files(
        self, tmp_path, small_benchmark, corpus_engine
    ):
        """Score a run against qrels purely from the written files."""
        from repro.eval import precision_at_k

        qrels_path = tmp_path / "g.qrels"
        run_path = tmp_path / "s.run"
        write_qrels(small_benchmark, qrels_path)
        results = {
            t.topic_id: corpus_engine.search(t.query, top_k=20)
            for t in small_benchmark.topics
        }
        write_run(results, run_path)

        judgements = read_qrels(qrels_path)
        run = read_run(run_path)
        for topic in small_benchmark.topics:
            ranked = [doc for doc, _ in run[topic.topic_id]]
            from_files = precision_at_k(
                ranked, judgements[topic.topic_id], 20
            )
            direct = precision_at_k(
                results[topic.topic_id].external_ids(), topic.relevant, 20
            )
            assert from_files == direct
