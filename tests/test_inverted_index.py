"""Unit tests for the inverted index (construction, statistics, postings)."""

import pytest

from repro.errors import ReproError
from repro.index import Document, InvertedIndex, build_index

from .conftest import HANDMADE_DOCS


class TestLifecycle:
    def test_reads_require_commit(self):
        index = InvertedIndex()
        index.add(HANDMADE_DOCS[0])
        with pytest.raises(ReproError):
            index.postings("pancrea")

    def test_add_after_commit_rejected(self, handmade_index):
        with pytest.raises(ReproError):
            handmade_index.add(Document("new", {"title": "x"}))

    def test_commit_idempotent(self, handmade_index):
        assert handmade_index.commit() is handmade_index

    def test_duplicate_doc_rejected(self):
        index = InvertedIndex()
        index.add(HANDMADE_DOCS[0])
        with pytest.raises(ReproError):
            index.add(HANDMADE_DOCS[0])


class TestCollectionStatistics:
    def test_num_docs(self, handmade_index):
        assert handmade_index.num_docs == len(HANDMADE_DOCS)

    def test_total_length_is_sum_of_doc_lengths(self, handmade_index):
        assert handmade_index.total_length == sum(
            doc.length for doc in handmade_index.store
        )

    def test_average_document_length(self, handmade_index):
        expected = handmade_index.total_length / handmade_index.num_docs
        assert handmade_index.average_document_length() == pytest.approx(expected)

    def test_empty_index_avgdl(self):
        index = InvertedIndex().commit()
        assert index.average_document_length() == 0.0


class TestPostings:
    def test_df_matches_brute_force(self, handmade_index):
        """df(w, D) from postings equals a scan over stored documents."""
        for term in ("pancrea", "leukemia", "cancer", "outcome"):
            expected = sum(
                1
                for doc in handmade_index.store
                if term
                in doc.field_tokens["title"] + doc.field_tokens["abstract"]
            )
            assert handmade_index.document_frequency(term) == expected

    def test_tf_accumulates_across_fields(self, handmade_index):
        # C3 has "leukemia" twice in the title and twice in the abstract.
        plist = handmade_index.postings("leukemia")
        doc = handmade_index.store.by_external_id("C3")
        assert plist.tf_for(doc.internal_id) == 4

    def test_unknown_term_empty_postings(self, handmade_index):
        assert len(handmade_index.postings("zzzzz")) == 0

    def test_postings_sorted_by_docid(self, handmade_index):
        for term in handmade_index.vocabulary:
            ids = list(handmade_index.postings(term).doc_ids)
            assert ids == sorted(ids)

    def test_stopwords_not_indexed(self, handmade_index):
        assert "the" not in handmade_index.vocabulary
        assert "and" not in handmade_index.vocabulary


class TestPredicatePostings:
    def test_predicate_lists(self, handmade_index):
        assert handmade_index.predicate_frequency("DigestiveSystem") == 4
        assert handmade_index.predicate_frequency("Neoplasms") == 3
        assert handmade_index.predicate_frequency("Diseases") == 6

    def test_predicate_tf_clamped_to_one(self, handmade_index):
        plist = handmade_index.predicate_postings("Diseases")
        assert all(tf == 1 for _, tf in plist)

    def test_predicates_not_stemmed(self, handmade_index):
        # "Diseases" would stem to "disease" in the content space.
        assert "Diseases" in handmade_index.predicate_vocabulary

    def test_unknown_predicate_empty(self, handmade_index):
        assert handmade_index.predicate_frequency("Nope") == 0


class TestBuildIndex:
    def test_build_index_commits(self):
        index = build_index(HANDMADE_DOCS[:2])
        assert index.committed
        assert index.num_docs == 2

    def test_custom_fields(self):
        docs = [Document("1", {"body": "alpha beta", "tags": "T1 T2"})]
        index = build_index(
            docs, searchable_fields=("body",), predicate_field="tags"
        )
        assert index.document_frequency("alpha") == 1
        assert index.predicate_frequency("T1") == 1
