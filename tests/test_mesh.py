"""Tests for the MeSH-like ontology generator."""

import pytest

from repro.data.mesh import ROOT_CATEGORIES, MeshOntology
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def ontology():
    return MeshOntology.generate(num_roots=4, branching=3, depth=3, seed=9)


class TestGeneration:
    def test_deterministic(self):
        a = MeshOntology.generate(num_roots=3, branching=3, depth=2, seed=5)
        b = MeshOntology.generate(num_roots=3, branching=3, depth=2, seed=5)
        assert a.all_terms == b.all_terms

    def test_different_seeds_differ(self):
        a = MeshOntology.generate(num_roots=3, branching=4, depth=3, seed=5)
        b = MeshOntology.generate(num_roots=3, branching=4, depth=3, seed=6)
        assert a.all_terms != b.all_terms

    def test_roots_are_categories(self, ontology):
        assert set(ontology.roots) == set(ROOT_CATEGORIES[:4])

    def test_every_nonroot_has_parent(self, ontology):
        for name in ontology.all_terms:
            term = ontology.term(name)
            if not term.is_root:
                assert term.name in ontology.term(term.parent).children

    def test_depths_consistent(self, ontology):
        for name in ontology.all_terms:
            term = ontology.term(name)
            assert term.depth == len(ontology.ancestors(name))

    def test_parameter_validation(self):
        with pytest.raises(DataGenerationError):
            MeshOntology.generate(num_roots=0)
        with pytest.raises(DataGenerationError):
            MeshOntology.generate(branching=1)
        with pytest.raises(DataGenerationError):
            MeshOntology.generate(depth=0)

    def test_names_unique_and_token_safe(self, ontology):
        names = ontology.all_terms
        assert len(set(names)) == len(names)
        for name in names:
            assert " " not in name  # must survive the keyword analyzer


class TestNavigation:
    def test_ancestors_to_root(self, ontology):
        leaf = ontology.leaves[0]
        chain = ontology.ancestors(leaf)
        assert chain, "a leaf at depth 3 has ancestors"
        assert ontology.term(chain[-1]).is_root

    def test_descendants_inverse_of_ancestors(self, ontology):
        root = ontology.roots[0]
        for descendant in ontology.descendants(root):
            assert root in ontology.ancestors(descendant)

    def test_expand_with_ancestors(self, ontology):
        leaf = ontology.leaves[0]
        expanded = ontology.expand_with_ancestors([leaf])
        assert leaf in expanded
        assert set(ontology.ancestors(leaf)) <= expanded
        assert len(expanded) == 1 + len(ontology.ancestors(leaf))

    def test_expand_multiple_terms_unions(self, ontology):
        leaves = list(ontology.leaves[:2])
        expanded = ontology.expand_with_ancestors(leaves)
        singles = set()
        for leaf in leaves:
            singles |= ontology.expand_with_ancestors([leaf])
        assert expanded == singles

    def test_unknown_term_raises(self, ontology):
        with pytest.raises(DataGenerationError):
            ontology.term("NotATerm")

    def test_popularity_weights(self, ontology):
        weights = ontology.popularity_weights()
        assert set(weights) == set(ontology.leaves)
        values = [weights[leaf] for leaf in sorted(weights)]
        assert all(v > 0 for v in values)
        # Zipf: sorted leaf order gets decreasing weight.
        ordered = [weights[leaf] for leaf in ontology.leaves]
        assert ordered == sorted(ordered, reverse=True)
