"""Unit tests for the analysis pipeline (tokeniser, stemmer, analyzers)."""

import pytest

from repro.index.analysis import (
    DEFAULT_STOPWORDS,
    Analyzer,
    KeywordAnalyzer,
    Stemmer,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Pancreas Transplant") == ["pancreas", "transplant"]

    def test_strips_punctuation(self):
        assert tokenize("failure, (acute) leukemia!") == [
            "failure",
            "acute",
            "leukemia",
        ]

    def test_keeps_hyphenated_and_apostrophised(self):
        assert tokenize("parvovirus-b19 and Crohn's") == [
            "parvovirus-b19",
            "and",
            "crohn's",
        ]

    def test_numbers_survive(self):
        assert tokenize("trial 2007 results") == ["trial", "2007", "results"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("   \t\n ") == []


class TestStemmer:
    @pytest.fixture
    def stemmer(self):
        return Stemmer()

    def test_plural_s(self, stemmer):
        assert stemmer.stem("transplants") == "transplant"

    def test_ies(self, stemmer):
        assert stemmer.stem("studies") == "study"

    def test_sses(self, stemmer):
        assert stemmer.stem("processes") == "process"
        assert stemmer.stem("classes") == "class"

    def test_short_tokens_untouched(self, stemmer):
        assert stemmer.stem("as") == "as"
        assert stemmer.stem("gas") == "gas"

    def test_stem_would_be_too_short(self, stemmer):
        # Stripping "ies" would leave fewer than 3 characters.
        assert stemmer.stem("ties") == "tie"  # falls through to -s rule
        assert stemmer.stem("is") == "is"

    def test_idempotent_on_stems(self, stemmer):
        once = stemmer.stem("outcomes")
        assert stemmer.stem(once) == once


class TestAnalyzer:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        tokens = analyzer.analyze("The complications of pancreas transplants")
        assert tokens == ["complication", "pancrea", "transplant"]

    def test_stopwords_removed(self):
        analyzer = Analyzer()
        assert analyzer.analyze("the and of with") == []

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords={"pancreas"})
        assert "pancreas" not in analyzer.analyze("pancreas failure")

    def test_no_stemming_option(self):
        analyzer = Analyzer(stemmer=None)
        assert analyzer.analyze("pancreas transplants") == [
            "pancreas",
            "transplants",
        ]

    def test_min_token_length(self):
        analyzer = Analyzer(stopwords=(), min_token_length=4)
        assert analyzer.analyze("gene expression rna") == ["gene", "expression"]

    def test_query_term_single(self):
        analyzer = Analyzer()
        assert analyzer.analyze_query_term("Leukemia") == "leukemia"

    def test_query_term_stopword_returns_none(self):
        analyzer = Analyzer()
        assert analyzer.analyze_query_term("the") is None

    def test_query_term_multiword_raises(self):
        analyzer = Analyzer()
        with pytest.raises(ValueError):
            analyzer.analyze_query_term("acute leukemia")

    def test_query_and_index_agree(self):
        """A keyword analysed at query time matches its indexed form."""
        analyzer = Analyzer()
        for word in ("pancreas", "studies", "complications", "leukemia"):
            indexed = analyzer.analyze(word)
            assert analyzer.analyze_query_term(word) == indexed[0]


class TestKeywordAnalyzer:
    def test_passthrough_identifiers(self):
        analyzer = KeywordAnalyzer()
        assert analyzer.analyze("DigestiveSystem Neoplasms") == [
            "DigestiveSystem",
            "Neoplasms",
        ]

    def test_no_stemming_no_stopping(self):
        analyzer = KeywordAnalyzer()
        assert analyzer.analyze("The Diseases") == ["The", "Diseases"]

    def test_query_term_strips_whitespace(self):
        analyzer = KeywordAnalyzer()
        assert analyzer.analyze_query_term("  Neoplasms ") == "Neoplasms"

    def test_query_term_empty_is_none(self):
        analyzer = KeywordAnalyzer()
        assert analyzer.analyze_query_term("   ") is None
