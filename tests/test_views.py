"""Tests for the materialized-view subsystem: table, views, usability, answers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import ContextSpecification
from repro.core.statistics import (
    cardinality_spec,
    df_spec,
    tc_spec,
    total_length_spec,
)
from repro.errors import ViewError, ViewNotUsableError
from repro.index.postings import CostCounter
from repro.views import (
    MaterializedView,
    ViewCatalog,
    WideSparseTable,
    materialize_view,
)


@pytest.fixture(scope="module")
def handmade_table(handmade_index):
    return WideSparseTable.from_index(handmade_index)


@pytest.fixture(scope="module")
def full_view(handmade_table, handmade_index):
    return materialize_view(
        handmade_table,
        {"Diseases", "DigestiveSystem", "Neoplasms", "Blood", "Nutrition"},
        df_terms=list(handmade_index.vocabulary),
        tc_terms=["leukemia", "pancrea"],
    )


class TestWideSparseTable:
    def test_one_row_per_document(self, handmade_table, handmade_index):
        assert len(handmade_table) == handmade_index.num_docs

    def test_row_contents(self, handmade_table, handmade_index):
        doc = handmade_index.store.by_external_id("C5")
        row = handmade_table.row(doc.internal_id)
        assert row.predicates == frozenset({"Diseases", "Neoplasms", "Blood"})
        assert row.length == doc.length

    def test_group_key_restricts_to_k(self, handmade_table, handmade_index):
        doc = handmade_index.store.by_external_id("C5")
        key = handmade_table.group_key(doc.internal_id, frozenset({"Blood", "Nutrition"}))
        assert key == frozenset({"Blood"})

    def test_group_keys_column(self, handmade_table):
        keys = handmade_table.group_keys(frozenset({"Diseases"}))
        assert len(keys) == len(handmade_table)
        assert all(k == frozenset({"Diseases"}) for k in keys)


class TestMaterializeView:
    def test_example_41_partition_semantics(self, handmade_table):
        """Example 4.1: groups partition the collection; COUNT sums to |D|."""
        view = materialize_view(
            handmade_table, {"DigestiveSystem", "Neoplasms"}
        )
        assert sum(g.count for g in view.groups.values()) == len(handmade_table)

    def test_group_aggregates_match_scan(self, handmade_table, full_view):
        for pattern, group in full_view.groups.items():
            rows = [
                row
                for row in handmade_table
                if row.predicates & full_view.keyword_set == pattern
            ]
            assert group.count == len(rows)
            assert group.sum_len == sum(r.length for r in rows)

    def test_view_size_counts_nonempty_tuples(self, handmade_table):
        view = materialize_view(handmade_table, {"DigestiveSystem", "Neoplasms"})
        # Patterns present: {DS}, {N}, {DS,N} — every doc has Diseases but
        # the grouped keys here are only over K.  C5 has N; C6 has DS...
        assert view.size == len(
            {
                row.predicates & frozenset({"DigestiveSystem", "Neoplasms"})
                for row in handmade_table
            }
        )

    def test_empty_keyword_set_rejected(self):
        with pytest.raises(ViewError):
            MaterializedView(frozenset(), {})


class TestUsability:
    """Theorem 4.1's two conditions."""

    def test_covered_context_usable(self, full_view):
        ctx = ContextSpecification(["DigestiveSystem", "Neoplasms"])
        assert full_view.is_usable_for(cardinality_spec(), ctx)

    def test_uncovered_context_not_usable(self, full_view):
        ctx = ContextSpecification(["SomethingElse"])
        assert not full_view.is_usable_for(cardinality_spec(), ctx)

    def test_missing_parameter_column_not_usable(self, handmade_table):
        view = materialize_view(handmade_table, {"Diseases"}, df_terms=["cancer"])
        ctx = ContextSpecification(["Diseases"])
        assert view.is_usable_for(df_spec("cancer"), ctx)
        assert not view.is_usable_for(df_spec("leukemia"), ctx)
        assert not view.is_usable_for(tc_spec("cancer"), ctx)

    def test_answer_raises_when_unusable(self, full_view):
        with pytest.raises(ViewNotUsableError):
            full_view.answer(
                cardinality_spec(), ContextSpecification(["Missing"])
            )


class TestAnswers:
    """View answers must equal ground-truth aggregations (Section 4.1)."""

    @pytest.mark.parametrize(
        "predicates",
        [
            ["Diseases"],
            ["DigestiveSystem"],
            ["Neoplasms"],
            ["DigestiveSystem", "Neoplasms"],
            ["Diseases", "Blood"],
        ],
    )
    def test_all_statistics_match_plan(
        self, full_view, handmade_engine, predicates
    ):
        ctx = ContextSpecification(predicates)
        truth = handmade_engine.context_statistics(ctx, ["leukemia", "pancreas"])
        assert full_view.answer(cardinality_spec(), ctx) == truth.cardinality
        assert full_view.answer(total_length_spec(), ctx) == truth.total_length
        assert full_view.answer(df_spec("leukemia"), ctx) == truth.df_for("leukemia")
        assert full_view.answer(df_spec("pancrea"), ctx) == truth.df_for("pancrea")

    def test_answer_many_single_scan(self, full_view):
        ctx = ContextSpecification(["DigestiveSystem"])
        counter = CostCounter()
        specs = [cardinality_spec(), total_length_spec(), df_spec("leukemia")]
        values = full_view.answer_many(specs, ctx, counter)
        assert len(values) == 3
        # One scan of the view, not one per spec.
        assert counter.entries_scanned == full_view.size

    def test_tc_column(self, full_view, handmade_engine):
        ctx = ContextSpecification(["Neoplasms"])
        # C3 has leukemia x4, C5 has leukemia x1, C1 none => tc = 5.
        assert full_view.answer(tc_spec("leukemia"), ctx) == 5


class TestStorage:
    def test_parameter_columns_counted(self, handmade_table):
        view = materialize_view(
            handmade_table, {"Diseases"}, df_terms=["a", "b"], tc_terms=["a"]
        )
        assert view.num_parameter_columns == 2 + 2 + 1

    def test_storage_scales_with_tuples(self, handmade_table):
        small = materialize_view(handmade_table, {"Diseases"})
        large = materialize_view(
            handmade_table, {"Diseases", "DigestiveSystem", "Neoplasms", "Blood"}
        )
        assert large.storage_bytes() > small.storage_bytes()


class TestCatalog:
    def test_picks_minimal_usable_view(self, handmade_table):
        big = materialize_view(
            handmade_table, {"Diseases", "DigestiveSystem", "Neoplasms"}
        )
        small = materialize_view(handmade_table, {"Diseases", "DigestiveSystem"})
        catalog = ViewCatalog([big, small])
        ctx = ContextSpecification(["DigestiveSystem"])
        chosen = catalog.find_usable(cardinality_spec(), ctx)
        assert chosen is small  # fewer tuples

    def test_resolve_splits_resolved_and_unresolved(self, handmade_table):
        view = materialize_view(handmade_table, {"Diseases"}, df_terms=["cancer"])
        catalog = ViewCatalog([view])
        ctx = ContextSpecification(["Diseases"])
        values, unresolved, used = catalog.resolve(
            [cardinality_spec(), df_spec("cancer"), df_spec("leukemia")], ctx
        )
        assert cardinality_spec() in values
        assert df_spec("cancer") in values
        assert unresolved == [df_spec("leukemia")]
        assert len(used) == 1

    def test_resolve_empty_catalog(self):
        catalog = ViewCatalog()
        ctx = ContextSpecification(["Diseases"])
        values, unresolved, used = catalog.resolve([cardinality_spec()], ctx)
        assert not values and not used
        assert unresolved == [cardinality_spec()]

    def test_stats(self, handmade_table):
        views = [
            materialize_view(handmade_table, {"Diseases"}),
            materialize_view(handmade_table, {"Neoplasms", "Blood"}),
        ]
        stats = ViewCatalog(views).stats()
        assert stats.num_views == 2
        assert stats.total_tuples == sum(v.size for v in views)
        assert stats.max_tuples == max(v.size for v in views)
        assert stats.total_storage_bytes > 0

    def test_empty_stats(self):
        stats = ViewCatalog().stats()
        assert stats.num_views == 0
        assert stats.total_storage_bytes == 0


class TestViewAnswerProperty:
    """Property: for random contexts over the synthetic corpus, a covering
    view answers exactly what the straightforward plan computes."""

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_view_equals_plan(self, data, corpus_table, corpus_index, corpus_engine):
        predicates = sorted(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
            reverse=True,
        )[:6]
        subset = data.draw(
            st.lists(st.sampled_from(predicates), min_size=1, max_size=3, unique=True)
        )
        view = materialize_view(corpus_table, predicates, df_terms=["therapy"])
        ctx = ContextSpecification(subset)
        truth = corpus_engine.context_statistics(ctx, ["therapy"])
        assert view.answer(cardinality_spec(), ctx) == truth.cardinality
        assert view.answer(total_length_spec(), ctx) == truth.total_length
        assert view.answer(df_spec("therapy"), ctx) == truth.df_for("therapy")


class TestVectorizedAnswerMany:
    """The columnar answer_many fast path must be invisible: same values,
    same CostCounter charges as the tuple-scan reference, on every path
    (numpy, python fallback, post-maintenance rebuild)."""

    CONTEXTS = [
        ["Diseases"],
        ["DigestiveSystem", "Neoplasms"],
        ["Diseases", "Blood"],
        ["Nutrition"],
    ]

    def _specs(self, view):
        specs = [cardinality_spec(), total_length_spec()]
        specs += [df_spec(t) for t in sorted(view.df_terms)[:3]]
        specs += [tc_spec(t) for t in sorted(view.tc_terms)]
        return specs

    def assert_matches_reference(self, view):
        for predicates in self.CONTEXTS:
            ctx = ContextSpecification(predicates)
            fast_counter, ref_counter = CostCounter(), CostCounter()
            fast = view.answer_many(self._specs(view), ctx, fast_counter)
            ref = view._answer_many_reference(
                self._specs(view), ctx, ref_counter
            )
            assert fast == ref
            assert fast_counter.entries_scanned == ref_counter.entries_scanned
            assert fast_counter.model_cost == ref_counter.model_cost

    def test_numpy_path(self, full_view):
        self.assert_matches_reference(full_view)
        if __import__("repro.views.view", fromlist=["_np"])._np is not None:
            assert full_view._columns.use_numpy

    def test_python_fallback(self, full_view, monkeypatch):
        import repro.views.view as view_mod

        monkeypatch.setattr(view_mod, "_np", None)
        full_view.invalidate_columns()
        try:
            self.assert_matches_reference(full_view)
            assert not full_view._columns.use_numpy
        finally:
            full_view.invalidate_columns()  # rebuild with numpy next time

    def test_wide_keyword_sets_skip_numpy(self, handmade_table):
        import repro.views.view as view_mod

        view = materialize_view(
            handmade_table,
            {"Diseases"} | {f"Pad{i}" for i in range(70)},
            df_terms=["leukemia"],
        )
        ctx = ContextSpecification(["Diseases"])
        fast = view.answer_many([cardinality_spec()], ctx)
        assert fast == view._answer_many_reference([cardinality_spec()], ctx)
        if view_mod._np is not None:
            assert not view._columns.use_numpy  # >63 keyword bits

    def test_maintenance_invalidates_columns(self, handmade_table):
        from repro.views.maintenance import apply_document

        view = materialize_view(
            handmade_table,
            {"Diseases", "Neoplasms"},
            df_terms=["leukemia"],
            tc_terms=["leukemia"],
        )
        ctx = ContextSpecification(["Diseases"])
        before = view.answer_many(self._specs(view), ctx)
        assert view._columns is not None  # columns built and cached
        apply_document(
            view,
            frozenset({"Diseases"}),
            length=12,
            term_frequencies={"leukemia": 3},
        )
        after = view.answer_many(self._specs(view), ctx)
        assert after == view._answer_many_reference(self._specs(view), ctx)
        assert after != before  # the insert is visible through the cache
