"""Unit tests for the query model (Section 2.1)."""

import pytest

from repro.core.query import (
    ContextQuery,
    ContextSpecification,
    KeywordQuery,
    parse_query,
)
from repro.errors import QueryError


class TestKeywordQuery:
    def test_basic(self):
        q = KeywordQuery(["pancreas", "leukemia"])
        assert q.keywords == ("pancreas", "leukemia")
        assert len(q) == 2
        assert str(q) == "pancreas leukemia"

    def test_duplicates_preserved(self):
        # tq(w, Q) counts repetitions, so the keyword list keeps them.
        q = KeywordQuery(["a", "a", "b"])
        assert q.keywords == ("a", "a", "b")

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            KeywordQuery([])
        with pytest.raises(QueryError):
            KeywordQuery(["  ", ""])


class TestContextSpecification:
    def test_sorted_and_deduplicated(self):
        p = ContextSpecification(["Neoplasms", "Anatomy", "Neoplasms"])
        assert p.predicates == ("Anatomy", "Neoplasms")

    def test_is_covered_by(self):
        p = ContextSpecification(["a", "b"])
        assert p.is_covered_by({"a", "b", "c"})
        assert not p.is_covered_by({"a", "c"})

    def test_as_set(self):
        assert ContextSpecification(["x"]).as_set() == frozenset({"x"})

    def test_empty_raises(self):
        with pytest.raises(QueryError):
            ContextSpecification([])


class TestContextQuery:
    def test_accessors(self):
        q = ContextQuery(
            KeywordQuery(["w1", "w2"]), ContextSpecification(["m2", "m1"])
        )
        assert q.keywords == ("w1", "w2")
        assert q.predicates == ("m1", "m2")
        assert str(q) == "w1 w2 | m1 ∧ m2"

    def test_conventional_equivalent(self):
        q = ContextQuery(KeywordQuery(["w"]), ContextSpecification(["m"]))
        qt = q.conventional_equivalent()
        assert set(qt.keywords) == {"w", "m"}


class TestParseQuery:
    def test_roundtrip(self):
        q = parse_query("pancreas leukemia | DigestiveSystem Neoplasms")
        assert q.keywords == ("pancreas", "leukemia")
        assert q.predicates == ("DigestiveSystem", "Neoplasms")

    def test_missing_pipe_raises(self):
        with pytest.raises(QueryError):
            parse_query("no context here")

    def test_double_pipe_raises(self):
        with pytest.raises(QueryError):
            parse_query("a | b | c")

    def test_empty_side_raises(self):
        with pytest.raises(QueryError):
            parse_query("keywords | ")
        with pytest.raises(QueryError):
            parse_query(" | context")
