"""Unit tests for the statistics framework (Table 1)."""

import pytest

from repro.core.statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
    cardinality_spec,
    df_spec,
    tc_spec,
    total_length_spec,
)
from repro.errors import QueryError


class TestStatisticSpec:
    def test_term_kinds_require_term(self):
        with pytest.raises(QueryError):
            StatisticSpec(DOC_FREQUENCY)

    def test_termless_kinds_reject_term(self):
        with pytest.raises(QueryError):
            StatisticSpec(CARDINALITY, "w")

    def test_unknown_kind(self):
        with pytest.raises(QueryError):
            StatisticSpec("bogus")

    def test_column_names(self):
        assert cardinality_spec().column_name() == "cardinality"
        assert df_spec("w").column_name() == "df:w"
        assert tc_spec("w").column_name() == "tc:w"

    def test_hashable_and_equal(self):
        assert df_spec("w") == df_spec("w")
        assert len({df_spec("w"), df_spec("w"), tc_spec("w")}) == 2


class TestQueryStatistics:
    def test_from_keywords(self):
        qs = QueryStatistics.from_keywords(["a", "b", "a"])
        assert qs.tq("a") == 2
        assert qs.tq("b") == 1
        assert qs.tq("c") == 0
        assert qs.length == 3
        assert qs.unique_terms == 2


class TestDocumentStatistics:
    def test_tf(self):
        ds = DocumentStatistics(length=10, unique_terms=7, term_frequencies={"a": 3})
        assert ds.tf("a") == 3
        assert ds.tf("b") == 0


class TestCollectionStatistics:
    def test_avgdl(self):
        cs = CollectionStatistics(cardinality=4, total_length=40, df={})
        assert cs.avgdl == 10.0

    def test_avgdl_empty_collection_raises(self):
        cs = CollectionStatistics(cardinality=0, total_length=0, df={})
        with pytest.raises(QueryError):
            _ = cs.avgdl

    def test_df_tc_defaults(self):
        cs = CollectionStatistics(cardinality=1, total_length=1, df={"a": 1})
        assert cs.df_for("a") == 1
        assert cs.df_for("zzz") == 0
        assert cs.tc_for("a") == 0

    def test_from_values_roundtrip(self):
        values = {
            cardinality_spec(): 12,
            total_length_spec(): 300,
            df_spec("w1"): 4,
            df_spec("w2"): 2,
            tc_spec("w1"): 9,
        }
        cs = CollectionStatistics.from_values(values)
        assert cs.cardinality == 12
        assert cs.total_length == 300
        assert cs.df == {"w1": 4, "w2": 2}
        assert cs.tc == {"w1": 9}
        assert cs.unique_terms is None
