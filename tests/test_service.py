"""Tests for the query service layer (repro.service).

Covers the wire protocol, the serving cache (including the epoch guard
that makes stale results unreachable after index mutations), admission
control with load shedding and degradation, the coalescer's flush
policies, deadline handling (expired requests are skipped before any
engine work), coalesced-vs-serial bit-identity, and the TCP server end
to end via :class:`ServerThread` + :class:`ServiceClient`.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import ContextSearchEngine, Document, build_index
from repro.core.report import CostCounter, ExecutionReport, ShardReport
from repro.errors import QueryError
from repro.service import (
    AdmissionController,
    Coalescer,
    ProtocolError,
    QueryService,
    ResultCache,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    Ticket,
    decode_request,
    encode_response,
    percentile,
    run_load,
)
from repro.service.protocol import Request

from .conftest import HANDMADE_DOCS

EXTRA_DOCS = [
    Document(
        "X1",
        {
            "title": "pancreas pancreas pancreas imaging",
            "abstract": "pancreas imaging studies",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "X2",
        {
            "title": "leukemia markers in digestion",
            "abstract": "leukemia and pancreas overlap",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
]


@pytest.fixture()
def fresh_engine() -> ContextSearchEngine:
    """A mutable (non-session) engine for mutation tests."""
    return ContextSearchEngine(build_index(HANDMADE_DOCS))


def make_service(engine, **overrides) -> QueryService:
    config = ServiceConfig(**overrides)
    return QueryService(engine, config)


def run_async(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_decode_minimal_query(self):
        req = decode_request(b'{"query": "pancreas | DigestiveSystem"}\n')
        assert req.op == "query"
        assert req.query == "pancreas | DigestiveSystem"
        assert req.mode == "context" and req.path == "auto"

    def test_decode_full_query(self):
        req = decode_request(
            b'{"op": "query", "query": "q | p", "top_k": 3, "mode": '
            b'"conventional", "path": "straightforward", "timeout_ms": 50, "id": 7}'
        )
        assert req.top_k == 3
        assert req.mode == "conventional"
        assert req.path == "straightforward"
        assert req.timeout_ms == 50
        assert req.id == 7

    @pytest.mark.parametrize(
        "line",
        [
            b"not json",
            b'{"op": "nope"}',
            b'{"op": "query"}',  # missing query
            b'{"query": 42}',
            b'{"query": "q | p", "mode": "bogus"}',
            b'{"query": "q | p", "path": "bogus"}',
            b'{"query": "q | p", "top_k": 0}',
            b'{"query": "q | p", "timeout_ms": -1}',
            b"[1, 2]",
        ],
    )
    def test_decode_rejects(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_decode_rejects_oversized_line(self):
        line = b'{"query": "' + b"x" * (1 << 21) + b'"}'
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_healthz_and_metrics_ops(self):
        assert decode_request(b'{"op": "healthz"}').op == "healthz"
        assert decode_request(b'{"op": "metrics"}').op == "metrics"

    def test_encode_response_is_one_json_line(self):
        encoded = encode_response({"status": "ok", "id": 3})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1


# ---------------------------------------------------------------------------
# Report wire round-trip (satellite: to_dict/from_dict)


class TestReportRoundTrip:
    def test_flat_report_round_trip(self, handmade_engine):
        report = handmade_engine.search(
            "pancreas | DigestiveSystem", top_k=3
        ).report
        payload = report.to_dict()
        rebuilt = ExecutionReport.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.path == report.path
        assert rebuilt.context_size == report.context_size
        assert rebuilt.counter.entries_scanned == report.counter.entries_scanned
        assert rebuilt.predicted_cost == report.predicted_cost

    def test_round_trip_preserves_path(self, handmade_engine, handmade_index):
        report = handmade_engine.search(
            "pancreas | DigestiveSystem", top_k=3, path="straightforward"
        ).report
        rebuilt = ExecutionReport.from_dict(report.to_dict())
        assert rebuilt.resolution.path == "straightforward"

    def test_shard_report_round_trip(self):
        shard = ShardReport(
            shard_id=2,
            path="views",
            predicted_cost=42,
            result_size=7,
            counter=CostCounter(entries_scanned=13, segments_skipped=2),
        )
        rebuilt = ShardReport.from_dict(shard.to_dict())
        assert rebuilt.to_dict() == shard.to_dict()
        assert rebuilt.counter.entries_scanned == 13

    def test_payload_is_json_serialisable(self, handmade_engine):
        import json

        report = handmade_engine.search("pancreas | DigestiveSystem").report
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()


# ---------------------------------------------------------------------------
# Result cache


class TestResultCache:
    def test_hit_and_miss(self):
        cache = ResultCache(max_entries=4)
        key = ResultCache.key("pancreas | DigestiveSystem", "context", 5)
        assert cache.get(key, epoch=0) is None
        cache.put(key, 0, {"hits": []})
        assert cache.get(key, epoch=0) == {"hits": []}
        assert cache.metrics.hits == 1 and cache.metrics.misses == 1

    def test_key_canonicalises_predicate_order_not_keyword_order(self):
        a = ResultCache.key("pancreas leukemia | Neoplasms Diseases", "context", 5)
        b = ResultCache.key("pancreas leukemia | Diseases Neoplasms", "context", 5)
        c = ResultCache.key("leukemia pancreas | Diseases Neoplasms", "context", 5)
        assert a == b  # predicates are a set: order canonicalised
        assert a != c  # keyword order preserved (float summation order)

    def test_key_rejects_unparseable(self):
        with pytest.raises(QueryError):
            ResultCache.key("no separator here", "context", 5)

    def test_epoch_mismatch_drops_entry(self):
        cache = ResultCache()
        key = ResultCache.key("pancreas | Diseases", "context", 5)
        cache.put(key, 0, {"hits": ["old"]})
        assert cache.get(key, epoch=1) is None
        assert cache.metrics.stale_drops == 1
        assert len(cache) == 0  # reclaimed, not retained

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        k = [ResultCache.key(f"w{i} | Diseases", "context", 5) for i in range(3)]
        cache.put(k[0], 0, {"n": 0})
        cache.put(k[1], 0, {"n": 1})
        cache.get(k[0], 0)  # refresh k0 → k1 is now LRU
        cache.put(k[2], 0, {"n": 2})
        assert cache.get(k[0], 0) is not None
        assert cache.get(k[1], 0) is None
        assert cache.metrics.evictions == 1

    def test_invalidate_clears(self):
        cache = ResultCache()
        key = ResultCache.key("pancreas | Diseases", "context", 5)
        cache.put(key, 0, {})
        cache.invalidate()
        assert len(cache) == 0 and cache.metrics.invalidations == 1


# ---------------------------------------------------------------------------
# Admission control and tickets


class TestAdmission:
    def test_sheds_past_cap(self):
        ctrl = AdmissionController(max_pending=2)
        assert ctrl.try_admit() and ctrl.try_admit()
        assert not ctrl.try_admit()
        assert ctrl.shed == 1 and ctrl.admitted == 2
        ctrl.release()
        assert ctrl.try_admit()

    def test_degrade_threshold(self):
        ctrl = AdmissionController(max_pending=4, degrade_depth=2)
        assert not ctrl.degraded
        ctrl.try_admit()
        assert not ctrl.degraded
        ctrl.try_admit()
        assert ctrl.degraded

    def test_degrade_depth_defaults_to_half(self):
        assert AdmissionController(max_pending=10).degrade_depth == 5

    def test_ticket_deadline(self):
        req = Request(op="query", query="q | p")
        live = Ticket(req, deadline=time.monotonic() + 60)
        assert not live.skip and live.remaining() > 0
        expired = Ticket(req, deadline=time.monotonic() - 0.001)
        assert expired.expired and expired.skip

    def test_ticket_cancel(self):
        ticket = Ticket(Request(op="query", query="q | p"))
        assert not ticket.skip
        ticket.cancel()
        assert ticket.cancelled and ticket.skip


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile([], 95) == 0.0

    def test_snapshot_counts(self):
        from repro.service import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.observe_request()
        metrics.observe_ok(0.01, cached=True)
        metrics.observe_request()
        metrics.observe_shed()
        metrics.observe_batch(4, "size")
        metrics.observe_batch(1, "timer")
        snap = metrics.snapshot(extra={"queue_depth": 0})
        assert snap["requests"] == 2 and snap["ok"] == 1 and snap["shed"] == 1
        assert snap["cache_hits"] == 1
        assert snap["batches"]["size_flushes"] == 1
        assert snap["batches"]["coalesced_requests"] == 4
        assert snap["queue_depth"] == 0


# ---------------------------------------------------------------------------
# Coalescer


class TestCoalescer:
    def test_flush_on_size(self):
        batches = []

        def execute(key, items):
            batches.append(list(items))
            return [item * 10 for item in items]

        async def drive():
            coalescer = Coalescer(execute, max_batch=3, max_wait_ms=10_000)
            results = await asyncio.gather(
                *(coalescer.submit("k", i) for i in (1, 2, 3))
            )
            await coalescer.drain()
            return results

        assert run_async(drive()) == [10, 20, 30]
        assert batches == [[1, 2, 3]]  # one batch, flushed by size

    def test_flush_on_timer(self):
        batches = []

        def execute(key, items):
            batches.append(list(items))
            return list(items)

        async def drive():
            coalescer = Coalescer(execute, max_batch=100, max_wait_ms=5.0)
            return await asyncio.gather(
                coalescer.submit("k", "a"), coalescer.submit("k", "b")
            )

        assert run_async(drive()) == ["a", "b"]
        assert batches == [["a", "b"]]  # under max_batch: the timer flushed

    def test_distinct_keys_do_not_coalesce(self):
        batches = []

        def execute(key, items):
            batches.append((key, list(items)))
            return list(items)

        async def drive():
            coalescer = Coalescer(execute, max_batch=10, max_wait_ms=2.0)
            await asyncio.gather(
                coalescer.submit("k1", 1), coalescer.submit("k2", 2)
            )
            await coalescer.drain()

        run_async(drive())
        assert sorted(batches) == [("k1", [1]), ("k2", [2])]

    def test_executor_failure_fans_out(self):
        def execute(key, items):
            raise RuntimeError("boom")

        async def drive():
            coalescer = Coalescer(execute, max_batch=2, max_wait_ms=1.0)
            results = await asyncio.gather(
                coalescer.submit("k", 1),
                coalescer.submit("k", 2),
                return_exceptions=True,
            )
            await coalescer.drain()
            return results

        results = run_async(drive())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_wrong_result_count_is_an_error(self):
        def execute(key, items):
            return [1]  # always one result, whatever was asked

        async def drive():
            coalescer = Coalescer(execute, max_batch=2, max_wait_ms=1.0)
            results = await asyncio.gather(
                coalescer.submit("k", 1),
                coalescer.submit("k", 2),
                return_exceptions=True,
            )
            await coalescer.drain()
            return results

        assert all(isinstance(r, RuntimeError) for r in run_async(drive()))

    def test_max_batch_one_dispatches_immediately(self):
        batches = []

        def execute(key, items):
            batches.append(list(items))
            return list(items)

        async def drive():
            coalescer = Coalescer(execute, max_batch=1, max_wait_ms=10_000)
            await coalescer.submit("k", "only")
            await coalescer.drain()

        run_async(drive())
        assert batches == [["only"]]


# ---------------------------------------------------------------------------
# QueryService (transport-free)


def query_request(text, top_k=5, **kwargs) -> Request:
    return Request(op="query", query=text, top_k=top_k, **kwargs)


class TestQueryService:
    def test_ok_response_shape(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            response = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", top_k=2)
                )
            )
        finally:
            service.close()
        assert response["status"] == "ok"
        assert [hit["doc"] for hit in response["hits"]] == ["C1", "C4"]
        assert response["mode"] == "context"
        assert "elapsed_ms" in response

    def test_engine_error_becomes_error_response(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            response = run_async(
                service.handle_request(query_request("pancreas | NoSuchTag"))
            )
        finally:
            service.close()
        assert response["status"] == "error"
        assert "context" in response["error"].lower() or response["error"]

    def test_cache_hit_on_repeat(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            first = run_async(
                service.handle_request(query_request("pancreas | DigestiveSystem"))
            )
            second = run_async(
                service.handle_request(query_request("pancreas | DigestiveSystem"))
            )
        finally:
            service.close()
        assert "cached" not in first
        assert second["cached"] is True
        assert second["hits"] == first["hits"]
        assert service.result_cache.metrics.hits == 1

    def test_cache_respects_predicate_canonicalisation(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            run_async(
                service.handle_request(
                    query_request("pancreas | Diseases DigestiveSystem")
                )
            )
            second = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem Diseases")
                )
            )
        finally:
            service.close()
        assert second["cached"] is True

    def test_coalesced_matches_serial(self, handmade_engine):
        """Bit-identity: one coalesced batch == per-query serial answers."""
        queries = [
            "pancreas | DigestiveSystem",
            "leukemia | DigestiveSystem",
            "pancreas leukemia | DigestiveSystem",
            "leukemia | Neoplasms",
        ]
        service = make_service(
            handmade_engine, max_batch=len(queries), max_wait_ms=50.0,
            cache_enabled=False,
        )
        async def drive():
            return await asyncio.gather(
                *(
                    service.handle_request(query_request(q, top_k=4))
                    for q in queries
                )
            )

        try:
            responses = run_async(drive())
        finally:
            service.close()
        assert service.metrics.batches >= 1
        assert service.metrics.coalesced >= 2  # something actually batched
        for query, response in zip(queries, responses):
            serial = handmade_engine.search(query, top_k=4)
            assert response["status"] == "ok"
            assert [hit["doc"] for hit in response["hits"]] == serial.external_ids()
            assert [hit["score"] for hit in response["hits"]] == [
                hit.score for hit in serial.hits
            ]

    def test_shed_when_queue_full(self, handmade_engine):
        service = make_service(handmade_engine, max_pending=1)
        try:
            assert service.admission.try_admit()  # occupy the only slot
            response = run_async(
                service.handle_request(query_request("pancreas | Diseases"))
            )
        finally:
            service.admission.release()
            service.close()
        assert response["status"] == "shed"
        assert "overloaded" in response["error"]
        assert service.metrics.shed == 1

    def test_degrades_to_forced_path_when_deep(self, handmade_engine):
        service = make_service(
            handmade_engine, max_pending=8, degrade_depth=1, cache_enabled=False
        )
        try:
            # Any admitted request now sees depth >= degrade_depth.
            response = run_async(
                service.handle_request(query_request("pancreas | DigestiveSystem"))
            )
        finally:
            service.close()
        assert response["status"] == "ok"
        assert response["degraded"] is True
        assert response["report"]["resolution"]["path"] == "straightforward"
        # Degradation must not change the answer.
        serial = handmade_engine.search("pancreas | DigestiveSystem", top_k=5)
        assert [h["doc"] for h in response["hits"]] == serial.external_ids()

    def test_deadline_expired_skipped_before_execution(self, handmade_engine):
        """A request whose deadline passes while queued never reaches the engine."""
        service = make_service(handmade_engine, max_batch=64, max_wait_ms=200.0)
        executed = []
        original = service._execute_batch

        def recording(key, tickets):
            executed.extend(
                t.request.query for t in tickets if not t.skip
            )
            return original(key, tickets)

        service._execute_batch = recording

        async def drive():
            response = await service.handle_request(
                query_request("pancreas | DigestiveSystem", timeout_ms=5)
            )
            # Let the 200ms batch window elapse and the batch dispatch.
            await asyncio.sleep(0.25)
            await service.coalescer.drain()
            return response

        try:
            response = run_async(drive())
        finally:
            service.close()
        assert response["status"] == "timeout"
        assert "deadline" in response["error"]
        assert executed == []  # skipped before execution, no engine work
        assert service.metrics.timeouts == 1

    def test_healthz(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            health = run_async(service.handle_request(Request(op="healthz")))
        finally:
            service.close()
        assert health["status"] == "ok"
        assert health["engine"] == "flat"
        assert health["num_docs"] == len(HANDMADE_DOCS)
        assert health["epoch"] == 0

    def test_metrics_op(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            run_async(
                service.handle_request(query_request("pancreas | Diseases"))
            )
            snap = run_async(service.handle_request(Request(op="metrics")))
        finally:
            service.close()
        assert snap["status"] == "ok"
        assert snap["requests"] == 1 and snap["ok"] == 1
        assert snap["cache"]["entries"] == 1
        assert snap["latency_ms"]["count"] == 1

    def test_mutation_invalidates_served_results(self, fresh_engine):
        """Satellite regression: mutate-then-requery can never serve stale."""
        service = make_service(fresh_engine)
        try:
            before = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", top_k=6)
                )
            )
            cached = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", top_k=6)
                )
            )
            assert cached["cached"] is True

            fresh_engine.index.append_documents(EXTRA_DOCS)
            assert service.epoch == 1

            after = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", top_k=6)
                )
            )
        finally:
            service.close()
        assert "cached" not in after  # the epoch guard dropped the entry
        assert service.result_cache.metrics.stale_drops == 1
        docs = [hit["doc"] for hit in after["hits"]]
        assert "X1" in docs  # the new document is ranked
        assert after["report"]["context_size"] == before["report"]["context_size"] + 2
        # And it matches a from-scratch engine over the same collection.
        fresh = ContextSearchEngine(build_index(HANDMADE_DOCS + EXTRA_DOCS))
        assert docs == fresh.search(
            "pancreas | DigestiveSystem", top_k=6
        ).external_ids()

    def test_disjunctive_and_conventional_modes(self, handmade_engine):
        service = make_service(handmade_engine)
        try:
            conv = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", mode="conventional")
                )
            )
            disj = run_async(
                service.handle_request(
                    query_request("pancreas | DigestiveSystem", mode="disjunctive")
                )
            )
        finally:
            service.close()
        assert conv["status"] == "ok" and disj["status"] == "ok"
        assert conv["mode"] == "conventional"
        assert disj["mode"] == "disjunctive"


class TestShardedService:
    def test_sharded_engine_served(self, corpus, corpus_index, corpus_engine):
        from repro.core.sharded_engine import ShardedEngine
        from repro.data.workloads import generate_performance_workload
        from repro.index.sharded import ShardedInvertedIndex

        workload = generate_performance_workload(
            corpus,
            corpus_index,
            t_c=max(corpus_index.num_docs // 50, 10),
            kind="large",
            keyword_counts=(2,),
            queries_per_count=2,
            seed=5,
        )
        queries = [str(wq.query) for wq in workload.all_queries()][:2]
        assert queries
        sharded = ShardedInvertedIndex.from_index(
            corpus_index, 3, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="serial") as engine:
            service = make_service(engine)
            try:
                responses = [
                    run_async(
                        service.handle_request(query_request(q, top_k=10))
                    )
                    for q in queries
                ]
                health = run_async(service.handle_request(Request(op="healthz")))
            finally:
                service.close()
        assert health["engine"] == "sharded"
        for query, response in zip(queries, responses):
            assert response["status"] == "ok"
            serial = corpus_engine.search(query, top_k=10)
            assert [h["doc"] for h in response["hits"]] == serial.external_ids()


# ---------------------------------------------------------------------------
# TCP server end to end


class TestServerEndToEnd:
    def test_query_healthz_metrics_over_socket(self, handmade_engine):
        with ServerThread(handmade_engine, ServiceConfig(max_wait_ms=1.0)) as st:
            host, port = st.address
            with ServiceClient(host, port) as client:
                health = client.healthz()
                assert health["status"] == "ok"
                assert health["num_docs"] == len(HANDMADE_DOCS)

                response = client.query("pancreas | DigestiveSystem", top_k=2)
                assert response["status"] == "ok"
                assert [h["doc"] for h in response["hits"]] == ["C1", "C4"]

                bad = client.query("no separator")
                assert bad["status"] == "error"

                malformed = client.request({"op": "query"})
                assert malformed["status"] == "error"

                snap = client.metrics()
                assert snap["requests"] >= 2

    def test_request_ids_round_trip(self, handmade_engine):
        with ServerThread(handmade_engine) as st:
            host, port = st.address
            with ServiceClient(host, port) as client:
                response = client.query("pancreas | Diseases", id=41)
                assert response["id"] == 41

    def test_concurrent_clients_coalesce_and_match_serial(self, handmade_engine):
        queries = [
            "pancreas | DigestiveSystem",
            "leukemia | DigestiveSystem",
            "leukemia | Neoplasms",
            "pancreas leukemia | DigestiveSystem",
        ] * 3
        config = ServiceConfig(max_wait_ms=20.0, max_batch=12, cache_enabled=False)
        with ServerThread(handmade_engine, config) as st:
            report = run_load(
                st.address, queries, threads=4, top_k=4, keep_responses=True
            )
            assert report.ok == len(queries) and report.errors == 0
            coalesced = st.service.metrics.coalesced
        assert coalesced >= 2  # concurrent requests shared batches
        for i, query in enumerate(queries):
            serial = handmade_engine.search(query, top_k=4)
            got = [h["doc"] for h in report.responses[i]["hits"]]
            assert got == serial.external_ids()

    def test_graceful_shutdown_under_traffic(self, handmade_engine):
        st = ServerThread(handmade_engine, ServiceConfig(max_wait_ms=5.0))
        host, port = st.start()

        stop_flag = threading.Event()
        errors = []

        def chatter():
            try:
                with ServiceClient(host, port) as client:
                    while not stop_flag.is_set():
                        client.query("pancreas | DigestiveSystem", top_k=3)
            except (ConnectionError, OSError, ValueError):
                pass  # the server went away mid-request: expected at shutdown
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=chatter, daemon=True)
        thread.start()
        time.sleep(0.2)
        stop_flag.set()
        st.stop()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert errors == []
        # The port is released: a fresh connect must fail.
        import socket

        with pytest.raises(OSError):
            probe = socket.create_connection((host, port), timeout=0.5)
            probe.close()

    def test_start_error_is_raised_in_caller(self, handmade_engine):
        import socket

        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        port = holder.getsockname()[1]
        try:
            st = ServerThread(
                handmade_engine, ServiceConfig(host="127.0.0.1", port=port)
            )
            with pytest.raises(OSError):
                st.start()
        finally:
            holder.close()
