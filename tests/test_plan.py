"""Tests for the straightforward execution plan (Figure 3) against ground truth."""

import pytest

from repro.core.plan import StraightforwardPlan
from repro.core.query import ContextQuery, ContextSpecification, KeywordQuery
from repro.core.statistics import (
    StatisticSpec,
    UNIQUE_TERMS,
    cardinality_spec,
    df_spec,
    tc_spec,
    total_length_spec,
)
from repro.errors import EmptyContextError


def brute_force_context(index, predicates):
    """Ground truth: scan every stored document."""
    out = []
    for doc in index.store:
        mesh = set(doc.field_tokens[index.predicate_field])
        if all(m in mesh for m in predicates):
            out.append(doc)
    return out


def query(keywords, predicates):
    return ContextQuery(
        KeywordQuery(keywords), ContextSpecification(predicates)
    )


ALL_SPECS = lambda w: [
    cardinality_spec(),
    total_length_spec(),
    df_spec(w),
    tc_spec(w),
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "keywords,predicates",
        [
            (["leukemia"], ["DigestiveSystem"]),
            (["pancrea"], ["Diseases"]),
            (["cancer"], ["Neoplasms"]),
            (["outcome"], ["Diseases", "DigestiveSystem"]),
        ],
    )
    def test_statistics_match_scan(self, handmade_index, keywords, predicates):
        plan = StraightforwardPlan(handmade_index)
        term = keywords[0]
        execution = plan.execute(query(keywords, predicates), ALL_SPECS(term))

        docs = brute_force_context(handmade_index, predicates)
        values = execution.statistic_values
        assert values[cardinality_spec()] == len(docs)
        assert values[total_length_spec()] == sum(d.length for d in docs)
        assert values[df_spec(term)] == sum(
            1
            for d in docs
            if term in d.field_tokens["title"] + d.field_tokens["abstract"]
        )
        assert values[tc_spec(term)] == sum(
            (d.field_tokens["title"] + d.field_tokens["abstract"]).count(term)
            for d in docs
        )

    def test_result_set_matches_semantics(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        execution = plan.execute(
            query(["leukemia"], ["DigestiveSystem"]), [cardinality_spec()]
        )
        externals = [
            handmade_index.store.get(i).external_id for i in execution.result_ids
        ]
        assert externals == ["C2"]

    def test_multi_keyword_conjunction(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        execution = plan.execute(
            query(["pancrea", "transplant"], ["Diseases"]),
            [cardinality_spec(), df_spec("pancrea"), df_spec("transplant")],
        )
        externals = [
            handmade_index.store.get(i).external_id for i in execution.result_ids
        ]
        assert externals == ["C1"]

    def test_unique_terms_statistic(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        spec = StatisticSpec(UNIQUE_TERMS)
        execution = plan.execute(query(["leukemia"], ["Neoplasms"]), [spec])
        docs = brute_force_context(handmade_index, ["Neoplasms"])
        expected = len(
            {
                t
                for d in docs
                for t in d.field_tokens["title"] + d.field_tokens["abstract"]
            }
        )
        assert execution.statistic_values[spec] == expected


class TestEdgeCases:
    def test_empty_context_raises(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        with pytest.raises(EmptyContextError):
            plan.execute(query(["leukemia"], ["NoSuchTerm"]), [cardinality_spec()])

    def test_keyword_absent_from_context(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        execution = plan.execute(
            query(["fiber"], ["Neoplasms"]), [df_spec("fiber"), cardinality_spec()]
        )
        assert execution.statistic_values[df_spec("fiber")] == 0
        assert execution.result_ids == []

    def test_counter_reports_work(self, handmade_index):
        plan = StraightforwardPlan(handmade_index)
        execution = plan.execute(
            query(["leukemia"], ["Diseases"]), [cardinality_spec()]
        )
        assert execution.counter.model_cost > 0
        assert execution.context_size == 6


class TestOnSyntheticCorpus:
    def test_statistics_match_scan_at_scale(self, corpus_index):
        plan = StraightforwardPlan(corpus_index)
        predicates = [
            max(
                corpus_index.predicate_vocabulary,
                key=corpus_index.predicate_frequency,
            )
        ]
        term = max(
            list(corpus_index.vocabulary)[:200],
            key=corpus_index.document_frequency,
        )
        execution = plan.execute(query([term], predicates), ALL_SPECS(term))
        docs = brute_force_context(corpus_index, predicates)
        assert execution.statistic_values[cardinality_spec()] == len(docs)
        assert execution.statistic_values[total_length_spec()] == sum(
            d.length for d in docs
        )
