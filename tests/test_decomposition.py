"""Tests for the graph-decomposition schemes and recursive selection (Sec 5.2)."""

import pytest

from repro.errors import SelectionError
from repro.selection.decomposition import (
    apply_separator,
    decomposition_select,
)
from repro.selection.kag import KeywordAssociationGraph
from repro.selection.mining import TransactionDatabase
from repro.selection.separator import Separator, find_balanced_separator


@pytest.fixture
def bridged_graph():
    """Figure 4/5's shape: m1, m2 in the separator, m3 on the S2 side."""
    edges = [
        ("m1", "m2", 10),
        ("m1", "m3", 10),
        ("m2", "m3", 10),
        ("m1", "a", 10),
        ("m2", "a", 10),
        ("a", "b", 10),
    ]
    return KeywordAssociationGraph.from_edges(edges)


class TestApplySeparator:
    def test_scheme1_replicates_s0_edges(self, bridged_graph):
        sep = Separator(
            s1=frozenset({"a", "b"}),
            s2=frozenset({"m3"}),
            s0=frozenset({"m1", "m2"}),
        )
        g1, g2 = apply_separator(bridged_graph, sep, t_c=5, replicate="always")
        assert set(g1.vertices) == {"a", "b", "m1", "m2"}
        assert set(g2.vertices) == {"m1", "m2", "m3"}
        # Scheme 1 (Figure 4): the S0-S0 edge appears in BOTH subgraphs.
        assert g1.has_edge("m1", "m2")
        assert g2.has_edge("m1", "m2")

    def test_scheme2_drops_low_support_s0_edges(self, bridged_graph):
        """Figure 5: when the clique {m1, m2, m3} has low support, the
        S0-S0 edge is NOT replicated into G2."""
        sep = Separator(
            s1=frozenset({"a", "b"}),
            s2=frozenset({"m3"}),
            s0=frozenset({"m1", "m2"}),
        )
        g1, g2 = apply_separator(
            bridged_graph,
            sep,
            t_c=5,
            replicate="support",
            support_fn=lambda items: 0,  # all triangles below T_C
        )
        assert g1.has_edge("m1", "m2")  # always kept in G1
        assert not g2.has_edge("m1", "m2")

    def test_scheme2_keeps_high_support_s0_edges(self, bridged_graph):
        sep = Separator(
            s1=frozenset({"a", "b"}),
            s2=frozenset({"m3"}),
            s0=frozenset({"m1", "m2"}),
        )
        g1, g2 = apply_separator(
            bridged_graph,
            sep,
            t_c=5,
            replicate="support",
            support_fn=lambda items: 100,  # triangle support above T_C
        )
        assert g2.has_edge("m1", "m2")

    def test_scheme2_requires_oracle(self, bridged_graph):
        sep = Separator(
            s1=frozenset({"a", "b"}),
            s2=frozenset({"m3"}),
            s0=frozenset({"m1", "m2"}),
        )
        with pytest.raises(SelectionError):
            apply_separator(bridged_graph, sep, t_c=5, replicate="support")

    def test_unknown_scheme(self, bridged_graph):
        sep = Separator(frozenset("a"), frozenset("b"), frozenset())
        with pytest.raises(SelectionError):
            apply_separator(bridged_graph, sep, t_c=5, replicate="bogus")

    def test_edges_within_sides_preserved(self, bridged_graph):
        sep = Separator(
            s1=frozenset({"a", "b"}),
            s2=frozenset({"m3"}),
            s0=frozenset({"m1", "m2"}),
        )
        g1, g2 = apply_separator(bridged_graph, sep, t_c=5, replicate="always")
        assert g1.has_edge("a", "b")
        assert g1.has_edge("m1", "a")
        assert g2.has_edge("m1", "m3")
        assert g2.has_edge("m2", "m3")


class TestDecompositionSelect:
    def test_small_graph_single_view(self):
        graph = KeywordAssociationGraph.from_edges([("a", "b", 10)])
        result = decomposition_select(
            graph, view_size=lambda k: 2 ** len(frozenset(k)), t_v=16, t_c=5
        )
        assert result.covered == [frozenset({"a", "b"})]
        assert not result.dense_residues

    def test_disconnected_components_split(self):
        graph = KeywordAssociationGraph.from_edges(
            [("a", "b", 10), ("x", "y", 10)]
        )
        result = decomposition_select(
            graph, view_size=lambda k: 2 ** len(frozenset(k)), t_v=8, t_c=5
        )
        assert sorted(result.covered, key=sorted) == [
            frozenset({"a", "b"}),
            frozenset({"x", "y"}),
        ]

    def test_large_clique_becomes_residue(self):
        vertices = list("abcdefgh")
        edges = [
            (u, v, 10)
            for i, u in enumerate(vertices)
            for v in vertices[i + 1 :]
        ]
        graph = KeywordAssociationGraph.from_edges(edges)
        result = decomposition_select(
            graph, view_size=lambda k: 2 ** len(frozenset(k)), t_v=16, t_c=5
        )
        assert result.dense_residues == [frozenset(vertices)]
        assert not result.covered

    def test_chain_decomposes_into_coverable_pieces(self):
        n = 12
        edges = [(f"v{i}", f"v{i+1}", 10) for i in range(n - 1)]
        graph = KeywordAssociationGraph.from_edges(edges)
        result = decomposition_select(
            graph, view_size=lambda k: 2 ** len(frozenset(k)), t_v=16, t_c=5
        )
        assert not result.dense_residues
        assert result.stats.separators_computed >= 1
        # Every vertex is covered by some piece.
        covered = set().union(*result.covered)
        assert covered == {f"v{i}" for i in range(n)}

    def test_clique_preservation_under_decomposition(self):
        """The view-selection principle: a high-support clique survives
        decomposition inside at least one piece (scheme 1)."""
        # Two hubs with a shared clique {h1, h2, c}.
        edges = [
            ("h1", "h2", 50),
            ("h1", "c", 50),
            ("h2", "c", 50),
            ("h1", "l1", 50), ("l1", "l2", 50), ("l2", "l3", 50),
            ("h2", "r1", 50), ("r1", "r2", 50), ("r2", "r3", 50),
        ]
        graph = KeywordAssociationGraph.from_edges(edges)
        result = decomposition_select(
            graph,
            view_size=lambda k: 2 ** len(frozenset(k)),
            t_v=32,
            t_c=10,
            replicate="always",
        )
        pieces = result.covered + result.dense_residues
        clique = {"h1", "h2", "c"}
        assert any(clique <= piece for piece in pieces)


class TestSchemesOnRealData:
    def test_scheme2_uses_triangle_supports(self, corpus_db):
        t_c = len(corpus_db) // 10
        graph = KeywordAssociationGraph.from_transactions(corpus_db, t_c)
        result = decomposition_select(
            graph,
            view_size=lambda k: 2 ** min(len(frozenset(k)), 20),
            t_v=2 ** 12,
            t_c=t_c,
            replicate="support",
            support_fn=corpus_db.support,
        )
        # Sanity: the run finished and every frequent predicate landed
        # somewhere.
        placed = set()
        for piece in result.covered + result.dense_residues:
            placed |= piece
        assert placed == set(corpus_db.frequent_items(t_c))
