"""Tests for the collection-statistics cache."""

import pytest

from repro import ContextSearchEngine
from repro.core.stats_cache import CachingSearchEngine, StatisticsCache
from repro.core.statistics import cardinality_spec, df_spec


class TestStatisticsCache:
    def test_lookup_miss_then_hit(self):
        cache = StatisticsCache()
        key = frozenset({"m1"})
        specs = [cardinality_spec(), df_spec("w")]
        found, missing = cache.lookup(key, specs)
        assert not found and len(missing) == 2
        cache.store(key, {cardinality_spec(): 10})
        found, missing = cache.lookup(key, specs)
        assert found == {cardinality_spec(): 10}
        assert missing == [df_spec("w")]
        assert cache.metrics.spec_hits == 1
        assert cache.metrics.spec_misses == 3

    def test_lru_eviction(self):
        cache = StatisticsCache(max_contexts=2)
        for name in ("a", "b", "c"):
            cache.store(frozenset({name}), {cardinality_spec(): 1})
        assert len(cache) == 2
        assert cache.metrics.evictions == 1
        # "a" was evicted; "b" and "c" remain.
        found, _ = cache.lookup(frozenset({"a"}), [cardinality_spec()])
        assert not found

    def test_lru_refresh_on_lookup(self):
        cache = StatisticsCache(max_contexts=2)
        cache.store(frozenset({"a"}), {cardinality_spec(): 1})
        cache.store(frozenset({"b"}), {cardinality_spec(): 2})
        cache.lookup(frozenset({"a"}), [cardinality_spec()])  # refresh a
        cache.store(frozenset({"c"}), {cardinality_spec(): 3})  # evicts b
        assert cache.lookup(frozenset({"a"}), [cardinality_spec()])[0]
        assert not cache.lookup(frozenset({"b"}), [cardinality_spec()])[0]

    def test_invalidate(self):
        cache = StatisticsCache()
        cache.store(frozenset({"a"}), {cardinality_spec(): 1})
        cache.invalidate()
        assert len(cache) == 0
        assert cache.metrics.invalidations == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StatisticsCache(max_contexts=0)


class TestCachingSearchEngine:
    @pytest.fixture
    def engines(self, handmade_index):
        cached = CachingSearchEngine(ContextSearchEngine(handmade_index))
        reference = ContextSearchEngine(handmade_index)
        return cached, reference

    def test_cache_never_changes_answers(self, engines):
        cached, reference = engines
        queries = [
            "leukemia | DigestiveSystem",
            "pancreas | Diseases",
            "leukemia | DigestiveSystem",  # repeat: served from cache
            "cancer | Neoplasms",
            "leukemia | DigestiveSystem",
        ]
        for text in queries:
            a = cached.search(text)
            b = reference.search(text)
            assert a.external_ids() == b.external_ids()
            for ha, hb in zip(a.hits, b.hits):
                assert ha.score == pytest.approx(hb.score, abs=1e-12)

    def test_repeat_queries_hit_cache(self, engines):
        cached, _ = engines
        cached.search("leukemia | DigestiveSystem")
        assert cached.metrics.spec_hits == 0
        result = cached.search("leukemia | DigestiveSystem")
        assert cached.metrics.spec_hits > 0
        assert result.report.resolution.path == "cache"

    def test_same_context_different_keywords_partial_hit(self, engines):
        cached, _ = engines
        cached.search("leukemia | DigestiveSystem")
        before = cached.metrics.spec_hits
        # Same context: cardinality/total_length hit; df(pancrea) misses.
        cached.search("pancreas | DigestiveSystem")
        assert cached.metrics.spec_hits > before
        assert cached.metrics.spec_misses > 0

    def test_invalidation_after_ingest(self):
        from repro.index import Document, build_index

        from .conftest import HANDMADE_DOCS

        # A private index: ingestion must not touch the shared fixture.
        index = build_index(HANDMADE_DOCS)
        cached = CachingSearchEngine(ContextSearchEngine(index))
        cached.search("leukemia | DigestiveSystem")
        stats_before = cached.search("leukemia | DigestiveSystem")

        index.append_documents(
            [
                Document(
                    "NEWDOC",
                    {
                        "title": "leukemia in digestive tissue",
                        "abstract": "leukemia study",
                        "mesh": "Diseases DigestiveSystem",
                    },
                )
            ]
        )
        cached.invalidate()
        after = cached.search("leukemia | DigestiveSystem")
        assert after.report.context_size == stats_before.report.context_size + 1

    def test_conventional_unaffected(self, engines):
        cached, reference = engines
        a = cached.search_conventional("leukemia | Diseases")
        b = reference.search_conventional("leukemia | Diseases")
        assert a.external_ids() == b.external_ids()
