"""The public API surface: everything in ``__all__`` imports and works."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing name {name}"

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_exceptions_form_hierarchy(self):
        for name in (
            "IndexingError",
            "QueryError",
            "EmptyContextError",
            "ViewError",
            "ViewNotUsableError",
            "SelectionError",
            "MiningError",
            "BudgetExceededError",
            "DataGenerationError",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError), name

    def test_storage_error_in_hierarchy(self):
        from repro.storage import StorageError

        assert issubclass(StorageError, repro.ReproError)

    def test_public_callables_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_subpackages_have_docstrings(self):
        import repro.core
        import repro.data
        import repro.eval
        import repro.index
        import repro.selection
        import repro.selection.mining
        import repro.temporal
        import repro.views

        for module in (
            repro,
            repro.core,
            repro.data,
            repro.eval,
            repro.index,
            repro.selection,
            repro.selection.mining,
            repro.temporal,
            repro.views,
        ):
            assert (module.__doc__ or "").strip(), module.__name__


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart code, executed verbatim in spirit."""
        from repro import ContextSearchEngine, Document, build_index, parse_query

        docs = [
            Document(
                "C1",
                {
                    "title": "Complications following pancreas transplant",
                    "abstract": "pancreas grafts",
                    "mesh": "Diseases DigestiveSystem",
                },
            ),
            Document(
                "C2",
                {
                    "title": "Organ failure in patients with acute leukemia",
                    "abstract": "leukemia outcomes",
                    "mesh": "Diseases DigestiveSystem",
                },
            ),
        ]
        index = build_index(docs)
        engine = ContextSearchEngine(index)
        results = engine.search(parse_query("leukemia | DigestiveSystem"))
        assert results.hits
        baseline = engine.search_conventional("leukemia | DigestiveSystem")
        assert len(baseline.hits) == len(results.hits)

    def test_readme_views_snippet_runs(self, corpus_index):
        from repro import ContextSearchEngine, select_views

        t_c = corpus_index.num_docs // 100
        catalog, report = select_views(corpus_index, t_c=max(t_c, 5), t_v=4096)
        engine = ContextSearchEngine(corpus_index, catalog=catalog)
        covered = next(iter(catalog)).keyword_set
        predicate = sorted(covered)[0]
        term = max(
            list(corpus_index.vocabulary)[:100],
            key=corpus_index.document_frequency,
        )
        results = engine.search(f"{term} | {predicate}")
        assert results.report.resolution.path == "views"
