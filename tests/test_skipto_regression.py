"""Regression test: skip_to with an exhausted cursor on segment-aligned lists.

Found by the full reproduction runner: when a posting list's length is an
exact multiple of the segment size, calling ``skip_to`` with
``position == len(list)`` computed a segment index one past the skip
table and crashed.  The fixture reproduces the original failing shape
(cursor walked to the end by a prior selective intersection, then asked
to advance again).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.postings import PostingList


class TestExhaustedCursor:
    @pytest.mark.parametrize("length", [4, 8, 64, 128])
    def test_segment_aligned_lengths(self, length):
        plist = PostingList.from_pairs(
            "t", [(i, 1) for i in range(length)], segment_size=4
        )
        # Cursor at the very end; any further target must be a no-op.
        assert plist.skip_to(length, 10**9, None) == length

    def test_unaligned_length(self):
        plist = PostingList.from_pairs(
            "t", [(i, 1) for i in range(10)], segment_size=4
        )
        assert plist.skip_to(10, 99, None) == 10

    def test_empty_list(self):
        plist = PostingList.from_pairs("t", [], segment_size=4)
        assert plist.skip_to(0, 5, None) == 0

    @given(
        length=st.integers(min_value=0, max_value=200),
        position=st.integers(min_value=0, max_value=220),
        target=st.integers(min_value=0, max_value=500),
    )
    def test_never_crashes_and_postcondition_holds(self, length, position, target):
        plist = PostingList.from_pairs(
            "t", [(i * 2, 1) for i in range(length)], segment_size=4
        )
        position = min(position, length)  # valid cursor positions
        new_position = plist.skip_to(position, target, None)
        assert position <= new_position <= length
        # Everything passed over is below the target...
        assert all(doc_id < target for doc_id in plist.doc_ids[position:new_position])
        # ...and the landing entry (if any) is the first >= target.
        if new_position < length:
            assert plist.doc_ids[new_position] >= target

    def test_original_failure_shape(self):
        """The selective-intersection pattern that triggered the crash."""
        from repro.views.rewrite import _selective_intersection

        predicate = PostingList.from_pairs(
            "m", [(i, 1) for i in range(64)], segment_size=64
        )
        keyword = PostingList.from_pairs("w", [(63, 1), (100, 2)])
        matched = _selective_intersection(keyword, [predicate], None)
        assert matched == [(63, 1)]
