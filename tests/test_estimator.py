"""Tests for exact and sampled ViewSize estimation (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views import ViewSizeEstimator, WideSparseTable


@pytest.fixture(scope="module")
def estimator(corpus_table):
    return ViewSizeEstimator(corpus_table, sample_size=200, seed=3)


class TestExact:
    def test_matches_brute_force(self, corpus_table, estimator):
        predicates = sorted(
            {p for row in corpus_table for p in row.predicates}
        )[:4]
        key = frozenset(predicates)
        expected = len({row.predicates & key for row in corpus_table})
        assert estimator.exact(key) == expected

    def test_single_keyword_size_at_most_two(self, corpus_table, estimator):
        """V_{m} has at most two tuples: m present / m absent."""
        some_predicate = next(iter(corpus_table)).predicates
        for predicate in list(some_predicate)[:3]:
            assert estimator.exact({predicate}) <= 2

    def test_monotone_in_keyword_set(self, corpus_table, estimator):
        """Adding keyword columns can only refine the partition."""
        predicates = sorted(
            {p for row in corpus_table for p in row.predicates}
        )[:5]
        small = estimator.exact(predicates[:2])
        large = estimator.exact(predicates)
        assert large >= small

    def test_cache_consistency(self, estimator):
        key = frozenset({"whatever"})
        assert estimator.exact(key) == estimator.exact(key)


class TestSampled:
    def test_never_exceeds_exact(self, corpus_table, estimator):
        predicates = sorted(
            {p for row in corpus_table for p in row.predicates}
        )[:6]
        assert estimator.sampled(predicates) <= estimator.exact(predicates)

    def test_deterministic_per_seed(self, corpus_table):
        a = ViewSizeEstimator(corpus_table, sample_size=100, seed=5)
        b = ViewSizeEstimator(corpus_table, sample_size=100, seed=5)
        predicates = sorted({p for row in corpus_table for p in row.predicates})[:4]
        assert a.sampled(predicates) == b.sampled(predicates)

    def test_full_sample_equals_exact(self, corpus_table):
        estimator = ViewSizeEstimator(
            corpus_table, sample_size=len(corpus_table) + 1, seed=1
        )
        predicates = sorted({p for row in corpus_table for p in row.predicates})[:4]
        assert estimator.sampled(predicates) == estimator.exact(predicates)

    def test_call_uses_exact(self, corpus_table, estimator):
        predicates = sorted({p for row in corpus_table for p in row.predicates})[:3]
        assert estimator(predicates) == estimator.exact(predicates)


class TestBoundProperty:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_size_bounded_by_2_pow_k_and_n(self, data, corpus_table, estimator):
        """Theorem 4.2's bound: ViewSize ≤ min(2^|K|, |D|+?) — non-empty
        tuples cannot exceed either the pattern space or the row count."""
        all_predicates = sorted({p for row in corpus_table for p in row.predicates})
        subset = data.draw(
            st.lists(
                st.sampled_from(all_predicates), min_size=1, max_size=8, unique=True
            )
        )
        size = estimator.exact(subset)
        assert size <= 2 ** len(subset)
        assert size <= len(corpus_table)
