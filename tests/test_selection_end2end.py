"""End-to-end view-selection tests: the Problem 5.1 guarantee, audited exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CorpusConfig, generate_corpus, select_views
from repro.errors import SelectionError
from repro.selection import (
    TransactionDatabase,
    hybrid_selection,
    max_combination_size,
    mining_based_selection,
    verify_selection,
)
from repro.views import ViewSizeEstimator, WideSparseTable

T_V = 128


@pytest.fixture(scope="module")
def setup(corpus_db, corpus_estimator):
    t_c = len(corpus_db) // 20
    return corpus_db, corpus_estimator, t_c


class TestMiningStrategy:
    def test_guarantee_holds(self, setup):
        db, estimator, t_c = setup
        report = mining_based_selection(db, estimator, t_c, T_V)
        audit = verify_selection(
            db,
            report.keyword_sets,
            estimator,
            t_c,
            T_V,
            max_combination_size=max_combination_size(T_V),
        )
        assert audit.ok, (audit.uncovered[:3], audit.oversized_views[:3])
        assert report.num_views == len(report.keyword_sets)
        assert report.mining_work_units > 0


class TestHybridStrategy:
    @pytest.mark.parametrize("replicate", ["always", "support"])
    def test_guarantee_holds(self, setup, replicate):
        db, estimator, t_c = setup
        report = hybrid_selection(db, estimator, t_c, T_V, replicate=replicate)
        audit = verify_selection(
            db,
            report.keyword_sets,
            estimator,
            t_c,
            T_V,
            max_combination_size=max_combination_size(T_V),
        )
        assert audit.ok, (audit.uncovered[:3], audit.oversized_views[:3])

    def test_report_accounting(self, setup):
        db, estimator, t_c = setup
        report = hybrid_selection(db, estimator, t_c, T_V)
        assert report.strategy == "hybrid"
        assert report.num_views == len(report.keyword_sets)
        assert report.num_views <= (
            report.views_from_decomposition + report.views_from_mining
        )

    def test_hybrid_on_multiple_seeds(self):
        """Property over corpora: the guarantee is not seed luck."""
        for seed in (1, 2, 3):
            corpus = generate_corpus(
                CorpusConfig(num_docs=600, seed=seed, num_roots=4, depth=2)
            )
            index = corpus.build_index()
            table = WideSparseTable.from_index(index)
            db = TransactionDatabase(table.predicate_sets())
            estimator = ViewSizeEstimator(table)
            t_c = max(len(db) // 20, 5)
            report = hybrid_selection(db, estimator, t_c, T_V)
            audit = verify_selection(
                db,
                report.keyword_sets,
                estimator,
                t_c,
                T_V,
                max_combination_size=max_combination_size(T_V),
            )
            assert audit.ok, f"seed {seed}: {audit.uncovered[:3]}"


class TestSelectViewsAPI:
    def test_returns_catalog_and_report(self, corpus_index):
        t_c = corpus_index.num_docs // 20
        catalog, report = select_views(corpus_index, t_c=t_c, t_v=T_V)
        assert len(catalog) == report.num_views
        for view in catalog:
            assert view.size <= T_V

    def test_df_columns_follow_storage_rule(self, corpus_index):
        """Section 6.2: df columns only for keywords with |L_w| >= T_C."""
        t_c = corpus_index.num_docs // 20
        catalog, _ = select_views(corpus_index, t_c=t_c, t_v=T_V)
        view = next(iter(catalog))
        for term in view.df_terms:
            assert corpus_index.document_frequency(term) >= t_c
        # And all frequent terms are present.
        frequent = {
            w
            for w in corpus_index.vocabulary
            if corpus_index.document_frequency(w) >= t_c
        }
        assert view.df_terms == frequent

    def test_tc_columns_optional(self, corpus_index):
        t_c = corpus_index.num_docs // 20
        catalog, _ = select_views(
            corpus_index, t_c=t_c, t_v=T_V, include_tc_columns=True
        )
        view = next(iter(catalog))
        assert view.tc_terms == view.df_terms

    def test_unknown_strategy(self, corpus_index):
        with pytest.raises(SelectionError):
            select_views(corpus_index, t_c=10, t_v=T_V, strategy="nope")


class TestMaxCombinationSize:
    def test_log2_bound(self):
        assert max_combination_size(2) == 1
        assert max_combination_size(256) == 8
        assert max_combination_size(4096) == 12

    def test_invalid(self):
        with pytest.raises(SelectionError):
            max_combination_size(1)
