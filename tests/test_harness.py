"""Tests for the quality-comparison harness and the Figure 6 experiment shape."""

import pytest

from repro.data.trec import generate_benchmark
from repro.eval.harness import QualityComparison, TopicOutcome, run_quality_comparison


@pytest.fixture(scope="module")
def comparison(corpus, corpus_index, corpus_engine):
    benchmark = generate_benchmark(
        corpus,
        corpus_index,
        num_topics=10,
        min_result_size=10,
        min_relevant=3,
        seed=29,
    )
    return run_quality_comparison(corpus_engine, benchmark, k=20)


class TestComparisonMechanics:
    def test_one_outcome_per_topic(self, comparison):
        assert comparison.num_topics == 10

    def test_wins_losses_ties_partition(self, comparison):
        assert (
            comparison.wins + comparison.losses + comparison.ties
            == comparison.num_topics
        )

    def test_summary_keys(self, comparison):
        summary = comparison.summary()
        assert summary["topics"] == 10
        assert summary["mean_precision_context"] == pytest.approx(
            comparison.mean("precision_context")
        )

    def test_metrics_within_bounds(self, comparison):
        for outcome in comparison.outcomes:
            assert 0 <= outcome.precision_context <= 20
            assert 0 <= outcome.precision_conventional <= 20
            assert 0.0 <= outcome.rr_context <= 1.0
            assert 0.0 <= outcome.ndcg_context <= 1.0


class TestFigure6Shape:
    """The paper's headline finding, at test scale: context-sensitive
    ranking wins more topics than it loses, and the means do not regress."""

    def test_context_wins_at_least_as_many(self, comparison):
        assert comparison.wins >= comparison.losses

    def test_mean_metrics_do_not_regress(self, comparison):
        summary = comparison.summary()
        assert summary["mrr_context"] >= summary["mrr_conventional"] - 0.05
        assert (
            summary["mean_precision_context"]
            >= summary["mean_precision_conventional"] - 0.5
        )


class TestEmptyComparison:
    def test_empty_aggregates(self):
        comparison = QualityComparison(k=20)
        assert comparison.num_topics == 0
        assert comparison.wins == comparison.losses == comparison.ties == 0
        assert comparison.mean("rr_context") == 0.0
