"""Tests for the synthetic corpus generator (the Section 6 substrate)."""

import pytest

from repro.data.corpus import CorpusConfig, SEED_WORDS, generate_corpus
from repro.errors import DataGenerationError


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(CorpusConfig(num_docs=400, seed=21, num_roots=4, depth=2))


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(DataGenerationError):
            CorpusConfig(num_docs=0)
        with pytest.raises(DataGenerationError):
            CorpusConfig(vocabulary_size=10)
        with pytest.raises(DataGenerationError):
            CorpusConfig(topic_mixture=1.5)
        with pytest.raises(DataGenerationError):
            CorpusConfig(primary_share=-0.1)
        with pytest.raises(DataGenerationError):
            CorpusConfig(annotations_min=3, annotations_max=2)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        config = CorpusConfig(num_docs=50, seed=77, num_roots=3, depth=2)
        a = generate_corpus(config)
        b = generate_corpus(config)
        assert [d.fields for d in a.documents] == [d.fields for d in b.documents]
        assert a.annotations == b.annotations

    def test_different_seed_differs(self):
        a = generate_corpus(CorpusConfig(num_docs=50, seed=1, num_roots=3, depth=2))
        b = generate_corpus(CorpusConfig(num_docs=50, seed=2, num_roots=3, depth=2))
        assert [d.fields for d in a.documents] != [d.fields for d in b.documents]


class TestStructure:
    def test_corpus_size(self, small_corpus):
        assert len(small_corpus) == 400
        assert len(small_corpus.documents) == len(small_corpus.annotations)

    def test_every_doc_has_fields(self, small_corpus):
        for doc in small_corpus.documents:
            assert doc.text("title")
            assert doc.text("abstract")
            assert doc.text("mesh")

    def test_mesh_field_is_inheritance_closure(self, small_corpus):
        ontology = small_corpus.ontology
        for doc, leaves in zip(small_corpus.documents, small_corpus.annotations):
            mesh = set(doc.text("mesh").split())
            assert mesh == set(ontology.expand_with_ancestors(leaves))

    def test_annotation_counts_respect_config(self, small_corpus):
        config = small_corpus.config
        for leaves in small_corpus.annotations:
            assert config.annotations_min <= len(leaves) <= config.annotations_max

    def test_primary_concept(self, small_corpus):
        assert small_corpus.primary_concept(0) == small_corpus.annotations[0][0]

    def test_seed_words_in_vocabulary(self, small_corpus):
        for word in SEED_WORDS[:10]:
            assert word in small_corpus.vocabulary


class TestTopicStructure:
    def test_every_term_has_vocabulary(self, small_corpus):
        ontology = small_corpus.ontology
        for name in ontology.all_terms:
            assert small_corpus.topic_vocabularies[name]

    def test_exclusive_head_words(self, small_corpus):
        """The strongest words of distinct concepts do not collide (until
        the pools run out, which this corpus is too small to hit)."""
        heads = {}
        exclusive = 2  # at least the alias words are exclusive
        for name, vocab in small_corpus.topic_vocabularies.items():
            for word in vocab[:exclusive]:
                assert word not in heads, (
                    f"{word} shared by {name} and {heads[word]}"
                )
                heads[word] = name

    def test_aliases_point_to_owning_terms(self, small_corpus):
        for word, terms in small_corpus.aliases.items():
            for term in terms:
                assert word in small_corpus.topic_vocabularies[term][
                    : small_corpus.config.aliases_per_term
                ]

    def test_primary_concept_words_concentrated(self, small_corpus):
        """Documents use their primary concept's top word more than other
        documents do — the aboutness signal (averaged over the corpus)."""
        index = small_corpus.build_index()
        analyzer = index.analyzer
        from collections import defaultdict

        focus_tf, other_tf = defaultdict(list), defaultdict(list)
        for doc_number, doc in enumerate(small_corpus.documents):
            primary = small_corpus.primary_concept(doc_number)
            top_word = small_corpus.topic_vocabularies[primary][0]
            term = analyzer.analyze_query_term(top_word)
            stored = index.store.by_external_id(doc.doc_id)
            tf = stored.term_frequency(term, ("title", "abstract"))
            focus_tf[primary].append(tf)
        overall = [tf for tfs in focus_tf.values() for tf in tfs]
        assert sum(overall) / len(overall) > 0.5


class TestContextDependentStatistics:
    def test_internal_term_words_concentrated_in_context(self, corpus, corpus_index):
        """The Section 1.1 inversion exists: some internal concept's top
        word has most of its document frequency inside that concept's
        context."""
        searcher_vocab = corpus_index.predicate_vocabulary
        ontology = corpus.ontology
        internal = [
            t
            for t in ontology.all_terms
            if not ontology.term(t).is_leaf
            and ontology.term(t).parent is not None
            and t in searcher_vocab
        ]
        found_concentrated = False
        for term_name in internal:
            top_word = corpus.topic_vocabularies[term_name][0]
            analyzed = corpus_index.analyzer.analyze_query_term(top_word)
            plist = corpus_index.postings(analyzed)
            if len(plist) < 10:
                continue
            context = set(corpus_index.predicate_postings(term_name).doc_ids)
            inside = sum(1 for d in plist.doc_ids if d in context)
            if inside / len(plist) > 0.6:
                found_concentrated = True
                break
        assert found_concentrated
