"""Tests for Algorithm 1 (greedy data-mining-based view selection)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError
from repro.selection.greedy import (
    coverage_gaps,
    greedy_view_selection,
    remove_subsumed,
)


def pow2_view_size(keyword_set):
    """Worst-case oracle: every keyword pattern non-empty."""
    return 2 ** len(frozenset(keyword_set))


class TestRemoveSubsumed:
    def test_drops_strict_subsets(self):
        combos = [frozenset("ab"), frozenset("abc"), frozenset("c"), frozenset("d")]
        kept = remove_subsumed(combos)
        assert set(kept) == {frozenset("abc"), frozenset("d")}

    def test_keeps_duplicates_once(self):
        combos = [frozenset("ab"), frozenset("ab")]
        assert remove_subsumed(combos) == [frozenset("ab")]

    def test_deterministic_order(self):
        combos = [frozenset("xy"), frozenset("ab"), frozenset("abc")]
        assert remove_subsumed(combos) == [
            frozenset("abc"),
            frozenset("xy"),
        ]

    def test_empty_input(self):
        assert remove_subsumed([]) == []


class TestGreedySelection:
    def test_single_combination(self):
        views = greedy_view_selection([frozenset("abc")], pow2_view_size, t_v=16)
        assert views == [frozenset("abc")]

    def test_merges_overlapping_combinations(self):
        combos = [frozenset("abc"), frozenset("abd")]
        views = greedy_view_selection(combos, pow2_view_size, t_v=16)
        # 4 keywords -> 2^4 = 16 <= T_V: one merged view suffices.
        assert views == [frozenset("abcd")]

    def test_splits_when_tv_too_small(self):
        combos = [frozenset("abc"), frozenset("xyz")]
        views = greedy_view_selection(combos, pow2_view_size, t_v=8)
        # Merging would need 2^6 = 64 > 8, so two separate views.
        assert len(views) == 2

    def test_oversized_combination_raises(self):
        with pytest.raises(SelectionError):
            greedy_view_selection([frozenset("abcdefgh")], pow2_view_size, t_v=16)

    def test_invalid_tv(self):
        with pytest.raises(SelectionError):
            greedy_view_selection([frozenset("a")], pow2_view_size, t_v=1)

    def test_coverage_invariant(self):
        """Problem 5.2 condition 2: every input combination covered."""
        combos = [
            frozenset("abc"),
            frozenset("cd"),
            frozenset("de"),
            frozenset("fg"),
            frozenset("a"),
        ]
        views = greedy_view_selection(combos, pow2_view_size, t_v=32)
        assert coverage_gaps(combos, views) == []

    def test_view_size_invariant(self):
        combos = [frozenset("abc"), frozenset("bcd"), frozenset("cde")]
        views = greedy_view_selection(combos, pow2_view_size, t_v=32)
        assert all(pow2_view_size(v) <= 32 for v in views)

    def test_prefers_high_overlap_merges(self):
        """The second heuristic: combinations sharing keywords pack together."""
        combos = [frozenset("abcd"), frozenset("abce"), frozenset("vwxy")]
        views = greedy_view_selection(combos, pow2_view_size, t_v=32)
        merged = next(v for v in views if "a" in v)
        assert merged == frozenset("abcde")


class TestGreedyProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        t_v_exp=st.integers(min_value=3, max_value=7),
    )
    def test_invariants_on_random_inputs(self, data, t_v_exp):
        t_v = 2 ** t_v_exp
        alphabet = list("abcdefghij")
        combos = data.draw(
            st.lists(
                st.frozensets(
                    st.sampled_from(alphabet), min_size=1, max_size=t_v_exp
                ),
                min_size=1,
                max_size=12,
            )
        )
        views = greedy_view_selection(combos, pow2_view_size, t_v)
        assert coverage_gaps(combos, views) == []
        assert all(pow2_view_size(v) <= t_v for v in views)
        # No more views than (deduplicated, maximal) inputs.
        assert len(views) <= len(remove_subsumed(combos))
