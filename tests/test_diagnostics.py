"""Tests for corpus diagnostics — the substitution argument, measured."""

import math

import pytest

from repro.data.diagnostics import (
    context_divergence,
    context_size_profile,
    find_idf_inversions,
    fit_zipf,
)


class TestZipfFit:
    def test_perfect_power_law(self):
        frequencies = [int(10_000 / rank) for rank in range(1, 200)]
        fit = fit_zipf(frequencies)
        assert fit.slope == pytest.approx(-1.0, abs=0.05)
        assert fit.r_squared > 0.99
        assert fit.is_heavy_tailed

    def test_uniform_not_heavy_tailed(self):
        fit = fit_zipf([100] * 50)
        assert fit.slope == pytest.approx(0.0, abs=1e-9)
        assert not fit.is_heavy_tailed

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_zipf([5, 3])

    def test_corpus_term_frequencies_are_zipfian(self, corpus_index):
        frequencies = [
            corpus_index.document_frequency(w) for w in corpus_index.vocabulary
        ]
        fit = fit_zipf(frequencies)
        assert fit.is_heavy_tailed, (fit.slope, fit.r_squared)


class TestContextSizeProfile:
    def test_profile_statistics(self, corpus_index):
        profile = context_size_profile(corpus_index)
        assert profile.min >= 1
        assert profile.max <= corpus_index.num_docs
        assert profile.min <= profile.median <= profile.max

    def test_inheritance_creates_dynamic_range(self, corpus_index):
        """Ancestor inheritance makes internal-term contexts much larger
        than leaf contexts — the heavy tail the thresholds rely on."""
        profile = context_size_profile(corpus_index)
        assert profile.dynamic_range > 10

    def test_above_threshold(self, corpus_index):
        profile = context_size_profile(corpus_index)
        t_c = corpus_index.num_docs // 20
        assert 0 < profile.above(t_c) < len(profile.sizes)


class TestContextDivergence:
    def test_contexts_diverge_from_collection(self, corpus_index):
        """The premise of the whole paper: per-context df distributions
        differ measurably from the global one."""
        predicate = max(
            corpus_index.predicate_vocabulary,
            key=corpus_index.predicate_frequency,
        )
        divergence = context_divergence(corpus_index, predicate)
        assert 0.0 < divergence <= 1.0

    def test_whole_collection_context_has_low_divergence(self, handmade_index):
        # "Diseases" annotates every handmade doc: zero divergence.
        assert context_divergence(
            handmade_index, "Diseases",
            sample_terms=list(handmade_index.vocabulary),
        ) == pytest.approx(0.0, abs=1e-9)

    def test_empty_context_rejected(self, corpus_index):
        with pytest.raises(ValueError):
            context_divergence(corpus_index, "NotAPredicate")


class TestInversions:
    def test_corpus_contains_inversions(self, corpus_index):
        """The generator must produce Section 1.1's phenomenon."""
        inversions = find_idf_inversions(corpus_index)
        assert inversions, "no idf inversions found — quality benchmark unsound"
        for example in inversions:
            assert example.global_ratio >= 1.3
            assert example.context_ratio >= 1.3

    def test_inversion_fields_consistent(self, corpus_index):
        example = find_idf_inversions(corpus_index, max_predicates=3)[0]
        assert example.context_common_term != example.focus_term
        assert example.predicate in corpus_index.predicate_vocabulary
