"""Tests for the programmatic experiment runner (repro.experiments)."""

import pytest

from repro.errors import DataGenerationError
from repro.experiments import (
    ExperimentConfig,
    ExperimentStack,
    markdown_table,
    run_all,
    run_figure6,
    run_figure7,
    run_figure8,
    run_selection_study,
    write_report,
)

TINY = ExperimentConfig(
    num_docs=1200,
    seed=77,
    t_c_percent=3.0,
    t_v=256,
    num_topics=6,
    min_result_size=10,
    min_relevant=3,
    keyword_counts=(2, 3),
    queries_per_point=4,
    apriori_budget=150_000,
    fpgrowth_node_budget=4_000,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_all(TINY)


class TestConfig:
    def test_t_c_derivation(self):
        assert ExperimentConfig(num_docs=10_000, t_c_percent=1.0).t_c == 100
        assert ExperimentConfig(num_docs=500, t_c_percent=0.01).t_c == 1

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            ExperimentConfig(num_docs=10)
        with pytest.raises(DataGenerationError):
            ExperimentConfig(t_c_percent=0)
        with pytest.raises(DataGenerationError):
            ExperimentConfig(t_v=1)

    def test_quick_preset(self):
        assert ExperimentConfig.quick().num_docs < ExperimentConfig().num_docs


class TestStack:
    def test_lazy_builds_record_timings(self):
        stack = ExperimentStack(TINY)
        assert stack.timings == {}
        _ = stack.index
        assert "corpus generation" in stack.timings
        assert "indexing" in stack.timings
        _ = stack.catalog
        assert "view selection + materialisation" in stack.timings

    def test_memoisation(self):
        stack = ExperimentStack(TINY)
        assert stack.index is stack.index
        assert stack.catalog is stack.catalog


class TestRunAll:
    def test_all_experiments_present(self, tiny_report):
        assert tiny_report.figure6.comparison.num_topics == TINY.num_topics
        assert tiny_report.figure7.measurements
        assert tiny_report.figure8.measurements
        assert tiny_report.selection.num_views > 0

    def test_selection_audit_clean(self, tiny_report):
        assert tiny_report.selection.audit.ok

    def test_miners_exceed_scaled_budgets(self, tiny_report):
        assert all(m.exceeded for m in tiny_report.selection.miner_feasibility)

    def test_verdicts_structure(self, tiny_report):
        verdicts = tiny_report.verdicts()
        assert len(verdicts) == 4
        assert all(isinstance(ok, bool) for _, ok in verdicts)

    def test_performance_measurements_positive(self, tiny_report):
        for measurement in tiny_report.figure7.measurements.values():
            assert measurement.mean_ms > 0
            assert measurement.mean_model_cost > 0


class TestReportRendering:
    def test_markdown_table_escapes_pipes(self):
        table = markdown_table(("a",), [("x|y",)])
        assert "x\\|y" in table

    def test_to_markdown_contains_all_sections(self, tiny_report):
        text = tiny_report.to_markdown()
        for heading in (
            "## Setup",
            "Figure 6",
            "## E4",
            "## E5",
            "Figure 7",
            "Figure 8",
            "## Verdict",
        ):
            assert heading in text

    def test_write_report(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# EXPERIMENTS")
