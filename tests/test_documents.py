"""Unit tests for the document model and store."""

import pytest

from repro.errors import ReproError
from repro.index.analysis import Analyzer
from repro.index.documents import Document, DocumentStore


@pytest.fixture
def store_with_docs():
    store = DocumentStore()
    analyzer = Analyzer()
    docs = [
        Document("A", {"title": "pancreas transplant", "abstract": "graft outcomes"}),
        Document("B", {"title": "leukemia", "abstract": "blood cancer cells"}),
    ]
    for doc in docs:
        tokens = {
            name: analyzer.analyze(doc.text(name)) for name in ("title", "abstract")
        }
        store.add(doc, tokens, ("title", "abstract"))
    return store


class TestDocument:
    def test_text_access(self):
        doc = Document("X", {"title": "hello"})
        assert doc.text("title") == "hello"
        assert doc.text("missing") == ""

    def test_combined_text(self):
        doc = Document("X", {"title": "a b", "abstract": "c"})
        assert doc.combined_text(("title", "abstract")) == "a b c"

    def test_frozen(self):
        doc = Document("X", {"title": "t"})
        with pytest.raises(AttributeError):
            doc.doc_id = "Y"


class TestDocumentStore:
    def test_sequential_internal_ids(self, store_with_docs):
        ids = [doc.internal_id for doc in store_with_docs]
        assert ids == [0, 1]

    def test_length_and_unique_terms(self, store_with_docs):
        doc = store_with_docs.get(0)
        # "pancreas transplant graft outcomes" -> 4 tokens after analysis
        assert doc.length == 4
        assert doc.unique_terms == 4

    def test_duplicate_external_id_rejected(self, store_with_docs):
        with pytest.raises(ReproError):
            store_with_docs.add(
                Document("A", {"title": "again"}), {"title": ["again"]}, ("title",)
            )

    def test_lookup_by_external_id(self, store_with_docs):
        doc = store_with_docs.by_external_id("B")
        assert doc is not None and doc.internal_id == 1
        assert store_with_docs.by_external_id("nope") is None

    def test_get_unknown_raises(self, store_with_docs):
        with pytest.raises(ReproError):
            store_with_docs.get(99)

    def test_lengths_column(self, store_with_docs):
        assert store_with_docs.lengths() == [
            store_with_docs.get(0).length,
            store_with_docs.get(1).length,
        ]

    def test_term_frequency(self, store_with_docs):
        doc = store_with_docs.get(0)
        assert doc.term_frequency("pancrea", ("title", "abstract")) == 1
        assert doc.term_frequency("missing", ("title", "abstract")) == 0
