"""The planner stack: logical plans, cost-based path choice, operators.

Three properties carry the refactor:

1. **choice is invisible** — forcing any feasible physical path returns
   the identical ranked answer (scores compared with ``==``, never
   approximately), on the flat and the sharded engine;
2. **choice is justified** — the optimizer's predicted costs are sound
   upper bounds on the actual counted operations of the chosen path, and
   the chosen path's actual cost beats (or stays within a documented
   tolerance of) the rejected path's actual cost;
3. **one scoring loop** — the shared scoring module reproduces, float
   for float, an independent re-derivation of every score from the
   statistics framework (the pre-refactor engines' inlined loops).
"""

from __future__ import annotations

import pytest

from repro import (
    BatchExecutor,
    ContextSearchEngine,
    QueryError,
    ShardedEngine,
    ShardedInvertedIndex,
    parse_query,
    replicate_catalog,
    select_views,
)
from repro.core.logical import (
    ALL_MODES,
    MODE_CONTEXT,
    MODE_CONVENTIONAL,
    MODE_DISJUNCTIVE,
    compile_query,
)
from repro.core.operators import StatsMerge
from repro.core.optimizer import (
    PATH_PER_SHARD,
    PATH_STRAIGHTFORWARD,
    PATH_VIEWS,
    Optimizer,
)
from repro.core.scoring import rank_candidates, score_candidates
from repro.core.statistics import (
    UNIQUE_TERMS,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
    cardinality_spec,
    df_spec,
)
from repro.index.searcher import BooleanSearcher


def hit_tuples(results):
    """The full bit-identity signature of a ranked answer."""
    return [(h.doc_id, h.external_id, h.score) for h in results.hits]


@pytest.fixture(scope="module")
def catalog(corpus_index):
    t_c = max(corpus_index.num_docs // 25, 5)
    catalog, _ = select_views(corpus_index, t_c=t_c, t_v=128)
    assert len(catalog) > 0
    return catalog


@pytest.fixture(scope="module")
def planner_engine(corpus_index, catalog):
    return ContextSearchEngine(corpus_index, catalog=catalog)


@pytest.fixture(scope="module")
def queries(corpus_index):
    """A spread of corpus queries: frequent/rare terms, 1–2 predicates."""
    predicates = sorted(
        corpus_index.predicate_vocabulary,
        key=corpus_index.predicate_frequency,
        reverse=True,
    )
    terms = sorted(
        corpus_index.vocabulary,
        key=corpus_index.document_frequency,
        reverse=True,
    )
    return [
        parse_query(f"{terms[0]} | {predicates[0]}"),
        parse_query(f"{terms[5]} {terms[20]} | {predicates[1]}"),
        parse_query(f"{terms[50]} | {predicates[0]} {predicates[2]}"),
        parse_query(f"{terms[200]} {terms[2]} | {predicates[3]}"),
        parse_query(f"{terms[400]} | {predicates[1]}"),
    ]


# ---------------------------------------------------------------------------
# Layer 1: logical plans


class TestLogicalPlans:
    def test_all_modes_compile(self, queries):
        specs = (cardinality_spec(), df_spec("x"))
        for mode in ALL_MODES:
            plan = compile_query(queries[0], specs, mode, top_k=10)
            assert plan.mode == mode
            assert plan.specs == specs
            assert plan.top_k == 10

    def test_unknown_mode_rejected(self, queries):
        with pytest.raises(QueryError, match="unknown evaluation mode"):
            compile_query(queries[0], (), "fuzzy")

    def test_context_tree_shape(self, queries):
        plan = compile_query(queries[0], (cardinality_spec(),), MODE_CONTEXT)
        ops = [node.op for node in plan.root.walk()]
        assert ops[0] == "top-k"
        assert "resolve-statistics" in ops
        assert "materialise-context" in ops
        assert "intersect" in ops

    def test_mode_specific_candidates(self, queries):
        specs = (cardinality_spec(),)
        disj = compile_query(queries[0], specs, MODE_DISJUNCTIVE)
        conv = compile_query(queries[0], specs, MODE_CONVENTIONAL)
        assert any(n.op == "disjunctive-scan" for n in disj.root.walk())
        assert any(n.op == "global-statistics" for n in conv.root.walk())
        assert not any(n.op == "materialise-context" for n in conv.root.walk())

    def test_render_mentions_query_terms(self, queries):
        plan = compile_query(queries[0], (cardinality_spec(),), MODE_CONTEXT)
        text = plan.render()
        assert queries[0].keywords[0] in text
        assert queries[0].predicates[0] in text


# ---------------------------------------------------------------------------
# Layer 2: the optimizer


class TestOptimizer:
    def _specs(self, engine, query):
        analyzed = engine._analyze(query)
        return analyzed, engine.ranking.required_collection_specs(
            analyzed.keywords
        )

    def test_two_candidates_priced(self, planner_engine, queries):
        analyzed, specs = self._specs(planner_engine, queries[0])
        plan = planner_engine.optimizer.plan(analyzed, specs)
        names = {c.name for c in plan.candidates}
        assert names == {PATH_VIEWS, PATH_STRAIGHTFORWARD}
        assert plan.chosen in names
        chosen = plan.candidate(plan.chosen)
        assert chosen.feasible
        assert chosen.predicted_cost >= 0

    def test_chosen_is_cheapest_feasible(self, planner_engine, queries):
        for query in queries:
            analyzed, specs = self._specs(planner_engine, query)
            plan = planner_engine.optimizer.plan(analyzed, specs)
            feasible = [c for c in plan.candidates if c.feasible]
            best = min(c.predicted_cost for c in feasible)
            assert plan.candidate(plan.chosen).predicted_cost == best

    def test_no_catalog_means_straightforward(self, corpus_index, queries):
        opt = Optimizer(corpus_index, catalog=None)
        engine = ContextSearchEngine(corpus_index)
        analyzed = engine._analyze(queries[0])
        specs = engine.ranking.required_collection_specs(analyzed.keywords)
        plan = opt.plan(analyzed, specs)
        assert plan.chosen == PATH_STRAIGHTFORWARD
        views = plan.candidate(PATH_VIEWS)
        assert not views.feasible
        assert "catalog" in views.reason

    def test_forcing_infeasible_path_raises(self, corpus_index, queries):
        engine = ContextSearchEngine(corpus_index)  # no catalog
        with pytest.raises(QueryError, match="not available"):
            engine.search(queries[0], path=PATH_VIEWS)

    def test_forcing_unknown_path_raises(self, planner_engine, queries):
        with pytest.raises(QueryError, match="unknown path"):
            planner_engine.search(queries[0], path="quantum")

    def test_conventional_mode_single_candidate(self, planner_engine, queries):
        analyzed, _ = self._specs(planner_engine, queries[0])
        plan = planner_engine.optimizer.plan(
            analyzed, (), mode=MODE_CONVENTIONAL
        )
        assert [c.name for c in plan.candidates] == ["conventional"]
        with pytest.raises(QueryError, match="no alternative paths"):
            planner_engine.optimizer.plan(
                analyzed, (), mode=MODE_CONVENTIONAL, force=PATH_VIEWS
            )

    def test_forced_plan_is_marked(self, planner_engine, queries):
        analyzed, specs = self._specs(planner_engine, queries[0])
        plan = planner_engine.optimizer.plan(
            analyzed, specs, force=PATH_STRAIGHTFORWARD
        )
        assert plan.forced
        assert plan.chosen == PATH_STRAIGHTFORWARD

    def test_render_reports_decision(self, planner_engine, queries):
        results = planner_engine.explain(queries[0], top_k=5)
        plan = results.report.plan
        text = plan.render()
        assert "chosen:" in text
        assert "predicted model cost:" in text
        assert "actual:" in text  # bound to the live counter
        for candidate in plan.candidates:
            assert candidate.name in text


# ---------------------------------------------------------------------------
# Invisibility: forcing any feasible path returns the identical answer


class TestPathForcingIdentity:
    def _forced(self, engine, query, path, **kwargs):
        try:
            return engine.search(query, path=path, **kwargs)
        except QueryError as exc:
            if "not available" in str(exc):
                return None
            raise

    def test_flat_engine_paths_identical(self, planner_engine, queries):
        for query in queries:
            auto = planner_engine.search(query)
            for path in (PATH_VIEWS, PATH_STRAIGHTFORWARD):
                forced = self._forced(planner_engine, query, path)
                if forced is None:
                    continue
                assert hit_tuples(forced) == hit_tuples(auto)
                assert forced.report.plan.forced
                assert forced.report.plan.chosen == path

    def test_flat_disjunctive_paths_identical(self, planner_engine, queries):
        for query in queries[:3]:
            auto = planner_engine.search_disjunctive(query, top_k=10)
            for path in (PATH_VIEWS, PATH_STRAIGHTFORWARD):
                try:
                    forced = planner_engine.search_disjunctive(
                        query, top_k=10, path=path
                    )
                except QueryError:
                    continue
                assert hit_tuples(forced) == hit_tuples(auto)

    def test_sharded_engine_paths_identical(
        self, corpus_index, catalog, planner_engine, queries
    ):
        sharded = ShardedInvertedIndex.from_index(corpus_index, 3)
        engine = ShardedEngine(
            sharded,
            catalogs=replicate_catalog(sharded, catalog),
            executor="serial",
        )
        try:
            for query in queries:
                flat = planner_engine.search(query)
                for path in ("auto", PATH_VIEWS, PATH_STRAIGHTFORWARD):
                    result = engine.search(query, path=path)
                    assert hit_tuples(result) == hit_tuples(flat)
        finally:
            engine.close()

    def test_sharded_force_views_without_catalogs_raises(self, corpus_index):
        sharded = ShardedInvertedIndex.from_index(corpus_index, 2)
        with ShardedEngine(sharded, executor="serial") as engine:
            with pytest.raises(QueryError, match="views"):
                engine.search("anything | whatever", path=PATH_VIEWS)


# ---------------------------------------------------------------------------
# Justification: predicted costs bound actuals; the choice pays off


class TestOptimizerCostProperty:
    # The straightforward candidate is priced with Proposition 3.1's
    # worst-case bound while the views candidate is priced near-exactly,
    # so on queries where the bound is loose the optimizer may pick views
    # even though straightforward would have run cheaper.  The tolerance
    # below documents how loose that asymmetry is allowed to get before
    # we call the model broken.
    TOLERANCE = 3.0

    def test_straightforward_prediction_tracks_actual_cost(
        self, planner_engine, queries
    ):
        """Forcing the straightforward path keeps actual operations within
        the repo's established 2x slack of the Proposition 3.1 estimate
        (the same factor test_properties.py grants the raw plan — the
        estimate bounds entry *touches* per component, while the model
        cost also prices skip evaluations).  The views candidate is priced
        near-exactly rather than as a worst case, so no analogous claim is
        made for it; the comparative test below keeps its pricing honest."""
        for query in queries:
            results = planner_engine.search(query, path=PATH_STRAIGHTFORWARD)
            plan = results.report.plan
            predicted = plan.candidate(PATH_STRAIGHTFORWARD).predicted_cost
            assert results.report.counter.model_cost <= 2 * predicted

    def test_chosen_path_beats_rejected_within_tolerance(
        self, planner_engine, queries
    ):
        for query in queries:
            auto = planner_engine.search(query)
            chosen = auto.report.plan.chosen
            rejected = (
                PATH_STRAIGHTFORWARD if chosen == PATH_VIEWS else PATH_VIEWS
            )
            try:
                other = planner_engine.search(query, path=rejected)
            except QueryError:
                continue  # rejected path infeasible: nothing to compare
            actual_chosen = auto.report.counter.model_cost
            actual_rejected = other.report.counter.model_cost
            assert actual_chosen <= max(
                self.TOLERANCE * actual_rejected, actual_rejected + 16
            ), (
                f"{query}: chose {chosen} at {actual_chosen} ops but "
                f"{rejected} ran at {actual_rejected}"
            )


# ---------------------------------------------------------------------------
# One scoring loop, bit-identical to first principles


class TestScoringBitIdentity:
    def _rederive(self, index, ranking, keywords, predicates, top_k=None):
        """Recompute the ranking straight from the statistics framework —
        the exact loop both engines inlined before the refactor."""
        searcher = BooleanSearcher(index)
        result_ids = searcher.search_conjunction(
            list(keywords), list(predicates)
        )
        engine = ContextSearchEngine(index, ranking=ranking)
        stats = engine.context_statistics(list(predicates), keywords)
        query_stats = QueryStatistics.from_keywords(keywords)
        unique = list(dict.fromkeys(keywords))
        plists = {w: index.postings(w) for w in unique}
        scored = []
        for doc_id in result_ids:
            doc = index.store.get(doc_id)
            doc_stats = DocumentStatistics(
                length=doc.length,
                unique_terms=doc.unique_terms,
                term_frequencies={
                    w: (plists[w].tf_for(doc_id) or 0) for w in unique
                },
            )
            score = ranking.score(query_stats, doc_stats, stats)
            scored.append((score, doc_id, doc.external_id))
        scored.sort(key=lambda hit: (-hit[0], hit[1]))
        return scored[:top_k] if top_k is not None else scored

    def test_engine_matches_first_principles(self, planner_engine, queries):
        index = planner_engine.index
        ranking = planner_engine.ranking
        for query in queries:
            analyzed = planner_engine._analyze(query)
            expected = self._rederive(
                index, ranking, analyzed.keywords, analyzed.predicates
            )
            got = planner_engine.search(query)
            assert [
                (s, d, e) for s, d, e in expected
            ] == [(h.score, h.doc_id, h.external_id) for h in got.hits]

    def test_scoring_module_matches_engines(self, handmade_engine):
        """score_candidates + rank_candidates is exactly the engine's
        ranking (same floats, same tie-breaks)."""
        query = handmade_engine._analyze(parse_query("leukemia | Diseases"))
        results = handmade_engine.search(query)
        stats = handmade_engine.context_statistics(
            list(query.predicates), query.keywords
        )
        searcher = BooleanSearcher(handmade_engine.index)
        ids = searcher.search_conjunction(
            list(query.keywords), list(query.predicates)
        )
        scored = score_candidates(
            handmade_engine.index,
            handmade_engine.ranking,
            query.keywords,
            ids,
            stats,
        )
        ranked = rank_candidates(
            [(score, doc_id, ext) for doc_id, score, ext in scored]
        )
        assert ranked == [(h.score, h.doc_id, h.external_id) for h in results.hits]

    def test_rank_candidates_tie_breaks_on_id(self):
        ranked = rank_candidates(
            [(1.0, 9, "D9"), (2.0, 5, "D5"), (1.0, 2, "D2")], top_k=2
        )
        assert ranked == [(2.0, 5, "D5"), (1.0, 2, "D2")]


# ---------------------------------------------------------------------------
# The unified report


class TestUnifiedReport:
    def test_flat_report_carries_plan(self, planner_engine, queries):
        results = planner_engine.search(queries[0])
        report = results.report
        assert report.plan is not None
        assert report.plan.actual is report.counter
        assert report.per_shard is None
        assert report.path == report.resolution.path
        assert report.predicted_cost == report.plan.predicted_cost

    def test_sharded_report_per_shard_breakdown(
        self, corpus_index, catalog, queries
    ):
        sharded = ShardedInvertedIndex.from_index(corpus_index, 3)
        engine = ShardedEngine(
            sharded,
            catalogs=replicate_catalog(sharded, catalog),
            executor="serial",
        )
        try:
            report = engine.search(queries[0]).report
            assert report.plan is not None
            assert report.plan.chosen == PATH_PER_SHARD
            assert len(report.per_shard) == 3
            assert len(report.plan.shard_choices) == 3
            for shard in report.per_shard:
                assert shard.path in ("views", "straightforward")
                assert shard.counter.model_cost >= 0
            # Per-shard counters partition the merged counter exactly.
            assert report.counter.model_cost == sum(
                s.counter.model_cost for s in report.per_shard
            )
            assert "per-shard choices" in report.plan.render()
        finally:
            engine.close()

    def test_batch_reports_carry_plans(self, planner_engine, queries):
        executor = BatchExecutor(planner_engine, max_workers=2)
        sources = [
            f"{' '.join(q.keywords)} | {' '.join(q.predicates)}"
            for q in queries
        ]
        report = executor.run(sources, top_k=5)
        assert all(o.ok for o in report.outcomes)
        for outcome, query in zip(report.outcomes, queries):
            assert outcome.results.report.plan is not None
            solo = planner_engine.search(query, top_k=5)
            assert hit_tuples(outcome.results) == hit_tuples(solo)
            # Shared materialisation replays costs: batch accounting
            # equals standalone accounting.
            assert (
                outcome.results.report.counter.model_cost
                == solo.report.counter.model_cost
            )


# ---------------------------------------------------------------------------
# StatsMerge (the scatter-gather merge operator)


class TestStatsMerge:
    def test_merge_sums_partitions(self):
        a, b = cardinality_spec(), df_spec("t")
        merged = StatsMerge.merge([{a: 3, b: 1}, {a: 4, b: 0}], [a, b])
        assert merged == {a: 7, b: 1}
        assert StatsMerge.cardinality_of(merged, [a, b]) == 7

    def test_utc_rejected(self):
        with pytest.raises(QueryError, match="not additive"):
            StatsMerge.check_additive([StatisticSpec(UNIQUE_TERMS)])


# ---------------------------------------------------------------------------
# The explain CLI


class TestExplainCLI:
    @pytest.fixture()
    def artefacts(self, tmp_path, corpus_index, catalog):
        from repro.storage import save_catalog, save_index

        index_path = str(tmp_path / "index.json.gz")
        catalog_path = str(tmp_path / "catalog.json.gz")
        save_index(corpus_index, index_path)
        save_catalog(catalog, catalog_path)
        return index_path, catalog_path

    def test_explain_prints_decision(self, artefacts, queries, capsys):
        from repro.cli import main

        index_path, catalog_path = artefacts
        code = main(
            [
                "explain",
                str(queries[0]),
                "--index",
                index_path,
                "--catalog",
                catalog_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chosen:" in out
        assert "predicted model cost:" in out
        assert "actual: model_cost=" in out
        assert "views" in out and "straightforward" in out

    def test_explain_forced_path(self, artefacts, queries, capsys):
        from repro.cli import main

        index_path, _ = artefacts
        code = main(
            [
                "explain",
                str(queries[0]),
                "--index",
                index_path,
                "--path",
                "straightforward",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chosen: straightforward (forced)" in out

    def test_explain_sharded_lists_shards(self, artefacts, queries, capsys):
        from repro.cli import main

        index_path, catalog_path = artefacts
        code = main(
            [
                "explain",
                str(queries[0]),
                "--index",
                index_path,
                "--catalog",
                catalog_path,
                "--shards",
                "2",
                "--executor",
                "serial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-shard execution:" in out
        assert "shard 0:" in out and "shard 1:" in out
