"""Tests for balanced vertex separators (Algorithm 2), with networkx as oracle."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SelectionError
from repro.selection.kag import KeywordAssociationGraph
from repro.selection.separator import Separator, find_balanced_separator


def assert_valid_separator(graph, sep):
    """Removing S0 must disconnect S1 from S2 and partition V."""
    all_vertices = set(graph.vertices)
    assert sep.s1 | sep.s2 | sep.s0 == all_vertices
    assert not (sep.s1 & sep.s2)
    assert not (sep.s1 & sep.s0)
    assert not (sep.s2 & sep.s0)
    for u in sep.s1:
        for v in sep.s2:
            assert not graph.has_edge(u, v), f"S1-S2 edge {u}-{v} survived"


def to_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph.vertices)
    for edge in graph.edges():
        g.add_edge(edge.a, edge.b)
    return g


class TestKnownGraphs:
    def test_two_triangles_bridged_by_vertex(self):
        edges = [
            ("a", "b", 1), ("b", "c", 1), ("a", "c", 1),
            ("c", "d", 1),
            ("d", "e", 1), ("e", "f", 1), ("d", "f", 1),
        ]
        graph = KeywordAssociationGraph.from_edges(edges)
        sep = find_balanced_separator(graph)
        assert_valid_separator(graph, sep)
        # Either c or d alone separates the triangles.
        assert len(sep.s0) == 1
        assert sep.s0 <= {"c", "d"}

    def test_barbell_single_articulation(self):
        edges = []
        for group in (["p", "q", "r", "s"], ["w", "x", "y", "z"]):
            for i in range(4):
                for j in range(i + 1, 4):
                    edges.append((group[i], group[j], 1))
        edges += [("s", "mid", 1), ("mid", "w", 1)]
        graph = KeywordAssociationGraph.from_edges(edges)
        sep = find_balanced_separator(graph)
        assert_valid_separator(graph, sep)
        assert sep.s0 == frozenset({"mid"})
        assert len(sep.s1) == len(sep.s2) == 4

    def test_path_graph(self):
        edges = [(f"v{i}", f"v{i+1}", 1) for i in range(6)]
        graph = KeywordAssociationGraph.from_edges(edges)
        sep = find_balanced_separator(graph)
        assert_valid_separator(graph, sep)
        assert len(sep.s0) == 1  # any internal vertex cuts a path

    def test_clique_raises(self):
        edges = [
            (a, b, 1)
            for i, a in enumerate("abcde")
            for b in "abcde"[i + 1 :]
        ]
        graph = KeywordAssociationGraph.from_edges(edges)
        with pytest.raises(SelectionError):
            find_balanced_separator(graph)

    def test_too_small_raises(self):
        graph = KeywordAssociationGraph.from_edges([("a", "b", 1)])
        with pytest.raises(SelectionError):
            find_balanced_separator(graph)

    def test_max_trials_still_valid(self):
        edges = [(f"v{i}", f"v{i+1}", 1) for i in range(10)]
        graph = KeywordAssociationGraph.from_edges(edges)
        sep = find_balanced_separator(graph, max_trials=3)
        assert_valid_separator(graph, sep)


class TestObjective:
    def test_formula5_value(self):
        sep = Separator(
            s1=frozenset("ab"), s2=frozenset("cde"), s0=frozenset("x")
        )
        assert sep.objective == pytest.approx(1 / 3)

    def test_degenerate_objective_infinite(self):
        sep = Separator(s1=frozenset(), s2=frozenset(), s0=frozenset("x"))
        assert sep.objective == float("inf")


class TestAgainstNetworkx:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_separator_valid_and_competitive(self, seed):
        """On random connected sparse graphs: our separator is valid, and
        its size is at most that of networkx's global minimum node cut
        times a generous slack (ours optimises balance, not raw size)."""
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        vertices = [f"v{i}" for i in range(n)]
        edges = [(vertices[i], vertices[i + 1], 1) for i in range(n - 1)]
        extra = rng.randint(0, n)
        for _ in range(extra):
            u, v = rng.sample(vertices, 2)
            edges.append((u, v, 1))
        graph = KeywordAssociationGraph.from_edges(edges, vertices=vertices)
        nx_graph = to_networkx(graph)
        # Skip graphs that are (near-)complete: no balanced separator.
        if graph.num_edges() >= (n * (n - 1)) // 2 - 1:
            return
        try:
            sep = find_balanced_separator(graph)
        except SelectionError:
            # Legitimate for dense graphs; verify networkx agrees no small
            # cut exists relative to n.
            return
        assert_valid_separator(graph, sep)
        # networkx minimum node cut (global) as a lower bound on |S0|.
        min_cut = min(
            (
                len(nx.minimum_node_cut(nx_graph, u, v))
                for u in sep.s1
                for v in sep.s2
                if not nx_graph.has_edge(u, v)
            ),
            default=0,
        )
        assert len(sep.s0) >= min_cut  # ours can't beat the true minimum
