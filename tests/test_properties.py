"""Cross-module property tests over randomly generated corpora.

These are the heavyweight invariants: for corpora drawn from random
seeds, the statements the architecture rests on must hold — views never
change answers, cost bounds dominate observed work, selection guarantees
survive, rankings are deterministic.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    generate_corpus,
    select_views,
)
from repro.core.cost import estimate_straightforward_cost
from repro.core.query import ContextQuery, ContextSpecification, KeywordQuery
from repro.core.statistics import cardinality_spec, df_spec, total_length_spec
from repro.core.plan import StraightforwardPlan
from repro.errors import EmptyContextError

CORPUS_SETTINGS = dict(
    num_docs=500,
    num_roots=3,
    depth=2,
    branching=3,
    vocabulary_size=800,
)


@pytest.fixture(scope="module")
def stacks():
    """Three small systems from distinct seeds, with views."""
    built = []
    for seed in (11, 22, 33):
        corpus = generate_corpus(CorpusConfig(seed=seed, **CORPUS_SETTINGS))
        index = corpus.build_index()
        t_c = max(index.num_docs // 25, 5)
        catalog, _ = select_views(index, t_c=t_c, t_v=64)
        built.append(
            {
                "corpus": corpus,
                "index": index,
                "catalog": catalog,
                "with_views": ContextSearchEngine(index, catalog=catalog),
                "plain": ContextSearchEngine(index),
            }
        )
    return built


def _sample_query(stack, rng_draw):
    """Draw a plausible query over one stack."""
    index = stack["index"]
    predicates = sorted(
        index.predicate_vocabulary, key=index.predicate_frequency, reverse=True
    )
    terms = sorted(
        index.vocabulary, key=index.document_frequency, reverse=True
    )
    predicate = predicates[rng_draw("pred", 0, min(9, len(predicates) - 1))]
    keyword = terms[rng_draw("term", 0, min(30, len(terms) - 1))]
    return ContextQuery(
        KeywordQuery([keyword]), ContextSpecification([predicate])
    )


class TestViewsNeverChangeAnswers:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_identical_rankings(self, stacks, data):
        stack = data.draw(st.sampled_from(stacks))

        def rng_draw(label, low, high):
            return data.draw(st.integers(low, high), label=label)

        query = _sample_query(stack, rng_draw)
        try:
            a = stack["with_views"].search(query)
            b = stack["plain"].search(query)
        except EmptyContextError:
            return
        assert [h.doc_id for h in a.hits] == [h.doc_id for h in b.hits]
        for ha, hb in zip(a.hits, b.hits):
            assert abs(ha.score - hb.score) < 1e-10


class TestCostBounds:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_observed_work_within_analytic_bounds(self, stacks, data):
        stack = data.draw(st.sampled_from(stacks))

        def rng_draw(label, low, high):
            return data.draw(st.integers(low, high), label=label)

        query = _sample_query(stack, rng_draw)
        plan = StraightforwardPlan(stack["index"])
        specs = [
            cardinality_spec(),
            total_length_spec(),
            df_spec(query.keywords[0]),
        ]
        try:
            execution = plan.execute(query, specs)
        except EmptyContextError:
            return
        estimate = estimate_straightforward_cost(stack["index"], query)
        # Proposition 3.1 flavour: observed entry touches stay within the
        # analytic component bounds (with the plan's per-keyword scans).
        assert execution.counter.entries_scanned <= 2 * estimate.total

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_context_size_bounded_by_proposition(self, stacks, data):
        stack = data.draw(st.sampled_from(stacks))

        def rng_draw(label, low, high):
            return data.draw(st.integers(low, high), label=label)

        query = _sample_query(stack, rng_draw)
        index = stack["index"]
        bound = sum(
            index.predicate_frequency(m) for m in query.predicates
        )
        try:
            result = stack["plain"].search(query)
        except EmptyContextError:
            return
        assert result.report.context_size <= bound


class TestDeterminism:
    def test_identical_seeds_identical_systems(self):
        """End-to-end determinism: everything derived from a config is
        reproducible, including selections and rankings."""
        outputs = []
        for _ in range(2):
            corpus = generate_corpus(CorpusConfig(seed=99, **CORPUS_SETTINGS))
            index = corpus.build_index()
            catalog, report = select_views(
                index, t_c=max(index.num_docs // 25, 5), t_v=64
            )
            engine = ContextSearchEngine(index, catalog=catalog)
            predicate = max(
                index.predicate_vocabulary, key=index.predicate_frequency
            )
            term = max(
                list(index.vocabulary)[:50], key=index.document_frequency
            )
            result = engine.search(f"{term} | {predicate}")
            outputs.append(
                (
                    sorted(map(sorted, report.keyword_sets)),
                    result.external_ids(),
                    [h.score for h in result.hits],
                )
            )
        assert outputs[0] == outputs[1]
