"""End-to-end CLI tests: generate → index → select → search → stats."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """Run the full CLI pipeline once into a temp directory."""
    root = tmp_path_factory.mktemp("cli")
    corpus = str(root / "corpus.json.gz")
    index = str(root / "index.json.gz")
    catalog = str(root / "catalog.json.gz")
    assert main([
        "generate", "--docs", "800", "--seed", "9", "--out", corpus
    ]) == 0
    assert main(["index", "--corpus", corpus, "--out", index]) == 0
    assert main([
        "select", "--index", index, "--t-c-percent", "5",
        "--t-v", "128", "--out", catalog,
    ]) == 0
    return {"corpus": corpus, "index": index, "catalog": catalog}


class TestPipeline:
    def test_artefacts_exist(self, artefacts):
        from pathlib import Path

        for path in artefacts.values():
            assert Path(path).exists()

    def test_search_with_catalog(self, artefacts, capsys):
        from repro.storage import load_catalog, load_index

        index = load_index(artefacts["index"])
        catalog = load_catalog(artefacts["catalog"])
        covered = next(iter(catalog)).keyword_set
        predicate = max(sorted(covered), key=index.predicate_frequency)
        term = max(
            list(index.vocabulary)[:100], key=index.document_frequency
        )
        code = main([
            "search", f"{term} | {predicate}",
            "--index", artefacts["index"],
            "--catalog", artefacts["catalog"],
            "--top-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "context-sensitive results" in out
        assert "path=views" in out

    def test_search_conventional_and_disjunctive(self, artefacts, capsys):
        from repro.storage import load_index

        index = load_index(artefacts["index"])
        predicate = max(
            index.predicate_vocabulary, key=index.predicate_frequency
        )
        term = max(
            list(index.vocabulary)[:100], key=index.document_frequency
        )
        query = f"{term} | {predicate}"
        assert main([
            "search", query, "--index", artefacts["index"], "--conventional",
        ]) == 0
        assert "conventional results" in capsys.readouterr().out
        assert main([
            "search", query, "--index", artefacts["index"],
            "--disjunctive", "--model", "bm25",
        ]) == 0
        assert "disjunctive results" in capsys.readouterr().out

    def test_stats(self, artefacts, capsys):
        assert main([
            "stats", "--index", artefacts["index"],
            "--catalog", artefacts["catalog"],
        ]) == 0
        out = capsys.readouterr().out
        assert "documents: 800" in out
        assert "views:" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
