"""End-to-end CLI tests: generate → index → select → search → stats."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """Run the full CLI pipeline once into a temp directory."""
    root = tmp_path_factory.mktemp("cli")
    corpus = str(root / "corpus.json.gz")
    index = str(root / "index.json.gz")
    catalog = str(root / "catalog.json.gz")
    assert main([
        "generate", "--docs", "800", "--seed", "9", "--out", corpus
    ]) == 0
    assert main(["index", "--corpus", corpus, "--out", index]) == 0
    assert main([
        "select", "--index", index, "--t-c-percent", "5",
        "--t-v", "128", "--out", catalog,
    ]) == 0
    return {"corpus": corpus, "index": index, "catalog": catalog}


class TestPipeline:
    def test_artefacts_exist(self, artefacts):
        from pathlib import Path

        for path in artefacts.values():
            assert Path(path).exists()

    def test_search_with_catalog(self, artefacts, capsys):
        from repro.storage import load_catalog, load_index

        index = load_index(artefacts["index"])
        catalog = load_catalog(artefacts["catalog"])
        covered = next(iter(catalog)).keyword_set
        predicate = max(sorted(covered), key=index.predicate_frequency)
        term = max(
            list(index.vocabulary)[:100], key=index.document_frequency
        )
        code = main([
            "search", f"{term} | {predicate}",
            "--index", artefacts["index"],
            "--catalog", artefacts["catalog"],
            "--top-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "context-sensitive results" in out
        assert "path=views" in out

    def test_search_conventional_and_disjunctive(self, artefacts, capsys):
        from repro.storage import load_index

        index = load_index(artefacts["index"])
        predicate = max(
            index.predicate_vocabulary, key=index.predicate_frequency
        )
        term = max(
            list(index.vocabulary)[:100], key=index.document_frequency
        )
        query = f"{term} | {predicate}"
        assert main([
            "search", query, "--index", artefacts["index"], "--conventional",
        ]) == 0
        assert "conventional results" in capsys.readouterr().out
        assert main([
            "search", query, "--index", artefacts["index"],
            "--disjunctive", "--model", "bm25",
        ]) == 0
        assert "disjunctive results" in capsys.readouterr().out

    def test_stats(self, artefacts, capsys):
        assert main([
            "stats", "--index", artefacts["index"],
            "--catalog", artefacts["catalog"],
        ]) == 0
        out = capsys.readouterr().out
        assert "documents: 800" in out
        assert "views:" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestShardedPipeline:
    """CLI sharding: build with --shards, auto-detect, re-shard at load."""

    @pytest.fixture(scope="class")
    def sharded_index_path(self, artefacts, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-sharded") / "sharded.json.gz")
        assert main([
            "index", "--corpus", artefacts["corpus"],
            "--shards", "3", "--partitioner", "hash", "--out", path,
        ]) == 0
        return path

    @pytest.fixture(scope="class")
    def probe_query(self, artefacts):
        from repro.storage import load_index

        index = load_index(artefacts["index"])
        predicate = max(
            index.predicate_vocabulary, key=index.predicate_frequency
        )
        term = max(list(index.vocabulary)[:100], key=index.document_frequency)
        return f"{term} | {predicate}"

    def test_sharded_search_matches_flat(
        self, artefacts, sharded_index_path, probe_query, capsys
    ):
        assert main([
            "search", probe_query, "--index", artefacts["index"],
            "--top-k", "5",
        ]) == 0
        flat_out = capsys.readouterr().out
        assert main([
            "search", probe_query, "--index", sharded_index_path,
            "--top-k", "5", "--executor", "serial",
        ]) == 0
        sharded_out = capsys.readouterr().out
        assert "shards=3 executor=serial" in sharded_out
        flat_hits = [l for l in flat_out.splitlines() if "score=" in l]
        sharded_hits = [l for l in sharded_out.splitlines() if "score=" in l]
        assert flat_hits == sharded_hits

    def test_reshard_flat_index_at_load(
        self, artefacts, probe_query, capsys
    ):
        assert main([
            "search", probe_query, "--index", artefacts["index"],
            "--top-k", "5", "--shards", "4", "--partitioner", "range",
            "--executor", "serial",
        ]) == 0
        assert "shards=4 executor=serial" in capsys.readouterr().out

    def test_sharded_batch(
        self, sharded_index_path, probe_query, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            f"{probe_query}\nnosuchword | NoSuchPredicate\n"
        )
        assert main([
            "batch", "--queries", str(queries),
            "--index", sharded_index_path, "--executor", "serial",
            "--top-k", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "ok    " in out
        assert "error " in out
        assert "workers=3" in out

    def test_sharded_stats(self, sharded_index_path, capsys):
        assert main(["stats", "--index", sharded_index_path]) == 0
        out = capsys.readouterr().out
        assert "shards: 3 (hash-partitioned)" in out
        assert "documents: 800" in out


class TestServing:
    """The serve/bench-serve commands and the load generator."""

    @pytest.fixture(scope="class")
    def query_file(self, artefacts, tmp_path_factory):
        from repro.storage import load_index

        index = load_index(artefacts["index"])
        predicate = max(
            index.predicate_vocabulary, key=index.predicate_frequency
        )
        terms = sorted(
            list(index.vocabulary)[:200], key=index.document_frequency
        )[-8:]
        path = tmp_path_factory.mktemp("cli-serve") / "queries.txt"
        path.write_text(
            "".join(f"{term} | {predicate}\n" for term in terms)
        )
        return str(path)

    def test_bench_serve(self, artefacts, query_file, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        code = main([
            "bench-serve", "--index", artefacts["index"],
            "--queries", query_file, "--threads", "4", "--repeat", "2",
            "--max-wait-ms", "5", "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench-serve:" in out and "throughput:" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["load"]["errors"] == 0
        assert payload["load"]["ok"] == payload["load"]["sent"] == 16
        assert payload["load"]["qps"] > 0
        assert payload["server"]["ok"] == 16

    def test_serve_command_over_socket(self, artefacts):
        import threading
        import time

        from repro.service import ServiceClient
        from repro.storage import load_index

        # Drive the serve command's own machinery in-process: same
        # engine construction as `python -m repro serve`, but via
        # ServerThread so the test can stop it.
        from repro.cli import build_parser, _load_engine, _service_config
        from repro.service import ServerThread

        args = build_parser().parse_args([
            "serve", "--index", artefacts["index"], "--port", "0",
        ])
        engine, needs_close = _load_engine(args)
        # Flat engines own their (possibly mmap-backed) index now and
        # must be closed by the caller.
        assert needs_close
        assert not hasattr(engine, "sharded_index")
        try:
            with ServerThread(engine, _service_config(args)) as st:
                host, port = st.address
                with ServiceClient(host, port) as client:
                    assert client.healthz()["status"] == "ok"
                    index = load_index(artefacts["index"])
                    predicate = max(
                        index.predicate_vocabulary,
                        key=index.predicate_frequency,
                    )
                    index.close()
                    response = client.query(f"disease | {predicate}")
                    assert response["status"] in ("ok", "error")
        finally:
            engine.close()


class TestErrorExits:
    """Operational failures exit 2 with a readable message, no traceback."""

    def test_missing_index(self, capsys):
        code = main(["stats", "--index", "/nonexistent/index.json.gz"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "/nonexistent/index.json.gz" in err

    def test_corrupt_index(self, tmp_path, capsys):
        bad = tmp_path / "index.json.gz"
        bad.write_bytes(b"this is not gzip or json")
        code = main(["stats", "--index", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "corrupt artefact" in err

    def test_truncated_gzip_index(self, artefacts, tmp_path, capsys):
        from pathlib import Path

        whole = Path(artefacts["index"]).read_bytes()
        bad = tmp_path / "truncated.json.gz"
        bad.write_bytes(whole[: len(whole) // 2])
        code = main(["search", "a | b", "--index", str(bad)])
        assert code == 2
        assert "corrupt artefact" in capsys.readouterr().err

    def test_wrong_artefact_kind(self, artefacts, capsys):
        code = main(["stats", "--index", artefacts["corpus"]])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "expected a persisted" in err

    def test_bad_query_is_readable(self, artefacts, capsys):
        code = main([
            "search", "no separator here", "--index", artefacts["index"],
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "|" in err

    def test_port_in_use_is_readable(self, artefacts, capsys):
        import socket

        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        holder.listen(1)
        port = holder.getsockname()[1]
        try:
            code = main([
                "serve", "--index", artefacts["index"],
                "--port", str(port),
            ])
        finally:
            holder.close()
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_query_file(self, artefacts, capsys):
        code = main([
            "bench-serve", "--index", artefacts["index"],
            "--queries", "/nonexistent/queries.txt",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
