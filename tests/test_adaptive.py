"""Continuous workload-adaptive view selection: recorder → reselector → swap.

Covers the whole adaptive loop at every layer: the swappable
:class:`CatalogHandle`, the serving-side :class:`WorkloadRecorder`, the
``workload_from_queries``/``needs_reselection`` selector inputs, the
:class:`IncrementalReselector`'s reuse semantics, catalog hot-swaps on
the flat / sharded / lifecycle engines (mutate-catalog-then-requery must
invalidate plans and caches but never change a ranking), the
:class:`QueryService` integration, and the CLI surface.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest

from repro import (
    AdaptiveConfig,
    AdaptiveSelectionController,
    ContextSearchEngine,
    Document,
    IncrementalReselector,
    ShardedEngine,
    ShardedInvertedIndex,
    ViewCatalog,
    WorkloadRecorder,
    build_index,
    evaluate_coverage,
    fork_available,
    materialize_view,
    needs_reselection,
    replicate_catalog,
    save_catalog,
    workload_from_queries,
)
from repro import cli
from repro.errors import QueryError, SelectionError
from repro.lifecycle import LifecycleEngine, SegmentedIndex
from repro.selection.workload_driven import WorkloadEntry
from repro.service import (
    QueryService,
    Request,
    ServiceConfig,
    ServiceMetrics,
)
from repro.views import CatalogHandle, WideSparseTable
from repro.views.maintenance import MaintenanceReport

from .conftest import HANDMADE_DOCS

QUERY = "pancreas | DigestiveSystem"

GROWTH_DOCS = [
    Document(
        "X1",
        {
            "title": "pancreas imaging advances",
            "abstract": "pancreas scan methods and outcomes",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "X2",
        {
            "title": "leukemia relapse study",
            "abstract": "leukemia relapse outcomes",
            "mesh": "Diseases Neoplasms",
        },
    ),
]


def hit_tuples(results):
    return [(h.doc_id, h.external_id, h.score) for h in results.hits]


def assert_same_ranking(a, b):
    """Bit-identity up to float noise: same docs, same order, same scores."""
    assert a.external_ids() == b.external_ids()
    for ha, hb in zip(a.hits, b.hits):
        assert ha.score == pytest.approx(hb.score, abs=1e-12)


def digestive_catalog(index, keywords=("pancreas",)) -> ViewCatalog:
    """A one-view catalog covering the ``DigestiveSystem`` context."""
    table = WideSparseTable.from_index(index)
    view = materialize_view(
        table,
        {"DigestiveSystem"},
        df_terms=list(keywords),
        tc_terms=list(keywords),
    )
    return ViewCatalog([view])


def ctx(*predicates):
    return SimpleNamespace(predicates=tuple(predicates))


def make_service(engine, **overrides) -> QueryService:
    return QueryService(engine, ServiceConfig(**overrides))


def run_async(coro):
    return asyncio.run(coro)


def query_request(text, top_k=6, **kwargs) -> Request:
    return Request(op="query", query=text, top_k=top_k, **kwargs)


# ---------------------------------------------------------------------------
# CatalogHandle


class TestCatalogHandle:
    def test_ensure_wraps_and_passes_through(self, handmade_index):
        bare = CatalogHandle.ensure(None)
        assert bare.catalog is None and bare.generation == 0

        catalog = digestive_catalog(handmade_index)
        wrapped = CatalogHandle.ensure(catalog)
        assert wrapped.catalog is catalog

        assert CatalogHandle.ensure(wrapped) is wrapped  # no double-wrap

    def test_swap_bumps_generation(self, handmade_index):
        handle = CatalogHandle()
        catalog = digestive_catalog(handmade_index)
        assert handle.swap(catalog) == 1
        assert handle.swap(None) == 2
        assert handle.catalog is None and handle.generation == 2

    def test_get_reads_pair_consistently(self, handmade_index):
        catalog = digestive_catalog(handmade_index)
        handle = CatalogHandle(catalog, generation=5)
        assert handle.get() == (catalog, 5)

    def test_shared_handle_is_one_swap_point(self, handmade_index):
        handle = CatalogHandle()
        engine = ContextSearchEngine(handmade_index, catalog=handle)
        assert engine.catalog is None
        handle.swap(digestive_catalog(handmade_index))
        assert engine.catalog is handle.catalog
        assert engine.catalog_generation == 1


# ---------------------------------------------------------------------------
# WorkloadRecorder


class TestWorkloadRecorder:
    def test_empty_context_is_skipped(self):
        recorder = WorkloadRecorder()
        recorder.record([])
        assert len(recorder) == 0
        assert recorder.total_recorded == 0
        assert recorder.to_workload() == []

    def test_record_aggregates_and_tracks_context_size(self):
        recorder = WorkloadRecorder()
        recorder.record(["B", "A"], context_size=3)
        recorder.record(["A", "B"], context_size=7)
        recorder.record(["A", "B"], context_size=2)  # max() wins, not last
        [entry] = recorder.to_workload()
        assert entry.predicates == frozenset({"A", "B"})
        assert entry.frequency == 3
        assert entry.context_size == 7
        assert recorder.total_recorded == 3

    def test_capacity_evicts_lowest_weight(self):
        recorder = WorkloadRecorder(capacity=2)
        for _ in range(3):
            recorder.record(["A"])
        recorder.record(["B"])
        recorder.record(["C"])  # overflow: B (weight 1, ties sort first)
        kept = {entry.predicates for entry in recorder.to_workload()}
        assert kept == {frozenset({"A"}), frozenset({"C"})}

    def test_capacity_must_be_positive(self):
        with pytest.raises(SelectionError):
            WorkloadRecorder(capacity=0)

    def test_decay_drops_below_floor(self):
        recorder = WorkloadRecorder()
        recorder.record(["A"])
        recorder.record(["B"])
        recorder.record(["B"])
        recorder.decay(0.04)  # A: 0.04 < floor 0.05; B: 0.08 survives
        [entry] = recorder.to_workload()
        assert entry.predicates == frozenset({"B"})
        assert entry.frequency == 1  # decayed weights floor at frequency 1

    def test_decay_factor_validated(self):
        recorder = WorkloadRecorder()
        for factor in (0.0, -0.5, 1.5):
            with pytest.raises(SelectionError):
                recorder.decay(factor)

    def test_mark_resets_since_mark_only(self):
        recorder = WorkloadRecorder()
        recorder.record(["A"])
        recorder.record(["B"])
        assert recorder.stats()["recorded_since_mark"] == 2
        recorder.mark()
        stats = recorder.stats()
        assert stats["recorded_since_mark"] == 0
        assert stats["total_recorded"] == 2
        assert stats["distinct_contexts"] == 2

    def test_to_workload_deterministic_order(self):
        recorder = WorkloadRecorder()
        recorder.record(["C"])
        recorder.record(["A", "B"])
        recorder.record(["B"])
        predicates = [e.predicates for e in recorder.to_workload()]
        assert predicates == [
            frozenset({"A", "B"}),
            frozenset({"B"}),
            frozenset({"C"}),
        ]


# ---------------------------------------------------------------------------
# workload_from_queries / needs_reselection


class TestWorkloadFromQueries:
    def test_empty_contexts_skipped_and_duplicates_merged(self):
        workload = workload_from_queries(
            [ctx("A"), ctx(), ctx("A"), ctx("B")]
        )
        assert workload == [
            WorkloadEntry(frozenset({"A"}), frequency=2),
            WorkloadEntry(frozenset({"B"}), frequency=1),
        ]

    def test_decay_weights_recency(self):
        # B is 3 steps stale: 0.5^3 rounds to the frequency floor of 1,
        # while the recent A repeats accumulate 1 + 0.5 + 0.25 -> 2.
        workload = workload_from_queries(
            [ctx("B"), ctx("A"), ctx("A"), ctx("A")], decay=0.5
        )
        by_key = {e.predicates: e.frequency for e in workload}
        assert by_key == {frozenset({"A"}): 2, frozenset({"B"}): 1}

    def test_decay_validated(self):
        for decay in (0.0, -1.0, 1.01):
            with pytest.raises(SelectionError):
                workload_from_queries([ctx("A")], decay=decay)

    def test_context_sizes_attach(self):
        workload = workload_from_queries(
            [ctx("A")], context_sizes={frozenset({"A"}): 9}
        )
        assert workload[0].context_size == 9


class TestNeedsReselection:
    def test_views_over_tv_triggers(self):
        report = MaintenanceReport(views_over_tv=[frozenset({"A"})])
        assert needs_reselection(report)

    def test_growth_threshold_is_strict(self):
        over = MaintenanceReport(growth_since_selection=0.25)
        at = MaintenanceReport(growth_since_selection=0.2)
        under = MaintenanceReport(growth_since_selection=0.1)
        assert needs_reselection(over, growth_threshold=0.2)
        assert not needs_reselection(at, growth_threshold=0.2)
        assert not needs_reselection(under, growth_threshold=0.2)


# ---------------------------------------------------------------------------
# IncrementalReselector


class TestIncrementalReselector:
    WORKLOAD = [
        WorkloadEntry(frozenset({"DigestiveSystem"}), frequency=5),
        WorkloadEntry(frozenset({"Diseases", "Neoplasms"}), frequency=3),
    ]

    def test_budget_validated(self):
        with pytest.raises(SelectionError):
            IncrementalReselector(storage_budget=0)

    def test_reselect_builds_catalog_and_report(self, handmade_index):
        reselector = IncrementalReselector(storage_budget=100_000)
        catalog, report = reselector.reselect(
            handmade_index, self.WORKLOAD, trigger="drift"
        )
        assert report.trigger == "drift"
        assert report.num_views == len(catalog) > 0
        assert report.built_views == report.num_views
        assert report.reused_views == 0
        assert report.num_docs == handmade_index.num_docs
        assert report.workload_coverage == pytest.approx(
            evaluate_coverage(report.keyword_sets, self.WORKLOAD)
        )
        summary = report.to_dict()
        assert summary["trigger"] == "drift"
        assert summary["num_views"] == report.num_views

    def test_unchanged_views_are_reused_not_rebuilt(self, handmade_index):
        reselector = IncrementalReselector(storage_budget=100_000)
        first, _ = reselector.reselect(handmade_index, self.WORKLOAD)
        second, report = reselector.reselect(
            handmade_index, self.WORKLOAD, previous_catalog=first
        )
        assert report.reused_views == report.num_views
        assert report.built_views == 0
        previous = {id(view) for view in first}
        assert all(id(view) in previous for view in second)
        assert second is not first  # always a fresh catalog object

    def test_t_c_change_forces_rebuild(self, handmade_index):
        base = IncrementalReselector(storage_budget=100_000)
        first, _ = base.reselect(handmade_index, self.WORKLOAD)
        stricter = IncrementalReselector(storage_budget=100_000, t_c=50)
        _, report = stricter.reselect(
            handmade_index, self.WORKLOAD, previous_catalog=first
        )
        assert report.reused_views == 0
        assert report.built_views == report.num_views

    def test_effective_t_c_tracks_collection(self, handmade_index):
        auto = IncrementalReselector(storage_budget=10)
        assert auto.effective_t_c(handmade_index) == 2  # max(2, 6 // 100)
        pinned = IncrementalReselector(storage_budget=10, t_c=7)
        assert pinned.effective_t_c(handmade_index) == 7


# ---------------------------------------------------------------------------
# Engine-level hot swaps: mutate the catalog, requery, rankings unchanged


class TestFlatEngineSwap:
    def test_swap_flips_path_not_ranking(self, handmade_index):
        engine = ContextSearchEngine(handmade_index)
        before = engine.search(QUERY, top_k=6)
        assert before.report.resolution.path == "straightforward"

        generation = engine.swap_catalog(digestive_catalog(handmade_index))
        assert generation == engine.catalog_generation == 1

        after = engine.search(QUERY, top_k=6)
        assert after.report.resolution.path == "views"
        assert_same_ranking(after, before)

        forced = engine.search(QUERY, top_k=6, path="views")
        assert_same_ranking(forced, before)

    def test_swap_to_none_drops_views(self, handmade_index):
        engine = ContextSearchEngine(
            handmade_index, catalog=digestive_catalog(handmade_index)
        )
        assert engine.search(QUERY, top_k=6).report.resolution.path == "views"
        assert engine.swap_catalog(None) == 1
        assert engine.catalog is None
        after = engine.search(QUERY, top_k=6)
        assert after.report.resolution.path == "straightforward"


class TestShardedEngineSwap:
    @pytest.fixture()
    def sharded(self, handmade_index):
        return ShardedInvertedIndex.from_index(
            handmade_index, 3, partitioner="hash"
        )

    def test_swap_catalogs_flips_path_not_ranking(
        self, handmade_index, sharded
    ):
        catalog = digestive_catalog(handmade_index)
        with ShardedEngine(sharded, executor="serial") as engine:
            before = engine.search(QUERY, top_k=6)
            assert (
                before.report.resolution.path == "sharded-straightforward"
            )
            generation = engine.swap_catalogs(
                replicate_catalog(sharded, catalog)
            )
            assert generation == engine.catalog_generation == 1
            after = engine.search(QUERY, top_k=6)
            # Shards whose slice has no matching docs fall back per
            # shard, so the merged label is views or mixed — never pure
            # straightforward.
            assert after.report.resolution.path in (
                "sharded-views",
                "sharded-mixed",
            )
            assert_same_ranking(after, before)

    def test_swap_catalogs_validates_count(self, sharded):
        with ShardedEngine(sharded, executor="serial") as engine:
            with pytest.raises(QueryError):
                engine.swap_catalogs([None])  # 1 catalog for 3 shards

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method missing"
    )
    def test_fork_backend_refuses_swap(self, sharded):
        with ShardedEngine(sharded, executor="fork") as engine:
            with pytest.raises(QueryError, match="fork"):
                engine.swap_catalogs(None)


class TestLifecycleEngineSwap:
    def test_install_catalog_is_rank_safe_epoch_bump(self):
        engine = LifecycleEngine(SegmentedIndex())
        try:
            engine.ingest(HANDMADE_DOCS)
            engine.flush()
            before = engine.search(QUERY, top_k=6)
            truth = engine.search(QUERY, top_k=6, path="straightforward")
            assert_same_ranking(before, truth)
            epoch_before = engine.epoch

            reselector = IncrementalReselector(storage_budget=100_000)
            catalog, report = reselector.reselect(
                engine.index.snapshot(),
                [WorkloadEntry(frozenset({"DigestiveSystem"}), frequency=4)],
                trigger="lifecycle",
            )
            generation = engine.install_catalog(
                catalog, info=report.to_dict()
            )
            assert generation == engine.catalog_generation == 1
            assert engine.epoch > epoch_before  # version-boundary install
            assert engine.last_reselection["trigger"] == "lifecycle"

            after = engine.search(QUERY, top_k=6)
            assert_same_ranking(after, before)
        finally:
            engine.close()

    def test_maintenance_hooks_fire_on_flush_and_compact(self):
        engine = LifecycleEngine(SegmentedIndex())
        try:
            events = []
            engine.add_maintenance_hook(events.append)
            engine.ingest(HANDMADE_DOCS[:3])
            engine.flush()
            engine.ingest(HANDMADE_DOCS[3:])
            engine.flush()
            engine.compact(full=True)
            assert events == ["flush", "flush", "compact"]
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# QueryService: swap invalidates served results, metrics expose the loop


class TestQueryServiceSwap:
    def test_swap_invalidates_cached_results_not_rankings(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        service = make_service(engine)
        try:
            before = run_async(service.handle_request(query_request(QUERY)))
            cached = run_async(service.handle_request(query_request(QUERY)))
            assert cached["cached"] is True

            engine.swap_catalog(digestive_catalog(engine.index))
            assert service.catalog_generation == 1

            after = run_async(service.handle_request(query_request(QUERY)))
        finally:
            service.close()
        assert "cached" not in after  # generation is part of the epoch
        assert service.result_cache.metrics.stale_drops == 1
        assert after["report"]["resolution"]["path"] == "views"
        assert [h["doc"] for h in after["hits"]] == [
            h["doc"] for h in before["hits"]
        ]
        assert [h["score"] for h in after["hits"]] == pytest.approx(
            [h["score"] for h in before["hits"]], abs=1e-12
        )

    def test_recorder_sees_hits_and_misses(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        service = make_service(engine)
        service.recorder = WorkloadRecorder()
        try:
            run_async(service.handle_request(query_request(QUERY)))
            hit = run_async(service.handle_request(query_request(QUERY)))
            assert hit["cached"] is True
        finally:
            service.close()
        # A cache hit is still demand signal: both servings recorded.
        assert service.recorder.total_recorded == 2
        [entry] = service.recorder.to_workload()
        assert entry.predicates == frozenset({"DigestiveSystem"})
        assert entry.frequency == 2
        assert entry.context_size > 0

    def test_metrics_and_healthz_surface_adaptive_state(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        service = make_service(engine)
        controller = AdaptiveSelectionController(
            engine,
            IncrementalReselector(storage_budget=100_000),
            config=AdaptiveConfig(min_queries=1),
            metrics=service.metrics,
        )
        service.recorder = controller.recorder
        service.adaptive = controller
        try:
            run_async(service.handle_request(query_request(QUERY)))
            report = controller.run_once(trigger="drift")
            assert report is not None
            run_async(service.handle_request(query_request(QUERY)))

            metrics = run_async(service.handle_request(Request(op="metrics")))
            health = run_async(service.handle_request(Request(op="healthz")))
        finally:
            service.close()
        assert metrics["catalog_generation"] == 1
        assert metrics["paths"]["straightforward"] == 1
        assert metrics["paths"]["views"] == 1
        assert metrics["adaptive"]["reselections"] == 1
        assert metrics["adaptive"]["catalog_generation"] == 1
        assert health["catalog_generation"] == 1
        assert health["adaptive"]["reselections"] == 1
        assert health["adaptive"]["last_reselection"]["trigger"] == "drift"


class TestServiceMetricsPaths:
    def test_observe_path_buckets(self):
        metrics = ServiceMetrics()
        metrics.observe_path(None)  # timeouts/errors: no path, no count
        for path in (
            "views",
            "sharded-views",
            "straightforward",
            "sharded-straightforward",
            "sharded-mixed",
            "conventional",
        ):
            metrics.observe_path(path)
        paths = metrics.snapshot()["paths"]
        assert paths["views"] == 2
        assert paths["straightforward"] == 2
        assert paths["mixed"] == 1
        assert paths["conventional"] == 1
        # Conventional-mode queries never had a view to hit; they are
        # excluded from the denominator.
        assert paths["view_hit_rate"] == pytest.approx(2 / 5)

    def test_observe_reselection(self):
        metrics = ServiceMetrics()
        metrics.observe_reselection(3, {"trigger": "growth"})
        adaptive = metrics.snapshot()["adaptive"]
        assert adaptive["reselections"] == 1
        assert adaptive["catalog_generation"] == 3
        assert adaptive["last_reselection"]["trigger"] == "growth"


# ---------------------------------------------------------------------------
# AdaptiveSelectionController


class TestAdaptiveController:
    @staticmethod
    def controller(engine, **config):
        return AdaptiveSelectionController(
            engine,
            IncrementalReselector(storage_budget=100_000),
            config=AdaptiveConfig(**config),
        )

    def test_coverage_trigger(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        controller = self.controller(engine, min_queries=1)
        controller.recorder.record(["DigestiveSystem"], context_size=3)
        # No catalog installed -> coverage 0 < threshold.
        assert controller.should_reselect() == "coverage"

    def test_coverage_needs_min_queries(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        controller = self.controller(engine, min_queries=5)
        controller.recorder.record(["DigestiveSystem"])
        assert controller.should_reselect() is None

    def test_growth_trigger(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        controller = self.controller(engine, min_queries=10**6)
        assert controller.should_reselect() is None
        engine.index.append_documents(GROWTH_DOCS)  # 2/6 > 0.2
        assert controller.should_reselect() == "growth"

    def test_run_once_installs_marks_and_reports(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        controller = self.controller(engine, min_queries=1)
        controller.recorder.record(["DigestiveSystem"], context_size=3)
        before = engine.search(QUERY, top_k=6)

        report = controller.run_once()
        assert report is not None and report.trigger == "coverage"
        assert engine.catalog is not None
        assert engine.catalog_generation == 1
        assert controller.reselections == 1
        assert controller.last_report is report
        assert controller.recorder.stats()["recorded_since_mark"] == 0

        after = engine.search(QUERY, top_k=6)
        assert after.report.resolution.path == "views"
        assert_same_ranking(after, before)

        # Covered workload + no growth: the loop settles.
        assert controller.should_reselect() is None
        info = controller.info()
        assert info["catalog_generation"] == 1
        assert info["reselections"] == 1
        assert info["last_reselection"]["trigger"] == "coverage"
        assert info["last_error"] is None
        assert info["recorder"]["distinct_contexts"] == 1

    def test_run_once_with_empty_recorder_is_a_noop(self):
        engine = ContextSearchEngine(build_index(HANDMADE_DOCS))
        controller = self.controller(engine)
        assert controller.run_once(trigger="manual") is None
        assert engine.catalog_generation == 0

    def test_sharded_needs_reference_index(self, handmade_index):
        sharded = ShardedInvertedIndex.from_index(
            handmade_index, 2, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="serial") as engine:
            with pytest.raises(QueryError, match="reference"):
                self.controller(engine)

    def test_sharded_with_reference_reselects_per_shard(
        self, handmade_index
    ):
        sharded = ShardedInvertedIndex.from_index(
            handmade_index, 2, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="serial") as engine:
            controller = AdaptiveSelectionController(
                engine,
                IncrementalReselector(storage_budget=100_000),
                config=AdaptiveConfig(min_queries=1),
                reference_index=handmade_index,
            )
            controller.recorder.record(["DigestiveSystem"], context_size=3)
            before = engine.search(QUERY, top_k=6)
            report = controller.run_once(trigger="drift")
            assert report is not None
            assert engine.catalog_generation == 1
            after = engine.search(QUERY, top_k=6)
            assert after.report.resolution.path in (
                "sharded-views",
                "sharded-mixed",
            )
            assert_same_ranking(after, before)

    @pytest.mark.skipif(
        not fork_available(), reason="fork start method missing"
    )
    def test_fork_backend_rejected_at_construction(self, handmade_index):
        sharded = ShardedInvertedIndex.from_index(
            handmade_index, 2, partitioner="hash"
        )
        with ShardedEngine(sharded, executor="fork") as engine:
            with pytest.raises(QueryError, match="fork"):
                AdaptiveSelectionController(
                    engine,
                    IncrementalReselector(storage_budget=10),
                    reference_index=handmade_index,
                )

    def test_engine_without_swap_entry_point_rejected(self):
        with pytest.raises(QueryError, match="swap"):
            AdaptiveSelectionController(
                SimpleNamespace(), IncrementalReselector(storage_budget=10)
            )

    def test_config_validation(self):
        with pytest.raises(QueryError):
            AdaptiveConfig(interval_seconds=0)
        with pytest.raises(QueryError):
            AdaptiveConfig(min_queries=0)
        with pytest.raises(QueryError):
            AdaptiveConfig(coverage_threshold=1.5)
        with pytest.raises(QueryError):
            AdaptiveConfig(decay=0.0)

    def test_start_stop_and_maintenance_wake(self):
        engine = LifecycleEngine(SegmentedIndex())
        try:
            engine.ingest(HANDMADE_DOCS)
            engine.flush()
            controller = self.controller(engine, interval_seconds=60.0)
            controller.start()
            try:
                assert controller.running
                # A lifecycle flush wakes the thread through the hook.
                engine.ingest(GROWTH_DOCS)
                engine.flush()
                assert controller._wake.is_set() or controller.running
            finally:
                controller.stop()
            assert not controller.running
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# CLI


class TestCLIAdaptive:
    def test_adaptive_knob_requires_adaptive(self, capsys):
        code = cli.main(
            ["serve", "--index", "missing.idx", "--adaptive-interval", "5"]
        )
        assert code == 2
        assert "--adaptive-interval requires --adaptive" in (
            capsys.readouterr().err
        )

    def test_save_catalog_requires_adaptive(self, capsys):
        code = cli.main(
            ["serve", "--index", "missing.idx", "--save-catalog", "c.json.gz"]
        )
        assert code == 2
        assert "--save-catalog requires --adaptive" in capsys.readouterr().err

    def test_info_needs_a_target(self, capsys):
        assert cli.main(["info"]) == 2
        assert "--index and/or --catalog" in capsys.readouterr().err

    def test_info_reports_catalog_provenance(
        self, tmp_path, capsys, handmade_index
    ):
        import json

        path = tmp_path / "catalog.json.gz"
        save_catalog(
            digestive_catalog(handmade_index),
            path,
            generation=3,
            selection={"trigger": "drift", "num_views": 1},
        )
        assert cli.main(["info", "--catalog", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["catalog"]["num_views"] == 1
        assert payload["catalog"]["generation"] == 3
        assert payload["catalog"]["selection"]["trigger"] == "drift"
