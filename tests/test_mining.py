"""Tests for the three frequent-itemset miners (Section 5.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError, MiningError
from repro.selection.mining import (
    TransactionDatabase,
    apriori,
    declat,
    eclat,
    fpgrowth,
)

TINY_TRANSACTIONS = [
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "c"},
    {"b", "c"},
    {"a", "b", "c", "d"},
    {"d"},
]


@pytest.fixture
def tiny_db():
    return TransactionDatabase(TINY_TRANSACTIONS)


def brute_force_frequent(transactions, min_support, max_size=None):
    """Ground truth by full enumeration over observed items."""
    from itertools import combinations

    items = sorted({i for t in transactions for i in t})
    out = {}
    upper = max_size if max_size is not None else len(items)
    for size in range(1, upper + 1):
        for combo in combinations(items, size):
            support = sum(1 for t in transactions if set(combo) <= t)
            if support >= min_support:
                out[frozenset(combo)] = support
    return out


class TestTransactionDatabase:
    def test_item_support(self, tiny_db):
        assert tiny_db.item_support("a") == 4
        assert tiny_db.item_support("d") == 2
        assert tiny_db.item_support("zz") == 0

    def test_support_scan(self, tiny_db):
        assert tiny_db.support({"a", "b"}) == 3
        assert tiny_db.support({"a", "d"}) == 1
        assert tiny_db.support(set()) == len(TINY_TRANSACTIONS)

    def test_frequent_items_order(self, tiny_db):
        items = tiny_db.frequent_items(2)
        # a(4), b(4), c(4), d(2): ties break lexicographically.
        assert items == ["a", "b", "c", "d"]

    def test_project(self, tiny_db):
        projected = tiny_db.project({"a", "d"})
        assert len(projected) == 5  # {b,c} drops out entirely
        assert projected.support({"a"}) == 4

    def test_tidsets(self, tiny_db):
        vertical = tiny_db.tidsets(min_support=4)
        assert set(vertical) == {"a", "b", "c"}
        assert vertical["a"] == {0, 1, 2, 4}


class TestMinersOnTiny:
    @pytest.mark.parametrize("miner", [apriori, fpgrowth, eclat, declat])
    def test_matches_brute_force(self, tiny_db, miner):
        result = miner(tiny_db, min_support=2)
        assert result.itemsets == brute_force_frequent(TINY_TRANSACTIONS, 2)

    @pytest.mark.parametrize("miner", [apriori, fpgrowth, eclat, declat])
    def test_max_size_cap(self, tiny_db, miner):
        result = miner(tiny_db, min_support=1, max_size=2)
        assert all(len(s) <= 2 for s in result.itemsets)
        expected = brute_force_frequent(TINY_TRANSACTIONS, 1, max_size=2)
        assert result.itemsets == expected

    @pytest.mark.parametrize("miner", [apriori, fpgrowth, eclat, declat])
    def test_validation(self, tiny_db, miner):
        with pytest.raises(MiningError):
            miner(tiny_db, min_support=0)
        with pytest.raises(MiningError):
            miner(TransactionDatabase([]), min_support=1)

    def test_maximal_itemsets(self, tiny_db):
        result = eclat(tiny_db, min_support=2)
        maximal = result.maximal_itemsets()
        assert frozenset({"a", "b", "c"}) in maximal
        assert frozenset({"a"}) not in maximal
        # Every frequent itemset is a subset of some maximal one.
        for itemset in result.itemsets:
            assert any(itemset <= m for m in maximal)


class TestBudgets:
    """Section 6.2's infeasibility findings, in miniature."""

    def test_apriori_work_budget(self, tiny_db):
        with pytest.raises(BudgetExceededError) as excinfo:
            apriori(tiny_db, min_support=1, budget=3)
        assert excinfo.value.algorithm == "apriori"
        assert excinfo.value.work_done > excinfo.value.budget

    def test_fpgrowth_memory_budget(self, tiny_db):
        with pytest.raises(BudgetExceededError) as excinfo:
            fpgrowth(tiny_db, min_support=1, max_nodes=2)
        assert excinfo.value.algorithm == "fpgrowth"

    def test_eclat_budget(self, tiny_db):
        with pytest.raises(BudgetExceededError):
            eclat(tiny_db, min_support=1, budget=1)

    def test_generous_budget_passes(self, tiny_db):
        result = apriori(tiny_db, min_support=2, budget=10_000)
        assert result.itemsets


class TestMinersAgreeProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_items=st.integers(min_value=2, max_value=10),
        num_transactions=st.integers(min_value=1, max_value=60),
        min_support=st.integers(min_value=1, max_value=8),
    )
    def test_all_three_identical(
        self, seed, num_items, num_transactions, min_support
    ):
        rng = random.Random(seed)
        items = [f"i{k}" for k in range(num_items)]
        transactions = [
            set(rng.sample(items, rng.randint(1, num_items)))
            for _ in range(num_transactions)
        ]
        db = TransactionDatabase(transactions)
        a = apriori(db, min_support)
        f = fpgrowth(db, min_support)
        e = eclat(db, min_support)
        d = declat(db, min_support)
        assert a.itemsets == f.itemsets == e.itemsets == d.itemsets

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_supports_are_exact(self, seed):
        rng = random.Random(seed)
        items = [f"i{k}" for k in range(6)]
        transactions = [
            set(rng.sample(items, rng.randint(1, 6))) for _ in range(40)
        ]
        db = TransactionDatabase(transactions)
        result = eclat(db, min_support=3)
        for itemset, support in result.itemsets.items():
            assert support == db.support(itemset)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_antimonotone_support(self, seed):
        """Support is anti-monotone: subsets have >= support."""
        rng = random.Random(seed)
        items = [f"i{k}" for k in range(6)]
        transactions = [
            set(rng.sample(items, rng.randint(1, 6))) for _ in range(30)
        ]
        db = TransactionDatabase(transactions)
        result = fpgrowth(db, min_support=2)
        for itemset, support in result.itemsets.items():
            for item in itemset:
                smaller = itemset - {item}
                if smaller:
                    assert result.itemsets[smaller] >= support


class TestMiningOnCorpus:
    def test_real_predicate_transactions(self, corpus_db):
        """Eclat over the synthetic corpus's predicate sets: every mined
        support verified against a database scan."""
        t_c = len(corpus_db) // 20
        result = eclat(corpus_db, min_support=t_c, max_size=3)
        assert result.itemsets, "expected some frequent predicate combinations"
        sample = list(result.itemsets.items())[:25]
        for itemset, support in sample:
            assert support == corpus_db.support(itemset)
