"""Experiment harness for the ranking-quality comparison (Section 6.1).

Runs every benchmark topic through both rankings — context-sensitive
(Formula 4) and conventional (Formula 3 with the context as a boolean
filter) — and collects the per-topic precision@K and reciprocal-rank
series of Figure 6 plus the mean summary the paper quotes (7.9 → 10.2
precision, 0.62 → 0.78 MRR at PubMed scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.engine import ContextSearchEngine
from ..data.trec import QualityBenchmark, Topic
from .metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    reciprocal_rank,
)


@dataclass(frozen=True)
class TopicOutcome:
    """Both systems' metrics on one topic."""

    topic_id: int
    question: str
    precision_context: int
    precision_conventional: int
    rr_context: float
    rr_conventional: float
    map_context: float
    map_conventional: float
    ndcg_context: float
    ndcg_conventional: float
    result_size: int


@dataclass
class QualityComparison:
    """The full Figure 6 dataset plus the Section 6.1 summary scalars."""

    k: int
    outcomes: List[TopicOutcome] = field(default_factory=list)

    # -- aggregate properties ------------------------------------------------

    @property
    def num_topics(self) -> int:
        return len(self.outcomes)

    @property
    def wins(self) -> int:
        """Topics where context-sensitive strictly beats conventional.

        A topic counts as a win when context-sensitive is strictly better
        on precision@K, or ties precision and is strictly better on
        reciprocal rank.
        """
        return sum(
            1
            for o in self.outcomes
            if (o.precision_context, o.rr_context)
            > (o.precision_conventional, o.rr_conventional)
        )

    @property
    def losses(self) -> int:
        return sum(
            1
            for o in self.outcomes
            if (o.precision_context, o.rr_context)
            < (o.precision_conventional, o.rr_conventional)
        )

    @property
    def ties(self) -> int:
        return self.num_topics - self.wins - self.losses

    def mean(self, attribute: str) -> float:
        if not self.outcomes:
            return 0.0
        return sum(getattr(o, attribute) for o in self.outcomes) / len(self.outcomes)

    def summary(self) -> Dict[str, float]:
        """The scalars Section 6.1 quotes, as a printable mapping."""
        return {
            "topics": self.num_topics,
            "context_wins": self.wins,
            "conventional_wins": self.losses,
            "ties": self.ties,
            "mean_precision_conventional": self.mean("precision_conventional"),
            "mean_precision_context": self.mean("precision_context"),
            "mrr_conventional": self.mean("rr_conventional"),
            "mrr_context": self.mean("rr_context"),
            "map_conventional": self.mean("map_conventional"),
            "map_context": self.mean("map_context"),
            "ndcg_conventional": self.mean("ndcg_conventional"),
            "ndcg_context": self.mean("ndcg_context"),
        }


def run_quality_comparison(
    engine: ContextSearchEngine,
    benchmark: QualityBenchmark,
    k: int = 20,
) -> QualityComparison:
    """Evaluate every topic under both rankings (the Figure 6 experiment)."""
    comparison = QualityComparison(k=k)
    for topic in benchmark.topics:
        context_ranked = engine.search(topic.query).external_ids()
        conventional_ranked = engine.search_conventional(topic.query).external_ids()
        comparison.outcomes.append(
            _score_topic(topic, context_ranked, conventional_ranked, k)
        )
    return comparison


def run_quality_comparison_batched(
    engine: ContextSearchEngine,
    benchmark: QualityBenchmark,
    k: int = 20,
    max_workers: Optional[int] = None,
) -> QualityComparison:
    """:func:`run_quality_comparison` through the :class:`BatchExecutor`.

    Both ranking arms run as batches (context-sensitive first, then the
    conventional baseline), sharing context materialisations and decoded
    posting columns across topics.  Because batch execution is
    answer-preserving, the metrics are identical to the sequential
    harness — only faster on workloads with repeated contexts.  A topic
    whose query fails under either arm is scored on empty rankings, same
    as a query returning nothing.
    """
    from ..core.engine import BatchExecutor

    executor = BatchExecutor(engine, max_workers=max_workers)
    queries = [topic.query for topic in benchmark.topics]
    context_report = executor.run(queries, mode="context")
    conventional_report = executor.run(queries, mode="conventional")

    comparison = QualityComparison(k=k)
    for topic, ctx, conv in zip(
        benchmark.topics, context_report.outcomes, conventional_report.outcomes
    ):
        context_ranked = ctx.results.external_ids() if ctx.ok else []
        conventional_ranked = conv.results.external_ids() if conv.ok else []
        comparison.outcomes.append(
            _score_topic(topic, context_ranked, conventional_ranked, k)
        )
    return comparison


def _score_topic(
    topic: Topic,
    context_ranked: Sequence[str],
    conventional_ranked: Sequence[str],
    k: int,
) -> TopicOutcome:
    relevant = topic.relevant
    return TopicOutcome(
        topic_id=topic.topic_id,
        question=topic.question,
        precision_context=precision_at_k(context_ranked, relevant, k),
        precision_conventional=precision_at_k(conventional_ranked, relevant, k),
        rr_context=reciprocal_rank(context_ranked, relevant),
        rr_conventional=reciprocal_rank(conventional_ranked, relevant),
        map_context=average_precision(context_ranked, relevant),
        map_conventional=average_precision(conventional_ranked, relevant),
        ndcg_context=ndcg_at_k(context_ranked, relevant, k),
        ndcg_conventional=ndcg_at_k(conventional_ranked, relevant, k),
        result_size=len(context_ranked),
    )
