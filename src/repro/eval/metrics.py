"""IR evaluation metrics (Section 6.1's measures and standard companions).

The paper reports precision among the top K = 20 results and the
reciprocal rank of the first relevant result; MAP and nDCG are included
because any credible release of this system would ship them.
All functions take a ranked list of document ids and a set of relevant
ids — no library types, so they are reusable standalone.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Sequence


def precision_at_k(ranked: Sequence[str], relevant: AbstractSet[str], k: int) -> int:
    """Number of relevant documents among the top ``k``.

    The paper's Figure 6a/6b metric is the *count* (0–20), not the
    fraction; use :func:`precision_fraction_at_k` for the fraction.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return sum(1 for doc_id in ranked[:k] if doc_id in relevant)


def precision_fraction_at_k(
    ranked: Sequence[str], relevant: AbstractSet[str], k: int
) -> float:
    """Fraction of the top ``k`` that is relevant."""
    return precision_at_k(ranked, relevant, k) / k


def reciprocal_rank(ranked: Sequence[str], relevant: AbstractSet[str]) -> float:
    """Inverse rank of the first relevant result (0.0 when none appears)."""
    for position, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            return 1.0 / position
    return 0.0


def average_precision(
    ranked: Sequence[str], relevant: AbstractSet[str]
) -> float:
    """Average precision over the full ranking (0.0 for empty relevant set)."""
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for position, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            hits += 1
            total += hits / position
    return total / len(relevant)


def ndcg_at_k(ranked: Sequence[str], relevant: AbstractSet[str], k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    dcg = sum(
        1.0 / math.log2(position + 1)
        for position, doc_id in enumerate(ranked[:k], start=1)
        if doc_id in relevant
    )
    ideal_hits = min(len(relevant), k)
    if ideal_hits == 0:
        return 0.0
    idcg = sum(1.0 / math.log2(position + 1) for position in range(1, ideal_hits + 1))
    return dcg / idcg
