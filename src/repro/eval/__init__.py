"""IR evaluation: metrics and the quality-comparison harness (Section 6.1)."""

from .metrics import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    precision_fraction_at_k,
    reciprocal_rank,
)
from .harness import (
    QualityComparison,
    TopicOutcome,
    run_quality_comparison,
    run_quality_comparison_batched,
)

__all__ = [
    "average_precision",
    "ndcg_at_k",
    "precision_at_k",
    "precision_fraction_at_k",
    "reciprocal_rank",
    "QualityComparison",
    "TopicOutcome",
    "run_quality_comparison",
    "run_quality_comparison_batched",
]
