"""Consistent-hash shard placement: which workers hold which shard.

The ring maps worker addresses to many virtual points (crc32, the same
deterministic stdlib hash :class:`~repro.index.sharded.HashPartitioner`
uses for documents); shard ``k``'s replica group is the first N
*distinct* workers clockwise from the shard's own point.  Consistency is
the point: adding or removing one worker re-places only the shards whose
arcs it touched, so a replacement replica bootstraps a bounded number of
segments instead of reshuffling the whole cluster.

Placement is pure arithmetic over the config — the router and any
operator tooling derive the identical groups from the same worker list,
no coordination service required.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, List, Sequence

__all__ = ["HashRing", "place_shards"]


def _point(key: str) -> int:
    return zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """A consistent-hash ring over worker addresses.

    ``vnodes`` virtual points per worker smooth the arc lengths so a
    small cluster still places shards near-uniformly.  Point collisions
    break ties on the worker address, keeping the ring a pure function
    of the node set.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64):
        if not nodes:
            raise ValueError("hash ring requires at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate worker addresses: {sorted(nodes)}")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        points = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def place(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct nodes clockwise from ``key``."""
        count = min(count, len(self.nodes))
        start = bisect.bisect_left(self._points, _point(key))
        chosen: List[str] = []
        seen = set()
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner in seen:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) == count:
                break
        return chosen


def place_shards(
    workers: Sequence[str], num_shards: int, replication: int
) -> Dict[int, List[str]]:
    """Replica groups for every shard: ``{shard_id: [address, ...]}``."""
    ring = HashRing(workers)
    return {
        shard_id: ring.place(f"shard-{shard_id}", replication)
        for shard_id in range(num_shards)
    }
