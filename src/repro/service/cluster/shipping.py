"""Replica bootstrap by segment shipping.

A new shard worker does not re-ingest documents: it pulls the sealed
artefact files its peer already serves — a v4 block shard file, a JSON
shard file, or a whole segmented-index directory (manifest + sealed
``segments/*.seg``) — over two protocol ops:

``segment_manifest``
    ``{"files": [{"name", "size", "crc32"}, ...], "root": "<entry file>"}``
    — the served file set with integrity metadata, names relative to the
    artefact root (``""`` for a directory artefact's root itself).

``fetch_segment``
    ``{"name", "offset", "length"}`` → ``{"data": <base64>, "eof": bool}``
    — one chunk of one file.  Chunks stay well under the cluster frame
    limit; files are sealed/immutable, so offset-ranged reads need no
    locking.

The client (:func:`fetch_artifact`) downloads into a temp sibling,
verifies size and crc32 against the peer's manifest, and promotes with
``os.replace`` — the same atomic-commit + "corrupt artefact" discipline
as :mod:`repro.lifecycle.storage`; a checksum mismatch is a hard
:class:`~repro.storage.StorageError` naming the file, never a silently
wrong index.  Files already present with matching size+crc are skipped,
so re-bootstrapping an interrupted pull only moves the missing bytes.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import ReproError
from .config import ClusterConfigError

__all__ = [
    "ArtifactShipper",
    "decode_catalog_frame",
    "encode_catalog_frame",
    "fetch_artifact",
    "ship_chunk_bytes",
]

# Raw bytes per fetch_segment chunk; base64 inflates 4/3, keeping the
# response line far below MAX_CLUSTER_LINE_BYTES.
ship_chunk_bytes = 1 << 18


def _storage_error(message: str) -> ReproError:
    from ...storage import StorageError

    return StorageError(message)


def _file_crc32(path: Path) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return crc & 0xFFFFFFFF


class ArtifactShipper:
    """Server side: expose one sealed artefact (file or directory).

    The served name set is computed from the artefact root; requests for
    any other name (including traversal attempts) are refused with a
    readable error.
    """

    def __init__(self, artifact: Path):
        self.root = Path(artifact)
        if not self.root.exists():
            raise _storage_error(f"missing artefact {self.root}")

    def _files(self) -> Dict[str, Path]:
        if self.root.is_file():
            return {self.root.name: self.root}
        files: Dict[str, Path] = {}
        for path in sorted(self.root.rglob("*")):
            if path.is_file() and not path.name.endswith(".tmp"):
                files[path.relative_to(self.root).as_posix()] = path
        return files

    def manifest(self) -> dict:
        files: List[dict] = []
        for name, path in self._files().items():
            files.append(
                {
                    "name": name,
                    "size": path.stat().st_size,
                    "crc32": _file_crc32(path),
                }
            )
        return {
            "root": self.root.name if self.root.is_file() else "",
            "files": files,
        }

    def fetch(self, name: str, offset: int, length: Optional[int]) -> dict:
        path = self._files().get(str(name))
        if path is None:
            raise _storage_error(
                f"artefact has no file named {name!r} "
                f"(serving {self.root.name})"
            )
        offset = max(int(offset), 0)
        length = ship_chunk_bytes if length is None else int(length)
        length = max(0, min(length, ship_chunk_bytes))
        size = path.stat().st_size
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(length)
        return {
            "name": name,
            "offset": offset,
            "size": size,
            "data": base64.b64encode(data).decode("ascii"),
            "eof": offset + len(data) >= size,
        }


def fetch_artifact(
    address: str,
    dest: Path,
    timeout: float = 30.0,
) -> Tuple[Path, int]:
    """Pull a peer worker's artefact into ``dest``; returns the local
    artefact path to serve and the number of files actually copied.

    ``address`` is the peer's ``host:port``; ``dest`` is a directory
    (created if missing).  For a single-file artefact the returned path
    is that file inside ``dest``; for a directory artefact it is
    ``dest`` itself.
    """
    from ..protocol import ProtocolError, ServiceClient
    from .config import parse_address

    host, port = parse_address(address)
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    copied = 0
    try:
        client = ServiceClient(host, port, timeout=timeout)
    except OSError as exc:
        raise ClusterConfigError(
            f"cannot reach bootstrap peer {address}: {exc}"
        ) from None
    try:
        manifest = client.request({"op": "segment_manifest"})
        if manifest.get("status") != "ok":
            raise _storage_error(
                f"bootstrap peer {address} refused segment_manifest: "
                f"{manifest.get('error', 'no error text')}"
            )
        for entry in manifest.get("files", []):
            name = entry["name"]
            if Path(name).is_absolute() or ".." in Path(name).parts:
                raise _storage_error(
                    f"bootstrap peer {address} offered an unsafe file "
                    f"name {name!r}"
                )
            target = dest / name
            if (
                target.exists()
                and target.stat().st_size == entry["size"]
                and _file_crc32(target) == entry["crc32"]
            ):
                continue  # already shipped and verified
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(target.name + ".tmp")
            crc = 0
            written = 0
            with open(tmp, "wb") as handle:
                offset = 0
                while True:
                    chunk = client.request(
                        {
                            "op": "fetch_segment",
                            "name": name,
                            "offset": offset,
                            "length": ship_chunk_bytes,
                        }
                    )
                    if chunk.get("status") != "ok":
                        raise _storage_error(
                            f"bootstrap peer {address} failed fetching "
                            f"{name!r}: {chunk.get('error', 'no error text')}"
                        )
                    try:
                        data = base64.b64decode(chunk["data"])
                    except (KeyError, binascii.Error, TypeError):
                        raise _storage_error(
                            f"bootstrap peer {address} sent an undecodable "
                            f"chunk of {name!r}"
                        ) from None
                    handle.write(data)
                    crc = zlib.crc32(data, crc)
                    written += len(data)
                    offset += len(data)
                    if chunk.get("eof") or not data:
                        break
            if written != entry["size"] or (crc & 0xFFFFFFFF) != entry["crc32"]:
                tmp.unlink(missing_ok=True)
                raise _storage_error(
                    f"corrupt artefact {target}: segment shipping from "
                    f"{address} got {written} bytes/crc {crc & 0xFFFFFFFF}, "
                    f"expected {entry['size']} bytes/crc {entry['crc32']}"
                )
            os.replace(tmp, target)
            copied += 1
    except ProtocolError as exc:
        raise _storage_error(
            f"bootstrap peer {address} broke the shipping protocol: {exc}"
        ) from None
    finally:
        client.close()
    root = manifest.get("root") or ""
    return (dest / root if root else dest), copied


# -- catalog shipping ----------------------------------------------------------
#
# The adaptive cluster ships *view definitions*, not materialised views:
# a definition is three term sets per view (keywords, df terms, tc
# terms), a few kilobytes, and each worker re-materialises partial views
# over its own shard — exact, because df and term counts aggregate
# distributively across shards (see repro.views.sharding).  The frame
# reuses this module's integrity discipline: one JSON body, base64 on
# the wire, size + crc32 verified before anything is installed.


def encode_catalog_frame(definitions: Sequence[Tuple]) -> dict:
    """Pack view definitions into a crc-verified wire frame.

    ``definitions`` is what :func:`repro.views.sharding.
    catalog_definitions` returns: ``(keyword_set, df_terms, tc_terms)``
    triples of frozensets.  Sets are sorted so the frame (and its crc)
    is deterministic for a given catalog.
    """
    body = json.dumps(
        [
            {
                "keywords": sorted(keywords),
                "df": sorted(df_terms),
                "tc": sorted(tc_terms),
            }
            for keywords, df_terms, tc_terms in definitions
        ],
        sort_keys=True,
    ).encode("utf-8")
    return {
        "data": base64.b64encode(body).decode("ascii"),
        "size": len(body),
        "crc32": zlib.crc32(body) & 0xFFFFFFFF,
    }


def decode_catalog_frame(frame: dict) -> List[Tuple]:
    """Unpack and integrity-check a catalog frame.

    Returns the ``(keyword_set, df_terms, tc_terms)`` frozenset triples;
    raises :class:`~repro.storage.StorageError` on any size/crc mismatch
    or malformed body — a worker must never install a catalog it cannot
    prove it received intact.
    """
    if not isinstance(frame, dict) or "data" not in frame:
        raise _storage_error("catalog frame missing 'data'")
    try:
        body = base64.b64decode(frame["data"], validate=True)
    except (binascii.Error, TypeError, ValueError):
        raise _storage_error("catalog frame is not valid base64") from None
    size = frame.get("size")
    crc = frame.get("crc32")
    if size is not None and len(body) != int(size):
        raise _storage_error(
            f"corrupt catalog frame: got {len(body)} bytes, "
            f"expected {size}"
        )
    if crc is not None and (zlib.crc32(body) & 0xFFFFFFFF) != int(crc):
        raise _storage_error(
            f"corrupt catalog frame: crc {zlib.crc32(body) & 0xFFFFFFFF}, "
            f"expected {crc}"
        )
    try:
        entries = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise _storage_error("catalog frame body is not valid JSON") from None
    if not isinstance(entries, list):
        raise _storage_error("catalog frame body must be a list of views")
    definitions: List[Tuple] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise _storage_error("catalog frame view entry must be a dict")
        try:
            definitions.append(
                (
                    frozenset(entry["keywords"]),
                    frozenset(entry["df"]),
                    frozenset(entry["tc"]),
                )
            )
        except (KeyError, TypeError):
            raise _storage_error(
                "catalog frame view entry missing keywords/df/tc"
            ) from None
    return definitions
