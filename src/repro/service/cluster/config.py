"""The cluster config file: worker pool, placement, and router knobs.

One JSON document describes a whole deployment::

    {
      "kind": "cluster",
      "version": 1,
      "num_shards": 2,
      "replication": 2,
      "workers": ["127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"],
      "router": {"health_interval_s": 2.0,
                 "fail_threshold": 3,
                 "attempt_timeout_ms": 2000}
    }

Replica groups are *derived* — consistent hashing over ``workers``
(:mod:`.placement`) assigns each shard its N-way group, so the router
and any tooling reading the same file agree on placement without a
coordinator.  An explicit ``"groups"`` list (``[{"shard": 0,
"replicas": ["host:port", ...]}, ...]``) overrides the ring for
hand-pinned layouts and tests.

Every validation failure is one readable :class:`ClusterConfigError`
naming the offending field — a cluster config is operator input, and
"stack trace from deep inside the router" is not an error message.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ...errors import ReproError
from .placement import place_shards

__all__ = [
    "ClusterConfig",
    "ClusterConfigError",
    "RouterOptions",
    "load_cluster_config",
    "parse_address",
]


class ClusterConfigError(ReproError):
    """An unusable cluster config (missing fields, bad addresses, …)."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with a readable failure."""
    host, sep, port_text = str(address).rpartition(":")
    if not sep or not host:
        raise ClusterConfigError(
            f"worker address {address!r} is not of the form host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ClusterConfigError(
            f"worker address {address!r} has a non-numeric port"
        ) from None
    if not 0 < port < 65536:
        raise ClusterConfigError(
            f"worker address {address!r} has an out-of-range port"
        )
    return host, port


@dataclass
class RouterOptions:
    """Failover and health-polling knobs (the ``"router"`` section)."""

    health_interval_s: float = 2.0
    fail_threshold: int = 3
    attempt_timeout_ms: float = 2000.0

    @classmethod
    def from_payload(cls, payload: dict) -> "RouterOptions":
        options = cls()
        if "health_interval_s" in payload:
            options.health_interval_s = float(payload["health_interval_s"])
        if "fail_threshold" in payload:
            options.fail_threshold = int(payload["fail_threshold"])
        if "attempt_timeout_ms" in payload:
            options.attempt_timeout_ms = float(payload["attempt_timeout_ms"])
        if options.health_interval_s <= 0:
            raise ClusterConfigError("router.health_interval_s must be > 0")
        if options.fail_threshold < 1:
            raise ClusterConfigError("router.fail_threshold must be >= 1")
        if options.attempt_timeout_ms <= 0:
            raise ClusterConfigError("router.attempt_timeout_ms must be > 0")
        return options


@dataclass
class ClusterConfig:
    """A validated deployment description with resolved placement."""

    num_shards: int
    replication: int
    workers: List[str]
    groups: Dict[int, List[str]]
    router: RouterOptions = field(default_factory=RouterOptions)
    # Seed for the router's placement clock: operators bump this when a
    # config edit re-places replica groups, so a restarted router's
    # version vector keeps moving forward instead of resetting to 0.
    placement_generation: int = 0

    def replicas(self, shard_id: int) -> List[Tuple[str, int]]:
        return [parse_address(a) for a in self.groups[shard_id]]

    def to_payload(self) -> dict:
        return {
            "kind": "cluster",
            "version": 1,
            "num_shards": self.num_shards,
            "replication": self.replication,
            "workers": list(self.workers),
            "groups": [
                {"shard": shard_id, "replicas": list(addresses)}
                for shard_id, addresses in sorted(self.groups.items())
            ],
            "router": {
                "health_interval_s": self.router.health_interval_s,
                "fail_threshold": self.router.fail_threshold,
                "attempt_timeout_ms": self.router.attempt_timeout_ms,
            },
            "placement_generation": self.placement_generation,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusterConfig":
        if not isinstance(payload, dict) or payload.get("kind") != "cluster":
            raise ClusterConfigError(
                "cluster config must be a JSON object with kind='cluster'"
            )
        try:
            num_shards = int(payload["num_shards"])
        except (KeyError, TypeError, ValueError):
            raise ClusterConfigError(
                "cluster config requires an integer 'num_shards'"
            ) from None
        if num_shards < 1:
            raise ClusterConfigError("num_shards must be >= 1")
        replication = int(payload.get("replication", 1))
        if replication < 1:
            raise ClusterConfigError("replication must be >= 1")
        workers = [str(w) for w in payload.get("workers", [])]
        for worker in workers:
            parse_address(worker)
        router = RouterOptions.from_payload(payload.get("router", {}) or {})

        explicit = payload.get("groups")
        if explicit is not None:
            groups: Dict[int, List[str]] = {}
            for entry in explicit:
                try:
                    shard_id = int(entry["shard"])
                    replicas = [str(a) for a in entry["replicas"]]
                except (KeyError, TypeError, ValueError):
                    raise ClusterConfigError(
                        "each group needs 'shard' and a 'replicas' list"
                    ) from None
                if not replicas:
                    raise ClusterConfigError(
                        f"shard {shard_id} has an empty replica group"
                    )
                for replica in replicas:
                    parse_address(replica)
                groups[shard_id] = replicas
            missing = sorted(set(range(num_shards)) - set(groups))
            if missing:
                raise ClusterConfigError(
                    f"groups missing for shards {missing} "
                    f"(num_shards={num_shards})"
                )
        else:
            if not workers:
                raise ClusterConfigError(
                    "cluster config needs 'workers' (for consistent-hash "
                    "placement) or explicit 'groups'"
                )
            try:
                groups = place_shards(workers, num_shards, replication)
            except ValueError as exc:
                raise ClusterConfigError(str(exc)) from None
        try:
            placement_generation = int(payload.get("placement_generation", 0))
        except (TypeError, ValueError):
            raise ClusterConfigError(
                "placement_generation must be an integer"
            ) from None
        if placement_generation < 0:
            raise ClusterConfigError("placement_generation must be >= 0")
        return cls(
            num_shards=num_shards,
            replication=replication,
            workers=workers,
            groups=groups,
            router=router,
            placement_generation=placement_generation,
        )


def load_cluster_config(path) -> ClusterConfig:
    """Read and validate a cluster config file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ClusterConfigError(
            f"cannot read cluster config {path}: {exc}"
        ) from None
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ClusterConfigError(
            f"cluster config {path} is not valid JSON: {exc}"
        ) from None
    try:
        return ClusterConfig.from_payload(payload)
    except ClusterConfigError as exc:
        raise ClusterConfigError(f"cluster config {path}: {exc}") from None
