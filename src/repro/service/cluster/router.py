"""The query router: scatter to shard workers, gather, merge exactly.

The router is the cluster's client-facing front end.  It speaks the same
JSON-lines protocol as every other server in this repo, coalesces client
queries into batches, scatters each batch to every shard's replica group
over persistent pipelined connections, and folds the workers' frames
through the *same* :class:`~repro.core.sharded_engine.ShardMergePlan`
the in-process backends drive.  That shared merge object is the whole
consistency argument: additive statistics, the global emptiness check,
per-term score bounds, and the final ``(-score, gid)`` rank are one code
path, so router rankings are bit-identical to a single-process
:class:`~repro.core.sharded_engine.ShardedEngine` over the same shards.

Failover: every shard has an N-way replica group (consistent-hash
placement from the cluster config).  An attempt that times out, cannot
connect, or returns a malformed frame marks the replica and the query is
retried on a sibling — phase-1 candidate ids travel through the router,
so any replica of the group can serve any phase.  A replica is *down*
after ``fail_threshold`` consecutive failures (in-flight or health
probe) and is skipped until a ``healthz`` probe succeeds again; when a
whole group is down the affected queries shed with one readable error
naming the group and its last failures — never a traceback, never a
hung future.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ... import __version__
from ...core.backend import VersionAuthority, VersionVector
from ...core.logical import MODE_CONVENTIONAL, MODE_DISJUNCTIVE
from ...core.ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from ...core.report import _counter_from_dict
from ...core.sharded_engine import ShardMergePlan, _rebuild_query
from ...errors import QueryError, ReproError
from ..admission import AdmissionController
from ..metrics import ServiceMetrics, percentile
from ..protocol import (
    CLUSTER_OPS,
    MAX_CLUSTER_LINE_BYTES,
    MAX_LINE_BYTES,
    OP_HEALTHZ,
    OP_INSTALL_CATALOG,
    OP_METRICS,
    OP_SHARD_CONVENTIONAL,
    OP_SHARD_RESOLVE,
    OP_SHARD_SCORE,
    OP_SHARD_TOPK,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    ProtocolError,
    Request,
    decode_request,
    encode_response,
)
from ..result_cache import ResultCache
from ..server import ServerThread, ServiceConfig
from .config import ClusterConfig, parse_address

__all__ = [
    "GroupUnavailable",
    "Replica",
    "ReplicaGroup",
    "RouterMetrics",
    "RouterService",
    "WorkerError",
    "WorkerProtocolError",
    "WorkerTimeout",
    "WorkerUnavailable",
    "router_service_factory",
    "router_thread",
]

PATH_AUTO = "auto"

STATE_UNKNOWN = "unknown"
STATE_UP = "up"
STATE_DOWN = "down"

# Per-shard attempt latency window (ring, like the service's own).
SHARD_LATENCY_WINDOW = 1024


class WorkerError(ReproError):
    """A failed exchange with one shard worker (always names it)."""

    def __init__(self, address: str, detail: str):
        super().__init__(f"worker {address}: {detail}")
        self.address = address
        self.detail = detail


class WorkerUnavailable(WorkerError):
    """Connect refused, connection lost, or send failed."""


class WorkerTimeout(WorkerError):
    """No reply within the per-attempt deadline budget."""

    def __init__(self, address: str, timeout_s: float):
        super().__init__(address, f"no reply within {timeout_s * 1000.0:g}ms")


class WorkerProtocolError(WorkerError):
    """The worker sent bytes that are not a JSON-lines response frame."""

    def __init__(self, address: str, detail: str):
        super().__init__(address, f"sent a malformed response frame ({detail})")


class GroupUnavailable(ReproError):
    """Every replica of one shard group failed; queries must shed."""

    def __init__(self, shard_id: int, detail: str):
        super().__init__(f"shard group {shard_id} unavailable: {detail}")
        self.shard_id = shard_id


class Replica:
    """One worker address: a lazily-connected, pipelining async client.

    Requests match responses by ``id`` so concurrent batch exchanges
    share a single connection.  Any protocol violation — non-JSON bytes,
    a frame torn mid-line, an oversized line — fails *every* in-flight
    request with a :class:`WorkerProtocolError` naming this address and
    drops the connection; the next call reconnects from scratch.  Health
    bookkeeping (``note_success`` / ``note_failure``) lives here so the
    failover ordering and the health endpoint read one source of truth.
    """

    def __init__(self, shard_id: int, address: str, fail_threshold: int):
        self.shard_id = shard_id
        self.address = address
        self.host, self.port = parse_address(address)
        self.fail_threshold = max(int(fail_threshold), 1)
        self.state = STATE_UNKNOWN
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self.info: dict = {}  # healthz facts (num_docs, ranking, …)
        self._reader = None
        self._writer = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._conn_lock: Optional[asyncio.Lock] = None
        self._write_lock: Optional[asyncio.Lock] = None
        self._closed = False

    # -- health bookkeeping ----------------------------------------------

    def note_success(self) -> None:
        self.consecutive_failures = 0
        self.state = STATE_UP
        self.last_error = None

    def note_failure(self, error: str) -> None:
        self.consecutive_failures += 1
        self.last_error = error
        if self.consecutive_failures >= self.fail_threshold:
            self.state = STATE_DOWN

    # -- wire --------------------------------------------------------------

    def _locks(self) -> Tuple[asyncio.Lock, asyncio.Lock]:
        # Created lazily so the Replica may be built off the event loop.
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
            self._write_lock = asyncio.Lock()
        return self._conn_lock, self._write_lock

    async def _ensure_connected(self) -> None:
        conn_lock, _ = self._locks()
        async with conn_lock:
            if self._writer is not None:
                return
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=MAX_CLUSTER_LINE_BYTES
                )
            except OSError as exc:
                raise WorkerUnavailable(
                    self.address, f"connect failed: {exc}"
                ) from None
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.ensure_future(self._read_loop(reader))

    async def call(self, payload: dict, timeout_s: float) -> dict:
        """One request/response exchange under a per-attempt deadline."""
        if self._closed:
            raise WorkerUnavailable(self.address, "router is shutting down")
        await self._ensure_connected()
        loop = asyncio.get_running_loop()
        rid = self._next_id
        self._next_id += 1
        future = loop.create_future()
        self._pending[rid] = future
        frame = dict(payload)
        frame["id"] = rid
        line = json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"
        _, write_lock = self._locks()
        try:
            async with write_lock:
                self._writer.write(line)
                await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            error = WorkerUnavailable(self.address, f"send failed: {exc}")
            self._teardown(error)
            raise error from None
        try:
            return await asyncio.wait_for(future, timeout_s)
        except asyncio.TimeoutError:
            # Late replies for this id are dropped by the read loop.
            self._pending.pop(rid, None)
            raise WorkerTimeout(self.address, timeout_s) from None

    async def _read_loop(self, reader) -> None:
        while True:
            try:
                line = await reader.readline()
            except asyncio.CancelledError:
                raise
            except (asyncio.LimitOverrunError, ValueError):
                self._teardown(
                    WorkerProtocolError(self.address, "oversized frame")
                )
                return
            except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
                self._teardown(
                    WorkerUnavailable(self.address, f"connection lost: {exc}")
                )
                return
            if not line:
                self._teardown(
                    WorkerUnavailable(
                        self.address, "connection closed by worker"
                    )
                )
                return
            if not line.endswith(b"\n"):
                # EOF mid-frame: readline hands back the torn tail.
                self._teardown(
                    WorkerProtocolError(
                        self.address,
                        f"torn frame at connection close "
                        f"({len(line)} bytes without newline)",
                    )
                )
                return
            if not line.strip():
                continue
            try:
                frame = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                self._teardown(
                    WorkerProtocolError(
                        self.address,
                        f"non-JSON bytes on the wire: {line[:60]!r}",
                    )
                )
                return
            if not isinstance(frame, dict):
                self._teardown(
                    WorkerProtocolError(
                        self.address, "frame is not a JSON object"
                    )
                )
                return
            future = self._pending.pop(frame.get("id"), None)
            if future is not None and not future.done():
                future.set_result(frame)

    def _teardown(self, error: WorkerError) -> None:
        """Fail every in-flight request readably and drop the connection."""
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)
        writer, self._writer = self._writer, None
        self._reader = None
        self._read_task = None
        if writer is not None:
            writer.close()

    async def aclose(self) -> None:
        self._closed = True
        task = self._read_task
        self._teardown(
            WorkerUnavailable(self.address, "router is shutting down")
        )
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass


class ReplicaGroup:
    """One shard's replicas plus the round-robin failover ordering."""

    def __init__(
        self, shard_id: int, addresses: Sequence[str], fail_threshold: int
    ):
        self.shard_id = shard_id
        self.replicas = [
            Replica(shard_id, address, fail_threshold) for address in addresses
        ]
        self._rr = 0

    def candidates(self) -> List[Replica]:
        """Every replica exactly once: live ones first (rotated so load
        spreads across siblings), known-down ones last as a recovery
        long shot — a query never hangs on a dead replica when a live
        sibling exists, and never sheds while *any* replica answers."""
        count = len(self.replicas)
        start = self._rr
        self._rr = (self._rr + 1) % count
        ordered = [self.replicas[(start + i) % count] for i in range(count)]
        live = [r for r in ordered if r.state != STATE_DOWN]
        down = [r for r in ordered if r.state == STATE_DOWN]
        return live + down

    @property
    def available(self) -> bool:
        return any(r.state != STATE_DOWN for r in self.replicas)


class RouterMetrics:
    """:class:`ServiceMetrics` plus router-only signals: per-shard
    attempt latency windows, failover counts, group-down sheds."""

    def __init__(self, num_shards: int):
        self.base = ServiceMetrics()
        self._lock = threading.Lock()
        self.failovers = 0
        self.group_down = 0
        self.health_probes = 0
        self._attempts = [0] * num_shards
        self._errors = [0] * num_shards
        self._latencies = [
            deque(maxlen=SHARD_LATENCY_WINDOW) for _ in range(num_shards)
        ]

    def record_attempt(
        self, shard_id: int, seconds: float, ok: bool
    ) -> None:
        with self._lock:
            self._attempts[shard_id] += 1
            if not ok:
                self._errors[shard_id] += 1
            self._latencies[shard_id].append(seconds)

    def record_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def record_group_down(self) -> None:
        with self._lock:
            self.group_down += 1

    def record_probe(self) -> None:
        with self._lock:
            self.health_probes += 1

    def shard_snapshot(self) -> dict:
        with self._lock:
            out = {}
            for shard_id in range(len(self._attempts)):
                window = list(self._latencies[shard_id])
                out[str(shard_id)] = {
                    "attempts": self._attempts[shard_id],
                    "errors": self._errors[shard_id],
                    "latency_ms": {
                        "count": len(window),
                        "mean": (
                            sum(window) / len(window) * 1000.0
                            if window
                            else 0.0
                        ),
                        "p95": percentile(window, 95) * 1000.0,
                        "p99": percentile(window, 99) * 1000.0,
                    },
                }
            return out


class _Bucket:
    __slots__ = ("entries", "timer")

    def __init__(self):
        self.entries: list = []
        self.timer = None


class _AsyncBatcher:
    """Event-loop-native coalescer (the thread-pool Coalescer assumes a
    blocking runner; the router's scatter-gather is a coroutine).  Same
    policy: one bucket per (mode, top_k, path) key, flushed at
    ``max_batch`` or when the window timer fires."""

    def __init__(self, runner, max_batch: int, max_wait_ms: float,
                 observe_batch=None):
        self._runner = runner
        self.max_batch = max(int(max_batch), 1)
        self.max_wait_ms = max(float(max_wait_ms), 0.0)
        self._observe = observe_batch
        self._buckets: Dict[tuple, _Bucket] = {}
        self._tasks: set = set()

    def submit(self, key: tuple, request: Request) -> asyncio.Future:
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            if self.max_wait_ms > 0:
                bucket.timer = loop.call_later(
                    self.max_wait_ms / 1000.0, self._flush, key, "timer"
                )
        bucket.entries.append((future, request))
        if len(bucket.entries) >= self.max_batch or self.max_wait_ms <= 0:
            self._flush(key, "size")
        return future

    def _flush(self, key: tuple, reason: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        if self._observe is not None:
            self._observe(len(bucket.entries), reason)
        task = asyncio.ensure_future(self._run(key, bucket.entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, key: tuple, entries: list) -> None:
        try:
            outcomes = await self._runner(key, [r for _, r in entries])
        except Exception as exc:  # defensive: the runner answers errors itself
            outcomes = [
                {"status": STATUS_ERROR,
                 "error": f"{type(exc).__name__}: {exc}"}
            ] * len(entries)
        for (future, _), outcome in zip(entries, outcomes):
            if not future.done():
                future.set_result(outcome)

    async def drain(self) -> None:
        for key in list(self._buckets):
            self._flush(key, "size")
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)


class RouterService:
    """Client-facing router service (duck-typed like ``QueryService`` so
    :class:`~repro.service.server.QueryServer` binds it unchanged).

    Lifecycle per client query: admit → coalesce by (mode, top_k, path)
    → phase-1 ``shard_resolve`` scatter (workers analyse; additive stats
    come back) → :class:`ShardMergePlan` merge → mode-specific phase 2 →
    merged rank → respond in the exact shape ``QueryService`` answers.
    """

    line_limit = MAX_LINE_BYTES  # client-facing: the normal frame budget

    # SearchBackend constraint declarations for the adaptive controller:
    # the router can always hot-swap (workers re-materialise on install),
    # but selection must scan the whole-collection reference index —
    # the router holds no local index at all.
    supports_hot_swap = True
    needs_reference_index = True

    def __init__(
        self,
        cluster: ClusterConfig,
        config: Optional[ServiceConfig] = None,
        ranking: Optional[RankingFunction] = None,
    ):
        self.cluster = cluster
        self.config = config if config is not None else ServiceConfig()
        self.ranking = (
            ranking if ranking is not None else DEFAULT_RANKING_FUNCTION
        )
        self.options = cluster.router
        self.metrics = RouterMetrics(cluster.num_shards)
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            degrade_depth=self.config.degrade_depth,
        )
        self.groups = [
            ReplicaGroup(
                shard_id,
                cluster.groups[shard_id],
                cluster.router.fail_threshold,
            )
            for shard_id in range(cluster.num_shards)
        ]
        self._batcher = _AsyncBatcher(
            self._run_batch,
            max_batch=self.config.max_batch if self.config.coalesce else 1,
            max_wait_ms=(
                self.config.max_wait_ms if self.config.coalesce else 0.0
            ),
            observe_batch=self.metrics.base.observe_batch,
        )
        self._health_task: Optional[asyncio.Task] = None
        # Version coherence: catalog and placement clocks live here; the
        # data epoch is the tuple of per-shard worker epochs learned from
        # health probes.  The router-side result cache keys on the whole
        # vector, so a cluster-wide catalog install or a placement change
        # invalidates exactly like a data mutation.
        self._authority = VersionAuthority(
            epoch_source=self._cluster_epoch,
            placement_generation=getattr(cluster, "placement_generation", 0),
        )
        self.result_cache = ResultCache(max_entries=self.config.cache_entries)
        # The last whole-collection catalog this router shipped, plus its
        # provenance — what healthz reports and what the adaptive
        # controller diffs coverage against.
        self.catalog = None
        self.last_reselection: Optional[dict] = None
        # Adaptive attachments (wired by ``route --adaptive`` or tests),
        # mirroring QueryService's.
        self.recorder = None
        self.adaptive = None
        self._predicate_analyzer = None
        # The serving event loop; captured in on_start so the adaptive
        # controller's background thread can bridge install/placement
        # calls onto it.
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------

    async def on_start(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.check_health()  # resolve unknown states before serving
        self._health_task = asyncio.ensure_future(self._health_loop())

    async def on_stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for group in self.groups:
            for replica in group.replicas:
                await replica.aclose()

    async def drain(self) -> None:
        await self._batcher.drain()

    def close(self) -> None:
        pass  # no worker pool: merging runs on the event loop

    # -- health ------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.options.health_interval_s)
            try:
                await self.check_health()
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # a probe failure must never kill the loop

    async def check_health(self) -> None:
        """One sweep: probe every replica's ``healthz`` concurrently."""
        await asyncio.gather(
            *[
                self._probe(replica)
                for group in self.groups
                for replica in group.replicas
            ]
        )

    async def _probe(self, replica: Replica) -> None:
        self.metrics.record_probe()
        timeout_s = self.options.attempt_timeout_ms / 1000.0
        try:
            response = await replica.call({"op": OP_HEALTHZ}, timeout_s)
        except WorkerError as exc:
            replica.note_failure(str(exc))
            return
        if response.get("status") != STATUS_OK:
            replica.note_failure(
                f"worker {replica.address} healthz answered "
                f"{response.get('status')!r}"
            )
            return
        replica.note_success()
        worker = response.get("worker") or {}
        replica.info = {
            "shard_id": worker.get("shard_id"),
            "num_docs": worker.get("num_docs"),
            "ranking": worker.get("ranking"),
            "epoch": response.get("epoch"),
            "version_vector": response.get("version_vector"),
            "catalog": worker.get("catalog"),
        }

    # -- version coherence -------------------------------------------------

    def _cluster_epoch(self) -> tuple:
        """The cluster's data epoch: one entry per shard, the max epoch
        any replica of the group has reported.  Opaque to every cache
        (vectors only compare with ``!=``); a worker restart or append
        moves it, which is exactly when cached results must die."""
        return tuple(
            max(
                (
                    replica.info.get("epoch") or 0
                    for replica in group.replicas
                ),
                default=0,
            )
            for group in self.groups
        )

    @property
    def epoch(self) -> tuple:
        return self._cluster_epoch()

    @property
    def catalog_generation(self) -> int:
        return self._authority.catalog_generation

    @property
    def placement_generation(self) -> int:
        return self._authority.placement_generation

    @property
    def version(self) -> VersionVector:
        """The cluster-wide :class:`~repro.core.backend.VersionVector`."""
        return self._authority.vector()

    def invalidate(self) -> None:
        """Drop the router-side result cache."""
        self.result_cache.invalidate()

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise QueryError(
                "router is not serving yet (install/placement need the "
                "running event loop)"
            )
        return self._loop

    def install_catalog(self, catalog, info: Optional[dict] = None) -> int:
        """Ship ``catalog`` to every replica of every shard group.

        The SearchBackend entry point, extended across the wire: the
        whole-collection catalog's view *definitions* go out as one
        crc-verified frame per worker (``install_catalog`` op), each
        worker re-materialises partial views over its own shard and
        adopts this router's new catalog generation, and the router-side
        result cache invalidates off the bumped vector.  Exactness is
        placement-independent — views only redirect how statistics are
        resolved — so a partial install (some replica down mid-ship)
        still serves bit-identical rankings; it is reported by raising
        :class:`~repro.errors.QueryError` naming the failed workers
        *after* the healthy workers have installed, so the adaptive loop
        retries shipping without losing the generation bump.

        Blocking; called from the adaptive controller's background
        thread (or a test thread), never from the event loop itself.
        """
        from ...views.sharding import catalog_definitions
        from .shipping import encode_catalog_frame

        loop = self._require_loop()
        definitions = (
            catalog_definitions(catalog) if catalog is not None else []
        )
        frame = encode_catalog_frame(definitions)
        generation = self._authority.bump_catalog()
        payload = {
            "op": OP_INSTALL_CATALOG,
            "generation": generation,
            "catalog": frame,
        }
        if info:
            payload["info"] = dict(info)
        timeout_s = max(30.0, self.options.attempt_timeout_ms / 1000.0)
        future = asyncio.run_coroutine_threadsafe(
            self._broadcast_install(payload, timeout_s), loop
        )
        failures = future.result(timeout=timeout_s + 10.0)
        self.catalog = catalog
        self.last_reselection = dict(info) if info else None
        self.result_cache.invalidate()
        if failures:
            detail = "; ".join(
                f"{address}: {error}" for address, error in failures
            )
            raise QueryError(
                f"catalog generation {generation} did not reach every "
                f"worker ({detail}); healthy workers installed it and "
                "rankings stay exact, retry shipping to the rest"
            )
        return generation

    async def _broadcast_install(
        self, payload: dict, timeout_s: float
    ) -> List[Tuple[str, str]]:
        """Send one install frame to every replica; returns failures as
        ``(address, error)`` pairs and folds each ack's version vector
        into the replica's health info."""
        replicas = [
            replica for group in self.groups for replica in group.replicas
        ]

        async def _one(replica: Replica):
            try:
                response = await replica.call(dict(payload), timeout_s)
            except WorkerError as exc:
                replica.note_failure(str(exc))
                return (replica.address, str(exc))
            if response.get("status") != STATUS_OK:
                error = response.get("error", "no error text")
                replica.note_failure(
                    f"install_catalog refused: {error}"
                )
                return (replica.address, error)
            replica.note_success()
            vector = response.get("version_vector")
            if vector is not None:
                replica.info["version_vector"] = vector
                replica.info["epoch"] = vector.get("epoch")
            return None

        outcomes = await asyncio.gather(*[_one(r) for r in replicas])
        return [outcome for outcome in outcomes if outcome is not None]

    def update_placement(
        self,
        groups: Dict[int, List[str]],
        generation: Optional[int] = None,
    ) -> int:
        """Re-place replica groups and bump the placement generation.

        ``groups`` maps every shard id to its new replica address list
        (the shard count cannot change — that would re-partition data).
        Replicas whose address survives keep their live connection;
        removed replicas are closed; new addresses start unknown and are
        probed immediately.  The placement component of the version
        vector bumps, so every cached result computed under the old
        placement is invalidated — rankings are placement-independent,
        the bump exists so a client can never observe a mix.
        """
        if sorted(groups) != list(range(self.cluster.num_shards)):
            raise QueryError(
                f"placement must cover shards 0..{self.cluster.num_shards - 1}"
                f", got {sorted(groups)}"
            )
        loop = self._require_loop()
        timeout_s = max(30.0, self.options.attempt_timeout_ms / 1000.0)
        future = asyncio.run_coroutine_threadsafe(
            self._apply_placement(groups), loop
        )
        future.result(timeout=timeout_s)
        new_generation = self._authority.bump_placement(generation)
        self.result_cache.invalidate()
        return new_generation

    async def _apply_placement(self, groups: Dict[int, List[str]]) -> None:
        removed: List[Replica] = []
        new_groups: List[ReplicaGroup] = []
        for shard_id in range(self.cluster.num_shards):
            addresses = list(groups[shard_id])
            existing = {
                replica.address: replica
                for replica in self.groups[shard_id].replicas
            }
            group = ReplicaGroup(
                shard_id, addresses, self.options.fail_threshold
            )
            # Keep live connections for addresses that survive the move.
            group.replicas = [
                existing.get(address)
                or Replica(shard_id, address, self.options.fail_threshold)
                for address in addresses
            ]
            removed.extend(
                replica
                for address, replica in existing.items()
                if address not in addresses
            )
            new_groups.append(group)
        self.groups = new_groups
        self.cluster.groups = {
            shard_id: list(groups[shard_id])
            for shard_id in range(self.cluster.num_shards)
        }
        for replica in removed:
            await replica.aclose()
        await self.check_health()

    def _record_workload(self, query_text, context_size) -> None:
        """Fold one served query into the workload recorder (mirrors
        ``QueryService._record_workload``; the predicate analyzer comes
        from the reference index the CLI wires in)."""
        if self.recorder is None or not query_text:
            return
        from ...core.query import parse_query

        try:
            parsed = parse_query(query_text)
        except ReproError:
            return
        predicates = list(parsed.predicates)
        if self._predicate_analyzer is not None:
            analyzed = []
            for predicate in predicates:
                term = self._predicate_analyzer.analyze_query_term(predicate)
                if term is None:
                    return
                analyzed.append(term)
            predicates = analyzed
        self.recorder.record(predicates, context_size or 0)

    # -- request handling --------------------------------------------------

    async def handle_line(self, line: bytes) -> bytes:
        try:
            request = decode_request(line, limit=self.line_limit)
        except ProtocolError as exc:
            return encode_response({"status": STATUS_ERROR, "error": str(exc)})
        payload = await self.handle_request(request)
        return encode_response(payload)

    async def handle_request(self, request: Request) -> dict:
        if request.op == OP_HEALTHZ:
            return self._with_id(request, self._healthz())
        if request.op == OP_METRICS:
            return self._with_id(request, self._metrics())
        if request.op in CLUSTER_OPS:
            payload = {
                "status": STATUS_ERROR,
                "error": (
                    f"op {request.op!r} is cluster-internal: clients send "
                    "'query' to the router; shard ops are router→worker only"
                ),
            }
            if request.id is not None:
                payload["id"] = request.id
            return payload
        return await self._handle_query(request)

    @staticmethod
    def _with_id(request: Request, payload: dict) -> dict:
        if request.id is not None:
            payload["id"] = request.id
        return payload

    async def _handle_query(self, request: Request) -> dict:
        started = time.monotonic()
        self.metrics.base.observe_request()
        if not self.admission.try_admit():
            self.metrics.base.observe_shed()
            return self._respond(
                request,
                STATUS_SHED,
                started,
                error=(
                    f"router overloaded: {self.admission.max_pending} "
                    "requests already pending"
                ),
            )
        try:
            return await self._admitted(request, started)
        finally:
            self.admission.release()

    async def _admitted(self, request: Request, started: float) -> dict:
        top_k = (
            request.top_k
            if request.top_k is not None
            else self.config.default_top_k
        )
        mode, path = request.mode, request.path

        # Serving-cache lookup, keyed exactly like the single-node
        # service but guarded by the *cluster* version vector: per-shard
        # worker epochs × catalog generation × placement generation.
        cache_key = None
        vector = self.version
        if self.config.cache_enabled:
            try:
                cache_key = ResultCache.key(request.query, mode, top_k)
            except ReproError:
                cache_key = None  # unparseable; the workers report it
            if cache_key is not None:
                payload = self.result_cache.get(cache_key, vector)
                if payload is not None:
                    report = payload.get("report") or {}
                    self._record_workload(
                        request.query, report.get("context_size")
                    )
                    self.metrics.base.observe_path(
                        (report.get("resolution") or {}).get("path")
                    )
                    self.metrics.base.observe_ok(
                        time.monotonic() - started, cached=True
                    )
                    return self._respond(
                        request, STATUS_OK, started, body=payload, cached=True
                    )

        # Same graceful degradation as the single-node service: a deep
        # queue forces the cheap planner path (answer-preserving).
        degraded = False
        if (
            mode != MODE_CONVENTIONAL
            and path == PATH_AUTO
            and self.admission.degraded
        ):
            path = self.config.degrade_path
            degraded = True
        timeout_ms = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self.config.default_timeout_ms
        )
        submit = self._batcher.submit((mode, top_k, path), request)
        try:
            if timeout_ms is not None:
                outcome = await asyncio.wait_for(submit, timeout_ms / 1000.0)
            else:
                outcome = await submit
        except asyncio.TimeoutError:
            self.metrics.base.observe_timeout(time.monotonic() - started)
            return self._respond(
                request,
                STATUS_TIMEOUT,
                started,
                error=f"deadline of {timeout_ms:g}ms exceeded",
            )
        status = outcome.get("status", STATUS_ERROR)
        if status == STATUS_OK:
            body = outcome["body"]
            report = body.get("report") or {}
            if cache_key is not None:
                self.result_cache.put(cache_key, vector, body)
            self._record_workload(request.query, report.get("context_size"))
            self.metrics.base.observe_path(
                (report.get("resolution") or {}).get("path")
            )
            self.metrics.base.observe_topk(report.get("topk"))
            self.metrics.base.observe_ok(
                time.monotonic() - started, degraded=degraded
            )
            return self._respond(
                request, STATUS_OK, started, body=body, degraded=degraded
            )
        if status == STATUS_SHED:
            self.metrics.base.observe_shed()
            return self._respond(
                request, STATUS_SHED, started, error=outcome.get("error")
            )
        self.metrics.base.observe_error(time.monotonic() - started)
        return self._respond(
            request, STATUS_ERROR, started, error=outcome.get("error")
        )

    def _respond(
        self,
        request: Request,
        status: str,
        started: float,
        body: Optional[dict] = None,
        error: Optional[str] = None,
        degraded: bool = False,
        cached: bool = False,
    ) -> dict:
        payload = {
            "status": status,
            "elapsed_ms": (time.monotonic() - started) * 1000.0,
        }
        if request.id is not None:
            payload["id"] = request.id
        if body is not None:
            payload.update(body)
        if error is not None:
            payload["error"] = error
        if degraded:
            payload["degraded"] = True
        if cached:
            payload["cached"] = True
        return payload

    # -- batch execution ---------------------------------------------------

    async def _run_batch(
        self, key: tuple, requests: Sequence[Request]
    ) -> List[dict]:
        mode, top_k, path = key
        try:
            return await self._scatter_gather(mode, top_k, path, requests)
        except GroupUnavailable as exc:
            # A whole replica group is gone: shed the affected queries
            # with one readable error naming the group and its failures.
            self.metrics.record_group_down()
            return [
                {"status": STATUS_SHED, "error": str(exc)} for _ in requests
            ]
        except WorkerError as exc:
            return [
                {"status": STATUS_ERROR, "error": str(exc)} for _ in requests
            ]

    async def _scatter_gather(
        self,
        mode: str,
        top_k: Optional[int],
        path: str,
        requests: Sequence[Request],
    ) -> List[dict]:
        plan = ShardMergePlan(
            self.ranking,
            mode,
            top_k,
            forced=path not in (None, PATH_AUTO),
        )
        outcomes: List[Optional[dict]] = [None] * len(requests)
        payload = {
            "op": OP_SHARD_RESOLVE,
            "mode": mode,
            "path": path,
            "tasks": [
                {"qid": qid, "query": request.query}
                for qid, request in enumerate(requests)
            ],
        }
        shard_maps = await self._scatter([payload] * len(self.groups))

        # Register queries off shard 0's analysis (every worker runs the
        # same analyzers; a per-query analysis failure is identical on
        # all shards and surfaces as one readable error here).
        live: List[int] = []
        analyzed: Dict[int, dict] = {}
        address0 = shard_maps[0][0]
        for qid in range(len(requests)):
            entry = shard_maps[0][1].get(qid)
            if entry is None:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address0} omitted query {qid} from its "
                        "response frame"
                    ),
                }
                continue
            if not entry.get("ok"):
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"{entry.get('error_type', 'QueryError')}: "
                        f"{entry.get('error', 'worker reported an error')}"
                    ),
                }
                continue
            try:
                plan.add_query(
                    qid,
                    _rebuild_query(entry["keywords"], entry["predicates"]),
                )
            except ReproError as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": f"{type(exc).__name__}: {exc}",
                }
                continue
            except (KeyError, TypeError, ValueError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address0}: malformed phase-1 entry for "
                        f"query {qid}: {exc!r}"
                    ),
                }
                continue
            live.append(qid)
            analyzed[qid] = entry

        if live:
            if mode == MODE_CONVENTIONAL:
                await self._gather_conventional(
                    plan, live, analyzed, shard_maps, outcomes, top_k
                )
            elif mode == MODE_DISJUNCTIVE:
                await self._gather_disjunctive(
                    plan, live, analyzed, shard_maps, outcomes
                )
            else:
                await self._gather_context(
                    plan, live, analyzed, shard_maps, outcomes, top_k
                )
        return [
            outcome
            if outcome is not None
            else {"status": STATUS_ERROR, "error": "query produced no result"}
            for outcome in outcomes
        ]

    def _fold_resolutions(
        self,
        plan: ShardMergePlan,
        live: List[int],
        shard_maps: List[Tuple[str, Dict[int, dict]]],
        outcomes: List[Optional[dict]],
        with_num_results: bool,
    ) -> List[int]:
        """Fold every shard's phase-1 statistics (ascending shard order)
        and run the global emptiness check; returns the surviving qids."""
        survivors: List[int] = []
        for qid in live:
            address = shard_maps[0][0]
            try:
                specs = plan.specs(qid)
                for shard_id in range(len(self.groups)):
                    address, mapping = shard_maps[shard_id]
                    entry = self._shard_entry(mapping, qid, address)
                    plan.add_resolution(
                        qid,
                        shard_id,
                        self._unpack_values(specs, entry["values"], address),
                        entry["path"],
                        int(entry["predicted"]),
                        _counter_from_dict(entry["counter"]),
                        num_results=(
                            int(entry.get("num_results", 0))
                            if with_num_results
                            else 0
                        ),
                    )
            except WorkerError as exc:
                outcomes[qid] = {"status": STATUS_ERROR, "error": str(exc)}
                continue
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address}: malformed phase-1 entry for "
                        f"query {qid}: {exc!r}"
                    ),
                }
                continue
            error = plan.complete_resolution(qid)
            if error is not None:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": f"{type(error).__name__}: {error}",
                }
                continue
            survivors.append(qid)
        return survivors

    async def _gather_context(
        self, plan, live, analyzed, shard_maps, outcomes, top_k
    ) -> None:
        phase2 = self._fold_resolutions(
            plan, live, shard_maps, outcomes, with_num_results=True
        )
        if not phase2:
            return
        # Phase 2: broadcast the merged statistics; each shard re-scores
        # its own phase-1 candidates (their ids travelled through us, so
        # any replica of the group can serve this).
        payloads = []
        for shard_id in range(len(self.groups)):
            _, mapping = shard_maps[shard_id]
            tasks = []
            for qid in phase2:
                merged = plan.merged_values(qid)
                tasks.append(
                    {
                        "qid": qid,
                        "keywords": analyzed[qid]["keywords"],
                        "values": [
                            merged[spec] for spec in plan.specs(qid)
                        ],
                        "result_ids": mapping[qid]["result_ids"],
                    }
                )
            payloads.append(
                {"op": OP_SHARD_SCORE, "top_k": top_k, "tasks": tasks}
            )
        frames = await self._scatter(payloads)
        for qid in phase2:
            address = frames[0][0]
            try:
                for shard_id in range(len(self.groups)):
                    address, mapping = frames[shard_id]
                    entry = self._shard_entry(mapping, qid, address)
                    plan.add_hits(qid, [tuple(hit) for hit in entry["hits"]])
            except WorkerError as exc:
                outcomes[qid] = {"status": STATUS_ERROR, "error": str(exc)}
                continue
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address}: malformed phase-2 entry for "
                        f"query {qid}: {exc!r}"
                    ),
                }
                continue
            outcomes[qid] = self._ok_outcome(plan, qid)

    async def _gather_conventional(
        self, plan, live, analyzed, shard_maps, outcomes, top_k
    ) -> None:
        # Merge each query's per-shard collection-statistic summands
        # (exact integer sums), then broadcast the merged whole.
        stats_by_qid: Dict[int, object] = {}
        phase2: List[int] = []
        for qid in live:
            address = shard_maps[0][0]
            try:
                parts = []
                for shard_id in range(len(self.groups)):
                    address, mapping = shard_maps[shard_id]
                    parts.append(
                        self._shard_entry(mapping, qid, address)["collection"]
                    )
                stats_by_qid[qid] = ShardMergePlan.merge_collection_stats(
                    parts
                )
            except WorkerError as exc:
                outcomes[qid] = {"status": STATUS_ERROR, "error": str(exc)}
                continue
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address}: malformed phase-1 entry for "
                        f"query {qid}: {exc!r}"
                    ),
                }
                continue
            phase2.append(qid)
        if not phase2:
            return
        payload = {
            "op": OP_SHARD_CONVENTIONAL,
            "top_k": top_k,
            "tasks": [
                {
                    "qid": qid,
                    "keywords": analyzed[qid]["keywords"],
                    "predicates": analyzed[qid]["predicates"],
                    "stats": {
                        "num_docs": stats_by_qid[qid].cardinality,
                        "total_length": stats_by_qid[qid].total_length,
                        "df": stats_by_qid[qid].df,
                        "tc": stats_by_qid[qid].tc,
                    },
                }
                for qid in phase2
            ],
        }
        frames = await self._scatter([payload] * len(self.groups))
        for qid in phase2:
            address = frames[0][0]
            try:
                for shard_id in range(len(self.groups)):
                    address, mapping = frames[shard_id]
                    entry = self._shard_entry(mapping, qid, address)
                    plan.add_conventional(
                        qid,
                        shard_id,
                        [tuple(hit) for hit in entry["hits"]],
                        int(entry["num_results"]),
                        int(entry["predicted"]),
                        _counter_from_dict(entry["counter"]),
                    )
            except WorkerError as exc:
                outcomes[qid] = {"status": STATUS_ERROR, "error": str(exc)}
                continue
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address}: malformed conventional entry "
                        f"for query {qid}: {exc!r}"
                    ),
                }
                continue
            outcomes[qid] = self._ok_outcome(plan, qid)

    async def _gather_disjunctive(
        self, plan, live, analyzed, shard_maps, outcomes
    ) -> None:
        phase2 = self._fold_resolutions(
            plan, live, shard_maps, outcomes, with_num_results=False
        )
        if not phase2:
            return
        # Global per-term bounds: the collection-wide max tf is the max
        # over per-shard maxima — the same integer the sharded index's
        # accessor computes locally, hence identical bounds and term
        # orderings on every shard.
        bounds_by_qid: Dict[int, Dict[str, float]] = {}
        for qid in list(phase2):
            max_tfs: Dict[str, int] = {}
            for shard_id in range(len(self.groups)):
                entry = shard_maps[shard_id][1].get(qid) or {}
                for term, max_tf in (entry.get("max_tf") or {}).items():
                    max_tfs[term] = max(max_tfs.get(term, 0), int(max_tf))
            bounds_by_qid[qid] = plan.term_bounds(
                qid, lambda term: max_tfs.get(term, 0)
            )
        payload = {
            "op": OP_SHARD_TOPK,
            "tasks": [
                {
                    "qid": qid,
                    "keywords": analyzed[qid]["keywords"],
                    "predicates": analyzed[qid]["predicates"],
                    "values": [
                        plan.merged_values(qid)[spec]
                        for spec in plan.specs(qid)
                    ],
                    "k": plan.top_k,
                    "term_bounds": bounds_by_qid[qid],
                    "block_max": True,
                }
                for qid in phase2
            ],
        }
        frames = await self._scatter([payload] * len(self.groups))
        for qid in phase2:
            address = frames[0][0]
            try:
                for shard_id in range(len(self.groups)):
                    address, mapping = frames[shard_id]
                    entry = self._shard_entry(mapping, qid, address)
                    plan.add_topk(
                        qid,
                        shard_id,
                        [tuple(hit) for hit in entry["hits"]],
                        _counter_from_dict(entry["counter"]),
                        entry["topk"],
                        True,
                    )
            except WorkerError as exc:
                outcomes[qid] = {"status": STATUS_ERROR, "error": str(exc)}
                continue
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                outcomes[qid] = {
                    "status": STATUS_ERROR,
                    "error": (
                        f"worker {address}: malformed top-k entry for "
                        f"query {qid}: {exc!r}"
                    ),
                }
                continue
            outcomes[qid] = self._ok_outcome(plan, qid)

    def _ok_outcome(self, plan: ShardMergePlan, qid: int) -> dict:
        results = plan.finish(qid)
        return {
            "status": STATUS_OK,
            "body": {
                "mode": plan.mode,
                "hits": [
                    {
                        "doc": hit.external_id,
                        "doc_id": hit.doc_id,
                        "score": hit.score,
                    }
                    for hit in results.hits
                ],
                "report": results.report.to_dict(),
            },
        }

    # -- scatter / failover ------------------------------------------------

    async def _scatter(
        self, payloads: Sequence[dict]
    ) -> List[Tuple[str, Dict[int, dict]]]:
        """One payload per shard group, concurrently; returns per shard
        the answering replica's address and its results keyed by qid.
        Raises :class:`GroupUnavailable` if any group has no live
        replica left after failover."""
        responses = await asyncio.gather(
            *[
                self._call_group(self.groups[shard_id], payloads[shard_id])
                for shard_id in range(len(self.groups))
            ],
            return_exceptions=True,
        )
        out: List[Tuple[str, Dict[int, dict]]] = []
        for response in responses:
            if isinstance(response, BaseException):
                raise response
            address, frame = response
            mapping: Dict[int, dict] = {}
            for item in frame.get("results") or []:
                if isinstance(item, dict) and isinstance(
                    item.get("qid"), int
                ):
                    mapping[item["qid"]] = item
            out.append((address, mapping))
        return out

    async def _call_group(
        self, group: ReplicaGroup, payload: dict
    ) -> Tuple[str, dict]:
        """Send to the group with failover: every replica gets at most
        one attempt under the per-attempt deadline budget; the first
        well-formed ``ok`` frame wins."""
        errors: List[str] = []
        first = True
        for replica in group.candidates():
            if not first:
                self.metrics.record_failover()
            first = False
            started = time.monotonic()
            try:
                response = await replica.call(
                    payload, self.options.attempt_timeout_ms / 1000.0
                )
            except WorkerError as exc:
                self.metrics.record_attempt(
                    group.shard_id, time.monotonic() - started, ok=False
                )
                replica.note_failure(str(exc))
                errors.append(str(exc))
                continue
            elapsed = time.monotonic() - started
            if response.get("status") != STATUS_OK:
                error = (
                    f"worker {replica.address} answered "
                    f"{response.get('status')!r}: "
                    f"{response.get('error') or 'no error text'}"
                )
                self.metrics.record_attempt(group.shard_id, elapsed, ok=False)
                replica.note_failure(error)
                errors.append(error)
                continue
            if not isinstance(response.get("results"), list):
                error = (
                    f"worker {replica.address} returned a frame with no "
                    "results list"
                )
                self.metrics.record_attempt(group.shard_id, elapsed, ok=False)
                replica.note_failure(error)
                errors.append(error)
                continue
            self.metrics.record_attempt(group.shard_id, elapsed, ok=True)
            replica.note_success()
            return replica.address, response
        raise GroupUnavailable(
            group.shard_id,
            "; ".join(errors) if errors else "no replicas configured",
        )

    @staticmethod
    def _shard_entry(
        mapping: Dict[int, dict], qid: int, address: str
    ) -> dict:
        entry = mapping.get(qid)
        if entry is None:
            raise WorkerProtocolError(address, f"response omitted query {qid}")
        if entry.get("ok") is False:
            raise WorkerError(
                address,
                f"{entry.get('error_type', 'QueryError')}: "
                f"{entry.get('error', 'worker reported an error')}",
            )
        return entry

    @staticmethod
    def _unpack_values(specs, packed, address: str) -> dict:
        if len(packed) != len(specs):
            raise WorkerProtocolError(
                address,
                f"returned {len(packed)} statistic values for "
                f"{len(specs)} specs (ranking mismatch?)",
            )
        return dict(zip(specs, packed))

    # -- aggregated health and metrics -------------------------------------

    def _healthz(self) -> dict:
        groups = []
        available = 0
        total_docs = 0
        docs_known = True
        for group in self.groups:
            replicas = []
            doc_counts = set()
            for replica in group.replicas:
                replicas.append(
                    {
                        "address": replica.address,
                        "state": replica.state,
                        "consecutive_failures": replica.consecutive_failures,
                        "last_error": replica.last_error,
                        "num_docs": replica.info.get("num_docs"),
                        "ranking": replica.info.get("ranking"),
                        # Per-replica coherence state: the worker's full
                        # version vector plus its catalog's generation
                        # and provenance, as last probed/acked.
                        "version_vector": replica.info.get("version_vector"),
                        "catalog": replica.info.get("catalog"),
                    }
                )
                if replica.info.get("num_docs") is not None:
                    doc_counts.add(replica.info["num_docs"])
            if group.available:
                available += 1
            if len(doc_counts) == 1:
                total_docs += next(iter(doc_counts))
            else:
                docs_known = False
            groups.append(
                {
                    "shard": group.shard_id,
                    "available": group.available,
                    # Sibling replicas must serve the same documents; a
                    # num_docs mismatch means a botched bootstrap.
                    "consistent": len(doc_counts) <= 1,
                    "replicas": replicas,
                }
            )
        payload = {
            "status": (
                STATUS_OK if available == len(self.groups) else "degraded"
            ),
            "version": __version__,
            "engine": "router",
            "num_shards": self.cluster.num_shards,
            "replication": self.cluster.replication,
            "num_docs": total_docs if docs_known else None,
            "groups_available": available,
            "ranking": self.ranking.name,
            "epoch": list(self.epoch),
            "catalog_generation": self.catalog_generation,
            "placement_generation": self.placement_generation,
            "version_vector": self.version.to_dict(),
            "catalog": {
                "generation": self.catalog_generation,
                "views": len(self.catalog) if self.catalog is not None else 0,
                "provenance": self.last_reselection,
            },
            "uptime_seconds": time.monotonic() - self.metrics.base.started,
            "groups": groups,
        }
        if self.adaptive is not None:
            payload["adaptive"] = self.adaptive.info()
        return payload

    def _metrics(self) -> dict:
        return self.metrics.base.snapshot(
            extra={
                "status": STATUS_OK,
                "queue_depth": self.admission.depth,
                "max_pending": self.admission.max_pending,
                "degrade_depth": self.admission.degrade_depth,
                "admitted": self.admission.admitted,
                "cache": self.result_cache.stats(),
                "epoch": list(self.epoch),
                "catalog_generation": self.catalog_generation,
                "placement_generation": self.placement_generation,
                "version_vector": self.version.to_dict(),
                "router": {
                    "failovers": self.metrics.failovers,
                    "group_down_sheds": self.metrics.group_down,
                    "health_probes": self.metrics.health_probes,
                    "per_shard": self.metrics.shard_snapshot(),
                    "replicas": [
                        {
                            "address": replica.address,
                            "shard": group.shard_id,
                            "state": replica.state,
                            "consecutive_failures": (
                                replica.consecutive_failures
                            ),
                            "version_vector": replica.info.get(
                                "version_vector"
                            ),
                        }
                        for group in self.groups
                        for replica in group.replicas
                    ],
                },
            }
        )


def router_service_factory(
    cluster: ClusterConfig, ranking: Optional[RankingFunction] = None
):
    """A ``service_class`` callable for :class:`~repro.service.QueryServer`
    (the router has no local engine; the ``engine`` argument is unused)."""

    def factory(engine, config):
        return RouterService(cluster, config, ranking=ranking)

    return factory


def router_thread(
    cluster: ClusterConfig,
    config: Optional[ServiceConfig] = None,
    ranking: Optional[RankingFunction] = None,
) -> ServerThread:
    """A ready-to-start router on a background thread (tests, CLI)."""
    return ServerThread(
        None, config, service_class=router_service_factory(cluster, ranking)
    )
