"""A shard worker: one shard of the index behind the JSON-lines server.

:class:`ShardWorkerService` is the existing :class:`QueryService` with
the cluster ops bolted on — the same asyncio transport, admission
control, metrics, and ``healthz`` an operator already knows, plus:

- the shard-phase ops (``shard_resolve`` / ``shard_score`` /
  ``shard_topk`` / ``shard_conventional``) the router scatter-gathers,
  evaluated by the *same* :class:`~repro.core.sharded_engine.ShardRuntime`
  the in-process backends drive (there is no worker-specific resolution
  or scoring code — that is the bit-identity argument's first half);
- segment shipping (``segment_manifest`` / ``fetch_segment``) so a new
  replica bootstraps from this worker's sealed artefact files;
- catalog install (``install_catalog``): the router ships crc-verified
  view definitions, the worker re-materialises partial views over its
  shard, swaps the one :class:`~repro.views.handle.CatalogHandle` its
  flat engine and :class:`ShardRuntime` share, adopts the router's
  catalog generation, and acks with its new
  :class:`~repro.core.backend.VersionVector`.

Wire ops are *stateless*: phase 1 returns the shard's local candidate
ids to the router instead of stashing them, so the router may send
phase 2 to any replica of the group.  Plain ``query`` ops still work
and answer over the shard's *local* statistics — useful for poking one
worker, but the globally-merged ranking lives at the router.

A batch of shard tasks arrives as one frame and is executed on the
service's worker pool off the event loop; per-task failures (stopword
keywords, bad syntax) come back as per-task error entries, and a
malformed payload is a readable per-frame error — never a traceback
on the router's socket.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.engine import ContextSearchEngine
from ...core.logical import MODE_CONVENTIONAL, MODE_DISJUNCTIVE
from ...core.operators import StatsMerge
from ...core.query import parse_query
from ...core.ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from ...core.report import _counter_from_dict, _counter_to_dict
from ...core.sharded_engine import ShardRuntime
from ...core.statistics import TERM_COUNT, CollectionStatistics
from ...errors import QueryError, ReproError
from ...index.sharded import IndexShard
from ...views.handle import CatalogHandle
from ..protocol import (
    CLUSTER_OPS,
    MAX_CLUSTER_LINE_BYTES,
    OP_FETCH_SEGMENT,
    OP_INSTALL_CATALOG,
    OP_SEGMENT_MANIFEST,
    OP_SHARD_CONVENTIONAL,
    OP_SHARD_RESOLVE,
    OP_SHARD_SCORE,
    OP_SHARD_TOPK,
    STATUS_ERROR,
    STATUS_OK,
    Request,
)
from ..server import QueryService, ServerThread, ServiceConfig
from .shipping import ArtifactShipper, decode_catalog_frame

__all__ = ["ShardWorkerService", "worker_service_factory", "worker_thread"]

PATH_AUTO = "auto"


class ShardWorkerService(QueryService):
    """The per-shard server: QueryService + shard ops + shipping."""

    line_limit = MAX_CLUSTER_LINE_BYTES

    def __init__(
        self,
        engine,
        config: Optional[ServiceConfig] = None,
        *,
        runtime: ShardRuntime,
        artifact: Optional[Path] = None,
    ):
        super().__init__(engine, config)
        self.runtime = runtime
        self.ranking = runtime.ranking
        self.artifact = Path(artifact) if artifact is not None else None
        self._shipper = (
            ArtifactShipper(self.artifact) if self.artifact is not None else None
        )

    # -- dispatch --------------------------------------------------------

    async def handle_request(self, request: Request) -> dict:
        if request.op in CLUSTER_OPS:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self.pool, self._cluster_request, request
            )
        return await super().handle_request(request)

    def _cluster_request(self, request: Request) -> dict:
        payload = request.payload or {}
        try:
            body = self._dispatch_cluster(request.op, payload)
            response = dict(body)
            response["status"] = STATUS_OK
        except ReproError as exc:
            response = {
                "status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
            }
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            # A malformed frame from a confused router: answer readably,
            # never let a traceback tear the connection down.
            response = {
                "status": STATUS_ERROR,
                "error": f"malformed {request.op!r} payload: {exc!r}",
            }
        if request.id is not None:
            response["id"] = request.id
        return response

    def _dispatch_cluster(self, op: str, payload: dict) -> dict:
        if op == OP_SHARD_RESOLVE:
            return self._shard_resolve(payload)
        if op == OP_SHARD_SCORE:
            return self._shard_score(payload)
        if op == OP_SHARD_TOPK:
            return self._shard_topk(payload)
        if op == OP_SHARD_CONVENTIONAL:
            return self._shard_conventional(payload)
        if op == OP_INSTALL_CATALOG:
            return self._install_catalog(payload)
        if self._shipper is None:
            raise QueryError(
                "this worker serves an in-memory shard and has no artefact "
                "files to ship (start it with --index to enable bootstrap)"
            )
        if op == OP_SEGMENT_MANIFEST:
            return self._shipper.manifest()
        return self._shipper.fetch(
            payload["name"], payload.get("offset", 0), payload.get("length")
        )

    # -- analysis (must mirror ShardedEngine._analyze exactly) -----------

    def _analyze_text(self, text: str) -> Tuple[List[str], List[str]]:
        parsed = parse_query(text)
        keywords = []
        for keyword in parsed.keywords:
            analyzed = self.runtime.index.analyzer.analyze_query_term(keyword)
            if analyzed is None:
                raise QueryError(
                    f"keyword {keyword!r} was removed by analysis (stopword?)"
                )
            keywords.append(analyzed)
        predicates = []
        for predicate in parsed.predicates:
            analyzed = self.runtime.index.predicate_analyzer.analyze_query_term(
                predicate
            )
            if analyzed is None:
                raise QueryError(f"empty context predicate: {predicate!r}")
            predicates.append(analyzed)
        return keywords, predicates

    # -- shard phases ----------------------------------------------------

    def _shard_resolve(self, payload: dict) -> dict:
        """Phase 1: parse + analyse + per-shard additive statistics.

        Workers own analysis (they hold the index's analyzers); the
        router gets the analysed terms back and re-derives the spec
        order itself — the same deterministic
        ``required_collection_specs`` both sides run.
        """
        mode = payload.get("mode", "context")
        force = payload.get("path") or None
        if force == PATH_AUTO:
            force = None
        results = []
        for task in payload["tasks"]:
            qid = int(task["qid"])
            try:
                results.append(self._resolve_one(qid, task["query"], mode, force))
            except ReproError as exc:
                results.append(
                    {
                        "qid": qid,
                        "ok": False,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                )
        return {"results": results}

    def _resolve_one(self, qid: int, text: str, mode: str, force) -> dict:
        keywords, predicates = self._analyze_text(text)
        entry: dict = {
            "qid": qid,
            "ok": True,
            "keywords": keywords,
            "predicates": predicates,
        }
        if mode == MODE_CONVENTIONAL:
            entry["collection"] = self._collection_part(keywords)
            return entry
        if mode == MODE_DISJUNCTIVE and not self.ranking.decomposable:
            raise QueryError(
                f"ranking model {self.ranking.name!r} does not support "
                "MaxScore pruning (non-zero score for absent terms)"
            )
        specs = tuple(self.ranking.required_collection_specs(keywords))
        StatsMerge.check_additive(specs)
        if mode == MODE_DISJUNCTIVE:
            _, values, path, predicted, counter = self.runtime.stats_many(
                [(qid, tuple(keywords), tuple(predicates), specs, True, force)]
            )[0]
            entry["max_tf"] = {
                term: self.runtime.index.postings(term).max_tf
                for term in dict.fromkeys(keywords)
            }
        else:
            (
                (_, values, num_results, path, predicted, counter),
                result_ids,
            ) = self.runtime.resolve_stateless(
                qid, tuple(keywords), tuple(predicates), specs, force
            )
            entry["num_results"] = num_results
            entry["result_ids"] = result_ids
        entry["values"] = [values[spec] for spec in specs]
        entry["path"] = path
        entry["predicted"] = predicted
        entry["counter"] = _counter_to_dict(counter)
        return entry

    def _values_for(self, keywords: Sequence[str], packed: Sequence) -> dict:
        """Rebuild the spec→value map from the wire's positional list."""
        specs = tuple(self.ranking.required_collection_specs(keywords))
        if len(specs) != len(packed):
            raise QueryError(
                f"statistic value list has {len(packed)} entries for "
                f"{len(specs)} specs (router/worker ranking mismatch?)"
            )
        return dict(zip(specs, packed))

    def _shard_score(self, payload: dict) -> dict:
        top_k = payload.get("top_k")
        results = []
        for task in payload["tasks"]:
            keywords = [str(w) for w in task["keywords"]]
            values = self._values_for(keywords, task["values"])
            hits = self.runtime.score_stateless(
                keywords, [int(i) for i in task["result_ids"]], values, top_k
            )
            results.append({"qid": int(task["qid"]), "hits": hits})
        return {"results": results}

    def _shard_topk(self, payload: dict) -> dict:
        results = []
        for task in payload["tasks"]:
            qid = int(task["qid"])
            keywords = tuple(str(w) for w in task["keywords"])
            values = self._values_for(keywords, task["values"])
            out = self.runtime.topk_many(
                [
                    (
                        qid,
                        keywords,
                        tuple(str(p) for p in task["predicates"]),
                        values,
                        int(task["k"]),
                        {
                            str(t): float(b)
                            for t, b in task["term_bounds"].items()
                        },
                        bool(task.get("block_max", True)),
                    )
                ]
            )[0]
            _, hits, counter, topk_diag = out
            results.append(
                {
                    "qid": qid,
                    "hits": hits,
                    "counter": _counter_to_dict(counter),
                    "topk": topk_diag,
                }
            )
        return {"results": results}

    def _shard_conventional(self, payload: dict) -> dict:
        top_k = payload.get("top_k")
        results = []
        for task in payload["tasks"]:
            qid = int(task["qid"])
            merged = task["stats"]
            stats = CollectionStatistics(
                cardinality=int(merged["num_docs"]),
                total_length=int(merged["total_length"]),
                df={str(t): int(v) for t, v in merged.get("df", {}).items()},
                tc={str(t): int(v) for t, v in merged.get("tc", {}).items()},
            )
            _, hits, num_results, predicted, counter = (
                self.runtime.conventional_many(
                    [
                        (
                            qid,
                            tuple(str(w) for w in task["keywords"]),
                            tuple(str(p) for p in task["predicates"]),
                            stats,
                            top_k,
                        )
                    ]
                )[0]
            )
            results.append(
                {
                    "qid": qid,
                    "hits": hits,
                    "num_results": num_results,
                    "predicted": predicted,
                    "counter": _counter_to_dict(counter),
                }
            )
        return {"results": results}

    # -- catalog install -------------------------------------------------

    def _install_catalog(self, payload: dict) -> dict:
        """The cluster-wide coherence op: install a shipped catalog.

        The router ships crc-verified view *definitions* plus its
        catalog generation; this worker re-materialises partial views
        over its own shard (exact — df/tc aggregate distributively
        across shards), swaps its shared :class:`CatalogHandle`, adopts
        the router's generation, and acks with its new version vector.
        Runs on the worker pool (materialisation is CPU work), already
        off the event loop via ``handle_request``.
        """
        definitions = decode_catalog_frame(payload["catalog"])
        generation = payload.get("generation")
        generation = int(generation) if generation is not None else None
        info = payload.get("info")
        from ...views.catalog import ViewCatalog
        from ...views.view import materialize_view
        from ...views.wide_table import WideSparseTable

        table = WideSparseTable.from_index(self.runtime.index)
        catalog = ViewCatalog(
            materialize_view(table, keywords, df_terms, tc_terms)
            for keywords, df_terms, tc_terms in definitions
        )
        new_generation = self.engine.install_catalog(
            catalog, info=info, generation=generation
        )
        # worker_thread/worker_service_factory give the flat engine and
        # the shard runtime one shared handle; if a custom wiring split
        # them, swap the runtime's too (advance_to makes this idempotent
        # when they are the same handle).
        if self.runtime.catalog_handle is not self.engine.catalog_handle:
            self.runtime.catalog_handle.swap(
                catalog,
                generation=generation if generation is not None else new_generation,
            )
        return {
            "installed_views": len(catalog),
            "generation": new_generation,
            "version_vector": self.version.to_dict(),
        }

    def _collection_part(self, keywords: Sequence[str]) -> dict:
        """This shard's slice of the whole-collection statistics — the
        additive summands of ``ShardedEngine._global_statistics``."""
        index = self.runtime.index
        part = {
            "num_docs": index.num_docs,
            "total_length": index.total_length,
            "df": {w: index.document_frequency(w) for w in keywords},
        }
        wants_tc = any(
            spec.kind == TERM_COUNT
            for spec in self.ranking.required_collection_specs(keywords)
        )
        if wants_tc:
            part["tc"] = {
                w: sum(tf for _, tf in index.postings(w)) for w in keywords
            }
        return part

    # -- health ----------------------------------------------------------

    def _healthz(self) -> dict:
        payload = super()._healthz()
        payload["engine"] = "shard-worker"
        catalog, catalog_generation = self.runtime.catalog_handle.get()
        payload["worker"] = {
            "shard_id": self.runtime.shard_id,
            "num_docs": self.runtime.index.num_docs,
            "total_length": self.runtime.index.total_length,
            "ranking": self.ranking.name,
            "artifact": str(self.artifact) if self.artifact else None,
            "catalog": {
                "generation": catalog_generation,
                "views": len(catalog) if catalog is not None else 0,
                "provenance": getattr(self.engine, "last_reselection", None),
            },
        }
        return payload


def worker_service_factory(
    shard: IndexShard,
    ranking: Optional[RankingFunction] = None,
    catalog=None,
    artifact: Optional[Path] = None,
    use_skips: bool = True,
):
    """A ``service_class`` callable for :class:`~repro.service.QueryServer`.

    Builds the shard's :class:`ShardRuntime` (the same planner stack the
    in-process backends use) plus a flat engine over the same sub-index
    for plain ``query`` ops.  ``catalog`` is wrapped in one shared
    :class:`CatalogHandle` so an ``install_catalog`` op swaps the
    runtime's and the flat engine's catalog at one point.
    """
    runtime = ShardRuntime(
        shard,
        ranking or DEFAULT_RANKING_FUNCTION,
        CatalogHandle.ensure(catalog),
        use_skips=use_skips,
    )

    def factory(engine, config):
        return ShardWorkerService(
            engine, config, runtime=runtime, artifact=artifact
        )

    factory.runtime = runtime
    return factory


def worker_thread(
    shard: IndexShard,
    config: Optional[ServiceConfig] = None,
    ranking: Optional[RankingFunction] = None,
    catalog=None,
    artifact: Optional[Path] = None,
    use_skips: bool = True,
) -> ServerThread:
    """A ready-to-start shard worker on a background thread (tests, CLI)."""
    ranking = ranking or DEFAULT_RANKING_FUNCTION
    # One handle shared by the plain-query engine and the shard runtime:
    # a shipped catalog swap reaches both atomically.
    handle = CatalogHandle.ensure(catalog)
    engine = ContextSearchEngine(
        shard.index, ranking, catalog=handle, use_skips=use_skips
    )
    return ServerThread(
        engine,
        config,
        service_class=worker_service_factory(
            shard, ranking, catalog=handle, artifact=artifact,
            use_skips=use_skips,
        ),
    )
