"""The distributed serving tier: query router + replicated shard workers.

Promotes each index shard to its own worker process behind the existing
JSON-lines server, with a router that scatter-gathers client queries
across the shards' replica groups and merges through the same
:class:`~repro.core.sharded_engine.ShardMergePlan` as the in-process
engine — rankings over the wire are bit-identical to single-process.

- :mod:`.placement` — consistent-hash shard → replica-group assignment
- :mod:`.config` — the ``cluster`` JSON config file format
- :mod:`.worker` — :class:`ShardWorkerService` (shard ops + shipping)
- :mod:`.router` — :class:`RouterService` (scatter, failover, merge)
- :mod:`.shipping` — replica bootstrap by segment shipping
"""

from .config import (
    ClusterConfig,
    ClusterConfigError,
    RouterOptions,
    load_cluster_config,
    parse_address,
)
from .placement import HashRing, place_shards
from .router import (
    GroupUnavailable,
    Replica,
    ReplicaGroup,
    RouterMetrics,
    RouterService,
    WorkerError,
    WorkerProtocolError,
    WorkerTimeout,
    WorkerUnavailable,
    router_service_factory,
    router_thread,
)
from .shipping import (
    ArtifactShipper,
    decode_catalog_frame,
    encode_catalog_frame,
    fetch_artifact,
    ship_chunk_bytes,
)
from .worker import ShardWorkerService, worker_service_factory, worker_thread

__all__ = [
    "ArtifactShipper",
    "ClusterConfig",
    "ClusterConfigError",
    "GroupUnavailable",
    "HashRing",
    "Replica",
    "ReplicaGroup",
    "RouterMetrics",
    "RouterOptions",
    "RouterService",
    "ShardWorkerService",
    "WorkerError",
    "WorkerProtocolError",
    "WorkerTimeout",
    "WorkerUnavailable",
    "decode_catalog_frame",
    "encode_catalog_frame",
    "fetch_artifact",
    "load_cluster_config",
    "parse_address",
    "place_shards",
    "router_service_factory",
    "router_thread",
    "ship_chunk_bytes",
    "worker_service_factory",
    "worker_thread",
]
