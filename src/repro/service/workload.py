"""The live workload recorder: served queries → a rolling transaction DB.

The paper's Section 7 baseline selects views from an *observed* workload
of context specifications; the serving layer is where that workload is
actually observable.  :class:`WorkloadRecorder` folds every served query
(cache hits included — a hit is still demand signal) into a bounded,
exponentially decayed map ``context → weight`` that converts on demand
into the ``List[WorkloadEntry]`` shape
:func:`~repro.selection.workload_driven.workload_driven_selection`
consumes.

Design constraints, in order:

* **cheap on the query path** — one lock, one dict update; parsing is
  the caller's job (the service already has the analysed predicates);
* **bounded** — at most ``capacity`` distinct contexts; when full, the
  lowest-weight context is evicted (it is by construction the least
  valuable candidate for a view);
* **decayed** — :meth:`decay` multiplies every weight, so old phases of
  a drifting workload fade instead of pinning the budget forever.
  Entries that decay below ``floor`` are dropped.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..errors import SelectionError
from ..selection.workload_driven import WorkloadEntry

__all__ = [
    "WorkloadRecorder",
    "load_workload_state",
    "save_workload_state",
]

DEFAULT_CAPACITY = 4096
DEFAULT_FLOOR = 0.05


class WorkloadRecorder:
    """Thread-safe bounded, decayed record of served context queries."""

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, floor: float = DEFAULT_FLOOR
    ):
        if capacity < 1:
            raise SelectionError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self.capacity = capacity
        self.floor = floor
        self._weights: Dict[FrozenSet[str], float] = {}
        self._context_sizes: Dict[FrozenSet[str], int] = {}
        self.total_recorded = 0
        # Queries recorded since the last mark() — the controller's
        # "enough new traffic to bother reselecting" trigger input.
        self.recorded_since_mark = 0

    # -- recording ------------------------------------------------------

    def record(
        self, predicates: Iterable[str], context_size: int = 0
    ) -> None:
        """Fold one served query's context in (empty contexts are noise
        for selection and are skipped)."""
        key = frozenset(predicates)
        if not key:
            return
        with self._lock:
            self.total_recorded += 1
            self.recorded_since_mark += 1
            self._weights[key] = self._weights.get(key, 0.0) + 1.0
            if context_size > 0:
                self._context_sizes[key] = max(
                    context_size, self._context_sizes.get(key, 0)
                )
            if len(self._weights) > self.capacity:
                self._evict_lowest()

    def decay(self, factor: float) -> None:
        """Multiply every weight by ``factor`` (0 < factor ≤ 1), dropping
        contexts that fall below the floor."""
        if not (0.0 < factor <= 1.0):
            raise SelectionError(f"decay factor must be in (0, 1], got {factor}")
        with self._lock:
            dead = []
            for key in self._weights:
                self._weights[key] *= factor
                if self._weights[key] < self.floor:
                    dead.append(key)
            for key in dead:
                del self._weights[key]
                self._context_sizes.pop(key, None)

    def mark(self) -> None:
        """Reset the since-mark counter (called after each reselection)."""
        with self._lock:
            self.recorded_since_mark = 0

    def clear(self) -> None:
        with self._lock:
            self._weights.clear()
            self._context_sizes.clear()
            self.recorded_since_mark = 0

    # -- reporting ------------------------------------------------------

    @property
    def distinct_contexts(self) -> int:
        with self._lock:
            return len(self._weights)

    def to_workload(self) -> List[WorkloadEntry]:
        """The current record as selector input, deterministically ordered.

        Decayed float weights round to integer frequencies with a floor
        of 1 — an observed context never drops to frequency 0 while it
        is still in the record.
        """
        with self._lock:
            return [
                WorkloadEntry(
                    predicates=key,
                    frequency=max(1, int(round(weight))),
                    context_size=self._context_sizes.get(key, 0),
                )
                for key, weight in sorted(
                    self._weights.items(), key=lambda kv: sorted(kv[0])
                )
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "distinct_contexts": len(self._weights),
                "total_recorded": self.total_recorded,
                "recorded_since_mark": self.recorded_since_mark,
                "capacity": self.capacity,
            }

    # -- persistence ----------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-safe snapshot of the whole record (restart survival).

        Context keys serialise as sorted predicate lists; weights keep
        their decayed float values so a restart resumes exactly where
        the process left off, not at rounded integer frequencies.
        """
        with self._lock:
            return {
                "kind": "workload-recorder",
                "version": 1,
                "capacity": self.capacity,
                "floor": self.floor,
                "total_recorded": self.total_recorded,
                "contexts": [
                    {
                        "predicates": sorted(key),
                        "weight": weight,
                        "context_size": self._context_sizes.get(key, 0),
                    }
                    for key, weight in sorted(
                        self._weights.items(), key=lambda kv: sorted(kv[0])
                    )
                ],
            }

    @classmethod
    def from_payload(cls, payload: dict) -> "WorkloadRecorder":
        """Rebuild a recorder from :meth:`to_payload` output; a payload
        that is not one raises a readable :class:`SelectionError`."""
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "workload-recorder"
        ):
            raise SelectionError(
                "workload state must be a JSON object with "
                "kind='workload-recorder'"
            )
        try:
            recorder = cls(
                capacity=int(payload.get("capacity", DEFAULT_CAPACITY)),
                floor=float(payload.get("floor", DEFAULT_FLOOR)),
            )
            for entry in payload.get("contexts", []):
                key = frozenset(str(p) for p in entry["predicates"])
                if not key:
                    continue
                recorder._weights[key] = float(entry["weight"])
                context_size = int(entry.get("context_size", 0))
                if context_size > 0:
                    recorder._context_sizes[key] = context_size
            recorder.total_recorded = int(payload.get("total_recorded", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise SelectionError(
                f"malformed workload state: {exc!r}"
            ) from None
        return recorder

    def restore(self, payload: dict) -> None:
        """Load :meth:`to_payload` state into *this* recorder in place
        (the serving CLI restores into the recorder already wired to the
        service and adaptive controller)."""
        loaded = WorkloadRecorder.from_payload(payload)
        with self._lock:
            self._weights = loaded._weights
            self._context_sizes = loaded._context_sizes
            self.total_recorded = loaded.total_recorded
            self.recorded_since_mark = 0
            while len(self._weights) > self.capacity:
                self._evict_lowest()

    # -- internals ------------------------------------------------------

    def _evict_lowest(self) -> None:
        """Drop the lowest-weight context (ties break deterministically
        on the sorted predicate tuple). Caller holds the lock."""
        victim = min(
            self._weights.items(), key=lambda kv: (kv[1], sorted(kv[0]))
        )[0]
        del self._weights[victim]
        self._context_sizes.pop(victim, None)

    def __len__(self) -> int:
        return self.distinct_contexts


def save_workload_state(recorder: WorkloadRecorder, path) -> None:
    """Write the recorder snapshot atomically (tmp + ``os.replace``), so
    a crash mid-write leaves the previous state intact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        json.dumps(recorder.to_payload(), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    os.replace(tmp, path)


def load_workload_state(path) -> dict:
    """Read a saved snapshot; failures are one readable error naming the
    file (operator input, not an internal invariant)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SelectionError(
            f"cannot read workload state {path}: {exc}"
        ) from None
    try:
        return json.loads(text)
    except ValueError as exc:
        raise SelectionError(
            f"workload state {path} is not valid JSON: {exc}"
        ) from None
