"""The live workload recorder: served queries → a rolling transaction DB.

The paper's Section 7 baseline selects views from an *observed* workload
of context specifications; the serving layer is where that workload is
actually observable.  :class:`WorkloadRecorder` folds every served query
(cache hits included — a hit is still demand signal) into a bounded,
exponentially decayed map ``context → weight`` that converts on demand
into the ``List[WorkloadEntry]`` shape
:func:`~repro.selection.workload_driven.workload_driven_selection`
consumes.

Design constraints, in order:

* **cheap on the query path** — one lock, one dict update; parsing is
  the caller's job (the service already has the analysed predicates);
* **bounded** — at most ``capacity`` distinct contexts; when full, the
  lowest-weight context is evicted (it is by construction the least
  valuable candidate for a view);
* **decayed** — :meth:`decay` multiplies every weight, so old phases of
  a drifting workload fade instead of pinning the budget forever.
  Entries that decay below ``floor`` are dropped.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..errors import SelectionError
from ..selection.workload_driven import WorkloadEntry

__all__ = ["WorkloadRecorder"]

DEFAULT_CAPACITY = 4096
DEFAULT_FLOOR = 0.05


class WorkloadRecorder:
    """Thread-safe bounded, decayed record of served context queries."""

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, floor: float = DEFAULT_FLOOR
    ):
        if capacity < 1:
            raise SelectionError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self.capacity = capacity
        self.floor = floor
        self._weights: Dict[FrozenSet[str], float] = {}
        self._context_sizes: Dict[FrozenSet[str], int] = {}
        self.total_recorded = 0
        # Queries recorded since the last mark() — the controller's
        # "enough new traffic to bother reselecting" trigger input.
        self.recorded_since_mark = 0

    # -- recording ------------------------------------------------------

    def record(
        self, predicates: Iterable[str], context_size: int = 0
    ) -> None:
        """Fold one served query's context in (empty contexts are noise
        for selection and are skipped)."""
        key = frozenset(predicates)
        if not key:
            return
        with self._lock:
            self.total_recorded += 1
            self.recorded_since_mark += 1
            self._weights[key] = self._weights.get(key, 0.0) + 1.0
            if context_size > 0:
                self._context_sizes[key] = max(
                    context_size, self._context_sizes.get(key, 0)
                )
            if len(self._weights) > self.capacity:
                self._evict_lowest()

    def decay(self, factor: float) -> None:
        """Multiply every weight by ``factor`` (0 < factor ≤ 1), dropping
        contexts that fall below the floor."""
        if not (0.0 < factor <= 1.0):
            raise SelectionError(f"decay factor must be in (0, 1], got {factor}")
        with self._lock:
            dead = []
            for key in self._weights:
                self._weights[key] *= factor
                if self._weights[key] < self.floor:
                    dead.append(key)
            for key in dead:
                del self._weights[key]
                self._context_sizes.pop(key, None)

    def mark(self) -> None:
        """Reset the since-mark counter (called after each reselection)."""
        with self._lock:
            self.recorded_since_mark = 0

    def clear(self) -> None:
        with self._lock:
            self._weights.clear()
            self._context_sizes.clear()
            self.recorded_since_mark = 0

    # -- reporting ------------------------------------------------------

    @property
    def distinct_contexts(self) -> int:
        with self._lock:
            return len(self._weights)

    def to_workload(self) -> List[WorkloadEntry]:
        """The current record as selector input, deterministically ordered.

        Decayed float weights round to integer frequencies with a floor
        of 1 — an observed context never drops to frequency 0 while it
        is still in the record.
        """
        with self._lock:
            return [
                WorkloadEntry(
                    predicates=key,
                    frequency=max(1, int(round(weight))),
                    context_size=self._context_sizes.get(key, 0),
                )
                for key, weight in sorted(
                    self._weights.items(), key=lambda kv: sorted(kv[0])
                )
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "distinct_contexts": len(self._weights),
                "total_recorded": self.total_recorded,
                "recorded_since_mark": self.recorded_since_mark,
                "capacity": self.capacity,
            }

    # -- internals ------------------------------------------------------

    def _evict_lowest(self) -> None:
        """Drop the lowest-weight context (ties break deterministically
        on the sorted predicate tuple). Caller holds the lock."""
        victim = min(
            self._weights.items(), key=lambda kv: (kv[1], sorted(kv[0]))
        )[0]
        del self._weights[victim]
        self._context_sizes.pop(victim, None)

    def __len__(self) -> int:
        return self.distinct_contexts
