"""Serving cache: an LRU of full query results, epoch-guarded.

One layer above :class:`~repro.core.stats_cache.StatisticsCache`: where
that cache memoises per-context *statistics* (so a different keyword
query over the same context still saves the context work), this one
memoises the *entire response body* — ranked hits plus report — so an
identical repeated query costs a dict lookup and no engine work at all.

Correctness rests on two guards:

* the **key** is the canonical query form (keyword sequence order
  preserved — float summation order follows keyword order — plus the
  sorted de-duplicated predicate set, mode, and ``top_k``; the forced
  physical path is deliberately *excluded* because path forcing never
  changes rankings);
* every entry is stamped with the backend's
  :class:`~repro.core.backend.VersionVector` — the one coherence token
  the whole stack shares.  Any component moving (a WAL append, flush,
  delete, or compaction advancing the data epoch; a catalog hot-swap
  bumping the catalog generation; a cluster placement change bumping
  the placement generation) makes a lookup drop the entry instead of
  serving it, so a stale result can never be returned after any
  mutation — even if nobody called :meth:`invalidate` explicitly.  The
  cache treats the token as opaque (it only ever compares with ``!=``),
  which is also why plain ints kept working through the refactor.
  ``invalidate()`` exists anyway for the
  :func:`repro.views.maintenance.maintain_catalog` ``caches=`` hook,
  matching the statistics cache's protocol.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.query import parse_query
from ..core.stats_cache import canonical_context_key

__all__ = ["ResultCache", "ResultCacheMetrics"]

CacheKey = Tuple


@dataclass
class ResultCacheMetrics:
    """Hit accounting for the serving cache."""

    hits: int = 0
    misses: int = 0
    stale_drops: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """Thread-safe LRU of response payloads keyed by canonical query."""

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[int, dict]]" = OrderedDict()
        self.metrics = ResultCacheMetrics()

    @staticmethod
    def key(query: str, mode: str, top_k: Optional[int]) -> CacheKey:
        """Canonicalise a query into its cache key.

        Raises :class:`~repro.errors.QueryError` on unparseable text —
        callers skip caching for such requests (the engine will produce
        the error response).
        """
        parsed = parse_query(query)
        return (
            tuple(parsed.keywords),
            canonical_context_key(parsed.predicates),
            mode,
            top_k,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey, epoch) -> Optional[dict]:
        """The cached payload, or ``None`` on miss/stale.  ``epoch`` is
        the opaque coherence token (a version vector or plain int)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.metrics.misses += 1
                return None
            entry_epoch, payload = entry
            if entry_epoch != epoch:
                # The collection changed since this was computed; the
                # entry is unreachable forever, so reclaim it now.
                del self._entries[key]
                self.metrics.stale_drops += 1
                self.metrics.misses += 1
                return None
            self._entries.move_to_end(key)
            self.metrics.hits += 1
            return payload

    def put(self, key: CacheKey, epoch, payload: dict) -> None:
        """Insert/update one entry (LRU-evicting past ``max_entries``)."""
        with self._lock:
            self._entries[key] = (epoch, payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.metrics.evictions += 1

    def invalidate(self) -> None:
        """Drop everything (the ``maintain_catalog`` ``caches=`` hook)."""
        with self._lock:
            self.metrics.invalidations += 1
            self._entries.clear()

    def stats(self) -> dict:
        """JSON-friendly counters for the ``metrics`` op."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.metrics.hits,
                "misses": self.metrics.misses,
                "stale_drops": self.metrics.stale_drops,
                "evictions": self.metrics.evictions,
                "invalidations": self.metrics.invalidations,
                "hit_rate": self.metrics.hit_rate,
            }
