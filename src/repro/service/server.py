"""The asyncio query server: admit → coalesce → plan → execute → cache.

:class:`QueryService` is the transport-free request handler (the tests
drive it directly); :class:`QueryServer` binds it to an asyncio TCP
server speaking the JSON-lines protocol; :class:`ServerThread` runs a
whole server on a background thread with its own event loop — the
in-process form the CLI's ``bench-serve``, the load generator, and the
test-suite use.

Request lifecycle (one ``op: query`` line)::

    decode ─▶ admission ──shed──▶ respond {"status": "shed"}
                  │
                  ├─▶ serving-cache lookup (canonical key + epoch) ──hit──▶ respond
                  │
                  ├─▶ degrade? (queue ≥ degrade_depth ⇒ force cheap path)
                  │
                  └─▶ coalescer.submit ─▶ [micro-batch window] ─▶ worker pool
                            │                    BatchExecutor / search_many
                            │  deadline fires ⇒ respond {"status": "timeout"}
                            │  (the ticket is cancelled; execution is
                            │   skipped if it has not started)
                            ▼
                      cache.put + respond {"status": "ok", hits, report}

Evaluation itself is the engines' existing synchronous machinery —
:class:`~repro.core.engine.BatchExecutor` for a flat engine (shared
context materialisations, prefetch, thread fan-out) or
:meth:`~repro.core.sharded_engine.ShardedEngine.search_many` for a
sharded one (two scatter-gather dispatches per batch) — driven off the
event loop on a worker pool.  The event loop only ever parses, admits,
coalesces, and serialises.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .. import __version__
from ..core.backend import VersionVector
from ..core.engine import BatchExecutor, BatchOutcome
from ..errors import QueryError, ReproError
from .admission import AdmissionController, Ticket
from .coalescer import Coalescer
from .metrics import ServiceMetrics
from .protocol import (
    CLUSTER_OPS,
    MAX_LINE_BYTES,
    OP_HEALTHZ,
    OP_METRICS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    STATUS_TIMEOUT,
    VALID_PATHS,
    ProtocolError,
    Request,
    decode_request,
    encode_response,
)
from .result_cache import ResultCache

__all__ = ["QueryServer", "QueryService", "ServerThread", "ServiceConfig"]

PATH_AUTO = "auto"


@dataclass
class ServiceConfig:
    """Tunables for one serving deployment (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is reported at start
    workers: int = 0  # 0 = min(8, cpu count)
    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_pending: int = 256
    degrade_depth: Optional[int] = None  # None = max_pending // 2
    degrade_path: str = "straightforward"
    default_timeout_ms: Optional[float] = None
    default_top_k: int = 10
    cache_entries: int = 1024
    cache_enabled: bool = True
    coalesce: bool = True  # False = batches of one (bench baseline arm)
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.degrade_path not in VALID_PATHS or self.degrade_path == PATH_AUTO:
            raise QueryError(
                f"degrade_path must be a forceable path, got {self.degrade_path!r}"
            )

    def effective_workers(self) -> int:
        return self.workers or min(8, os.cpu_count() or 1)


class QueryService:
    """Transport-free request handling: the whole lifecycle minus sockets."""

    # Per-service frame limit; shard workers raise it for router batches.
    line_limit = MAX_LINE_BYTES

    def __init__(self, engine, config: Optional[ServiceConfig] = None):
        self.engine = engine
        self.config = config if config is not None else ServiceConfig()
        # Duck-typed engine split: anything with search_many runs its own
        # batch fan-out (the sharded engine); everything else goes
        # through BatchExecutor (plain or wrapped flat engines).
        self._sharded = hasattr(engine, "search_many")
        self.metrics = ServiceMetrics()
        # Adaptive selection attachments (optional; wired by the CLI's
        # ``serve --adaptive`` or by tests): served queries fold into the
        # recorder, and the controller owns the background reselection
        # thread.  ``adaptive.info()`` is surfaced by healthz.
        self.recorder = None
        self.adaptive = None
        self._predicate_analyzer = self._find_predicate_analyzer(engine)
        self.admission = AdmissionController(
            max_pending=self.config.max_pending,
            degrade_depth=self.config.degrade_depth,
        )
        self.result_cache = ResultCache(max_entries=self.config.cache_entries)
        self.pool = ThreadPoolExecutor(
            max_workers=self.config.effective_workers(),
            thread_name_prefix="repro-serve",
        )
        self.coalescer = Coalescer(
            self._execute_batch,
            max_batch=self.config.max_batch if self.config.coalesce else 1,
            max_wait_ms=self.config.max_wait_ms if self.config.coalesce else 0.0,
            pool=self.pool,
            observe_batch=self.metrics.observe_batch,
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def epoch(self) -> int:
        return getattr(self.engine, "epoch", 0)

    @property
    def catalog_generation(self) -> int:
        """How many catalog hot-swaps the engine has seen."""
        return getattr(self.engine, "catalog_generation", 0)

    @property
    def version(self) -> VersionVector:
        """The backend's :class:`~repro.core.backend.VersionVector` —
        constructed from the epoch/generation pair for engine wrappers
        that predate the unified contract."""
        version = getattr(self.engine, "version", None)
        if isinstance(version, VersionVector):
            return version
        return VersionVector(
            epoch=self.epoch, catalog_generation=self.catalog_generation
        )

    def _cache_epoch(self) -> VersionVector:
        """The result cache's staleness guard: the full version vector.
        A flat-engine catalog swap does not touch the index epoch, but
        it changes plans and view accounting in the cached report bodies
        — one coherence token means a swap (or, in the cluster, a
        placement change) invalidates exactly like a data mutation."""
        return self.version

    def invalidate(self) -> None:
        """Drop the serving cache (``maintain_catalog`` ``caches=`` hook)."""
        self.result_cache.invalidate()

    @staticmethod
    def _find_predicate_analyzer(engine):
        index = getattr(engine, "index", None)
        if index is not None:
            analyzer = getattr(index, "predicate_analyzer", None)
            if analyzer is not None:
                return analyzer
        return getattr(engine, "_predicate_analyzer", None)

    def _record_workload(self, query_text, context_size) -> None:
        """Fold one served query into the workload recorder (cheap; any
        parse/analysis failure just skips the sample)."""
        if self.recorder is None or not query_text:
            return
        from ..core.query import parse_query

        try:
            parsed = parse_query(query_text)
        except ReproError:
            return
        predicates = list(parsed.predicates)
        if self._predicate_analyzer is not None:
            analyzed = []
            for predicate in predicates:
                term = self._predicate_analyzer.analyze_query_term(predicate)
                if term is None:
                    return
                analyzed.append(term)
            predicates = analyzed
        self.recorder.record(predicates, context_size or 0)

    async def drain(self) -> None:
        """Flush pending work before shutdown (transport calls this)."""
        await self.coalescer.drain()

    def close(self) -> None:
        self.pool.shutdown(wait=True)

    # -- request handling ----------------------------------------------

    async def handle_line(self, line: bytes) -> bytes:
        """Decode one request line, handle it, encode the response."""
        try:
            request = decode_request(line, limit=self.line_limit)
        except ProtocolError as exc:
            return encode_response(
                {"status": STATUS_ERROR, "error": str(exc)}
            )
        payload = await self.handle_request(request)
        return encode_response(payload)

    async def handle_request(self, request: Request) -> dict:
        if request.op == OP_HEALTHZ:
            return self._with_id(request, self._healthz())
        if request.op == OP_METRICS:
            return self._with_id(request, self._metrics())
        if request.op in CLUSTER_OPS:
            return self._respond_cluster_op(request)
        return await self._handle_query(request)

    @staticmethod
    def _with_id(request: Request, payload: dict) -> dict:
        """Echo the request id so pipelining clients (the router's
        health prober among them) can match the response."""
        if request.id is not None:
            payload["id"] = request.id
        return payload

    def _respond_cluster_op(self, request: Request) -> dict:
        """Cluster-internal ops on a plain server: readable refusal (the
        shard worker subclass overrides the whole dispatch)."""
        payload = {
            "status": STATUS_ERROR,
            "error": (
                f"op {request.op!r} is cluster-internal and this server is "
                "not a shard worker (start one with 'repro worker')"
            ),
        }
        if request.id is not None:
            payload["id"] = request.id
        return payload

    def _healthz(self) -> dict:
        index = getattr(self.engine, "index", None) or getattr(
            self.engine, "sharded_index", None
        )
        payload = {
            "status": STATUS_OK,
            "version": __version__,
            "engine": "sharded" if self._sharded else "flat",
            "num_docs": getattr(index, "num_docs", None),
            "epoch": self.epoch,
            "catalog_generation": self.catalog_generation,
            "version_vector": self.version.to_dict(),
            "uptime_seconds": time.monotonic() - self.metrics.started,
        }
        # Lifecycle engines report their segment/WAL/version state so an
        # operator can see compaction debt and recovery position from
        # the health endpoint alone.
        lifecycle_info = getattr(self.engine, "lifecycle_info", None)
        if callable(lifecycle_info):
            payload["engine"] = "lifecycle"
            payload["lifecycle"] = lifecycle_info()
        if self.adaptive is not None:
            payload["adaptive"] = self.adaptive.info()
        return payload

    def _metrics(self) -> dict:
        return self.metrics.snapshot(
            extra={
                "status": STATUS_OK,
                "queue_depth": self.admission.depth,
                "max_pending": self.admission.max_pending,
                "degrade_depth": self.admission.degrade_depth,
                "admitted": self.admission.admitted,
                "cache": self.result_cache.stats(),
                "epoch": self.epoch,
                "catalog_generation": self.catalog_generation,
                "version_vector": self.version.to_dict(),
            }
        )

    async def _handle_query(self, request: Request) -> dict:
        started = time.monotonic()
        self.metrics.observe_request()
        if not self.admission.try_admit():
            self.metrics.observe_shed()
            return self._respond(
                request,
                STATUS_SHED,
                started,
                error=(
                    f"server overloaded: {self.admission.max_pending} "
                    "requests already pending"
                ),
            )
        try:
            return await self._admitted_query(request, started)
        finally:
            self.admission.release()

    async def _admitted_query(self, request: Request, started: float) -> dict:
        top_k = (
            request.top_k
            if request.top_k is not None
            else self.config.default_top_k
        )
        mode, path = request.mode, request.path

        # Serving-cache lookup: canonical query + engine epoch.  The key
        # excludes the physical path (forcing never changes rankings).
        cache_key = None
        epoch = self._cache_epoch()
        if self.config.cache_enabled:
            try:
                cache_key = ResultCache.key(request.query, mode, top_k)
            except ReproError:
                cache_key = None  # unparseable; the engine reports the error
            if cache_key is not None:
                payload = self.result_cache.get(cache_key, epoch)
                if payload is not None:
                    # A cache hit is still workload signal (and still a
                    # served resolution path).
                    report = payload.get("report") or {}
                    self._record_workload(
                        request.query, report.get("context_size")
                    )
                    self.metrics.observe_path(
                        (report.get("resolution") or {}).get("path")
                    )
                    self.metrics.observe_ok(
                        time.monotonic() - started, cached=True
                    )
                    return self._respond(
                        request, STATUS_OK, started, body=payload, cached=True
                    )

        # Graceful degradation: deep queue ⇒ force the cheap planner path
        # (skips candidate pricing; answer-preserving by construction).
        degraded = False
        if (
            mode != "conventional"
            and path == PATH_AUTO
            and self.admission.degraded
        ):
            path = self.config.degrade_path
            degraded = True

        timeout_ms = (
            request.timeout_ms
            if request.timeout_ms is not None
            else self.config.default_timeout_ms
        )
        deadline = (
            started + timeout_ms / 1000.0 if timeout_ms is not None else None
        )
        ticket = Ticket(request, deadline=deadline, degraded=degraded)

        submit = self.coalescer.submit((mode, top_k, path), ticket)
        try:
            if deadline is not None:
                remaining = max(deadline - time.monotonic(), 0.0)
                outcome = await asyncio.wait_for(submit, remaining)
            else:
                outcome = await submit
        except asyncio.TimeoutError:
            ticket.cancel()  # skip execution if the batch has not started
            self.metrics.observe_timeout(time.monotonic() - started)
            return self._respond(
                request,
                STATUS_TIMEOUT,
                started,
                error=f"deadline of {timeout_ms:g}ms exceeded",
            )

        if outcome is None:  # deadline expired while queued; never executed
            self.metrics.observe_timeout(time.monotonic() - started)
            return self._respond(
                request,
                STATUS_TIMEOUT,
                started,
                error=f"deadline of {timeout_ms:g}ms expired before execution",
            )
        if not outcome.ok:
            self.metrics.observe_error(time.monotonic() - started)
            return self._respond(
                request, STATUS_ERROR, started, error=outcome.error
            )

        results = outcome.results
        body = {
            "mode": mode,
            "hits": [
                {
                    "doc": hit.external_id,
                    "doc_id": hit.doc_id,
                    "score": hit.score,
                }
                for hit in results.hits
            ],
            "report": results.report.to_dict(),
        }
        if cache_key is not None:
            self.result_cache.put(cache_key, epoch, body)
        self._record_workload(request.query, results.report.context_size)
        self.metrics.observe_path(results.report.resolution.path)
        self.metrics.observe_topk(results.report.topk)
        self.metrics.observe_ok(
            time.monotonic() - started, degraded=degraded
        )
        return self._respond(
            request, STATUS_OK, started, body=body, degraded=degraded
        )

    def _respond(
        self,
        request: Request,
        status: str,
        started: float,
        body: Optional[dict] = None,
        error: Optional[str] = None,
        cached: bool = False,
        degraded: bool = False,
    ) -> dict:
        payload = {
            "status": status,
            "elapsed_ms": (time.monotonic() - started) * 1000.0,
        }
        if request.id is not None:
            payload["id"] = request.id
        if body is not None:
            payload.update(body)
        if error is not None:
            payload["error"] = error
        if cached:
            payload["cached"] = True
        if degraded:
            payload["degraded"] = True
        return payload

    # -- batch execution (worker thread) --------------------------------

    def _execute_batch(
        self, key: Tuple[str, Optional[int], str], tickets: Sequence[Ticket]
    ) -> Sequence[Optional[BatchOutcome]]:
        """Run one coalesced batch through the engine (blocking).

        Tickets whose deadline expired (or whose waiter gave up) while
        the batch sat in the window are *skipped before execution* —
        their slot resolves to ``None`` and no engine work is spent.
        """
        mode, top_k, path = key
        live = [i for i, t in enumerate(tickets) if not t.skip]
        out: list = [None] * len(tickets)
        if not live:
            return out
        queries = [tickets[i].request.query for i in live]
        if self._sharded:
            report = self.engine.search_many(
                queries, top_k=top_k, mode=mode, path=path
            )
        else:
            report = BatchExecutor(
                self.engine, max_workers=self.config.effective_workers()
            ).run(queries, top_k=top_k, mode=mode, path=path)
        for slot, outcome in zip(live, report.outcomes):
            out[slot] = outcome
        return out


class QueryServer:
    """JSON-lines TCP transport around a :class:`QueryService`.

    ``service_class`` is any callable ``(engine, config) -> service``
    duck-typed like :class:`QueryService` (``handle_line``, ``drain``,
    ``close``, ``line_limit``; optional async ``on_start``/``on_stop``
    hooks) — the cluster's shard worker and router reuse this transport
    unchanged through it.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServiceConfig] = None,
        service_class=QueryService,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.service = service_class(engine, self.config)
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=getattr(self.service, "line_limit", MAX_LINE_BYTES),
        )
        on_start = getattr(self.service, "on_start", None)
        if on_start is not None:
            await on_start()
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, release.

        In-flight requests get up to ``drain_timeout`` seconds to finish
        (their batches keep running on the worker pool); stragglers are
        cancelled, their connections closed, and the pool shut down.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        on_stop = getattr(self.service, "on_stop", None)
        if on_stop is not None:
            await on_stop()
        await self.service.drain()
        self.service.close()

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        # One task per request line, so a pipelining connection coalesces
        # with itself; responses interleave by completion (match on id).
        request_tasks: set = set()
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                    asyncio.IncompleteReadError,
                ):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                rtask = asyncio.ensure_future(
                    self._respond(line, writer, write_lock)
                )
                request_tasks.add(rtask)
                rtask.add_done_callback(request_tasks.discard)
        except asyncio.CancelledError:
            pass  # shutdown cancelled an idle persistent connection
        finally:
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._conn_tasks.discard(task)

    async def _respond(self, line: bytes, writer, write_lock) -> None:
        response = await self.service.handle_line(line)
        async with write_lock:
            try:
                writer.write(response)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass  # client went away; the result is simply dropped


class ServerThread:
    """A query server on a daemon thread with a private event loop.

    The in-process deployment shape: tests, the load generator, and
    ``bench-serve`` start one, talk to it over real sockets, and stop it
    for a clean shutdown.  ``start()`` blocks until the port is bound
    (or raises what the server raised); ``stop()`` performs the graceful
    drain and joins the thread.
    """

    def __init__(
        self,
        engine,
        config: Optional[ServiceConfig] = None,
        service_class=QueryService,
    ):
        self.engine = engine
        self.config = config if config is not None else ServiceConfig()
        self.service_class = service_class
        self.server: Optional[QueryServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )

    @property
    def service(self) -> QueryService:
        if self.server is None:
            raise RuntimeError("server is not started")
        return self.server.service

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            self._thread.join()
            raise self._error
        assert self.address is not None
        return self.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if not self._ready.is_set():
                self._error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.server = QueryServer(
            self.engine, self.config, service_class=self.service_class
        )
        try:
            self.address = await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
