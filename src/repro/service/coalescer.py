"""Dynamic micro-batching: coalesce in-flight requests into one batch.

The paper's economics make batching pay twice: context statistics are
expensive to compute and cheap to reuse (Theorems 4.1/4.2), and the
:class:`~repro.core.engine.BatchExecutor` already materialises each
distinct context exactly once per batch.  The coalescer turns
*concurrent serving traffic* into such batches: requests that arrive
within a short window and share an execution signature (mode, ``top_k``,
forced path) are collected and dispatched as one batch, so concurrent
queries over the same context share one materialisation instead of
repeating it per request.

Flush policy is the classic dynamic-batching pair:

* **size** — the bucket reaches ``max_batch`` and flushes immediately
  (a full batch never waits for the timer);
* **timer** — ``max_wait_ms`` after the bucket's *first* request, the
  bucket flushes whatever it holds, bounding the latency cost of
  coalescing at ``max_wait_ms`` regardless of traffic.

Execution happens off the event loop: the batch callable runs on the
worker pool via ``run_in_executor``, and per-request results are posted
back to each submitter's future.  The callable receives the submitted
items in arrival order and must return one result per item, in order.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Coalescer"]


class _Bucket:
    __slots__ = ("entries", "timer")

    def __init__(self) -> None:
        self.entries: List[Tuple[Any, asyncio.Future]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class Coalescer:
    """Collects submissions per batch key; flushes on size or timer.

    ``execute`` is a *blocking* callable ``(key, items) -> results``
    (one result per item, in order) run on ``pool``; ``observe_batch``
    (optional) receives ``(size, reason)`` per flush for metrics.
    """

    def __init__(
        self,
        execute: Callable[[Any, Sequence[Any]], Sequence[Any]],
        max_batch: int = 16,
        max_wait_ms: float = 2.0,
        pool=None,
        observe_batch: Optional[Callable[[int, str], None]] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self._execute = execute
        self.max_batch = max_batch
        self.max_wait = max_wait_ms / 1000.0
        self._pool = pool
        self._observe_batch = observe_batch
        self._buckets: Dict[Any, _Bucket] = {}
        self._tasks: set = set()

    @property
    def pending(self) -> int:
        """Requests currently waiting in unflushed buckets."""
        return sum(len(b.entries) for b in self._buckets.values())

    async def submit(self, key: Any, item: Any) -> Any:
        """Enqueue ``item`` under ``key``; resolves with its result.

        Cancelling the awaiting task (deadline enforcement) is safe at
        any point: the batch keeps running, and the dispatcher simply
        discards results whose future is already done.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket()
            if self.max_batch > 1 and self.max_wait > 0:
                bucket.timer = loop.call_later(
                    self.max_wait, self._flush, loop, key, "timer"
                )
        bucket.entries.append((item, future))
        if len(bucket.entries) >= self.max_batch:
            self._flush(loop, key, "size")
        elif bucket.timer is None:
            # max_batch == 1 or zero wait: nothing to coalesce with.
            self._flush(loop, key, "size" if self.max_batch == 1 else "timer")
        return await future

    async def drain(self) -> None:
        """Flush every bucket and wait for all in-flight batches."""
        loop = asyncio.get_running_loop()
        for key in list(self._buckets):
            self._flush(loop, key, "timer")
        while self._tasks:
            tasks = list(self._tasks)
            await asyncio.gather(*tasks, return_exceptions=True)
            self._tasks.difference_update(tasks)

    # -- internals ------------------------------------------------------

    def _flush(self, loop: asyncio.AbstractEventLoop, key: Any, reason: str) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        if self._observe_batch is not None:
            self._observe_batch(len(bucket.entries), reason)
        task = loop.create_task(self._dispatch(loop, key, bucket.entries))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _dispatch(
        self,
        loop: asyncio.AbstractEventLoop,
        key: Any,
        entries: List[Tuple[Any, asyncio.Future]],
    ) -> None:
        items = [item for item, _ in entries]
        try:
            results = await loop.run_in_executor(
                self._pool, self._execute, key, items
            )
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch executor returned {len(results)} results "
                    f"for {len(items)} items"
                )
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, future in entries:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(entries, results):
            if not future.done():
                future.set_result(result)
