"""Admission control: bounded concurrency, load shedding, deadlines.

The serving queue must be bounded or p99 latency is unbounded: under
overload an unbounded queue grows without limit and every admitted
request waits behind it.  :class:`AdmissionController` caps the number
of requests the server has accepted but not yet answered; past the cap
new requests are *shed* immediately (the HTTP-429 analogue), which keeps
the latency of admitted requests proportional to the cap rather than to
the offered load.

Two softer levers ride on the same depth gauge:

* **degradation** — above ``degrade_depth`` the service forces the
  planner's path for context queries (skipping candidate pricing;
  forcing never changes rankings), trading plan optimality for planning
  work while the queue is deep;
* **deadlines** — each admitted request carries a :class:`Ticket` with
  an absolute deadline; the coalescer's worker consults
  :attr:`Ticket.skip` immediately before execution, so a request whose
  deadline expired while queued is dropped *before* any engine work is
  spent on it.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from .protocol import Request

__all__ = ["AdmissionController", "Ticket"]


class Ticket:
    """One admitted request's deadline/cancellation state.

    ``deadline`` is absolute :func:`time.monotonic` seconds (``None``
    means no deadline).  ``cancel()`` is called by the server when the
    awaiting side gave up (deadline fired in the event loop); the
    executing side never needs to be interrupted mid-query — it just
    skips tickets whose :attr:`skip` is set before starting them.
    """

    __slots__ = ("request", "deadline", "degraded", "_cancelled")

    def __init__(
        self,
        request: Request,
        deadline: Optional[float] = None,
        degraded: bool = False,
    ):
        self.request = request
        self.deadline = deadline
        self.degraded = degraded
        self._cancelled = False

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def skip(self) -> bool:
        """Whether execution should not be started for this ticket."""
        return self._cancelled or self.expired

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when there is none)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()


class AdmissionController:
    """Bounded in-flight request count with shed/degrade thresholds."""

    def __init__(
        self, max_pending: int = 256, degrade_depth: Optional[int] = None
    ):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self.degrade_depth = (
            degrade_depth if degrade_depth is not None
            else max(1, max_pending // 2)
        )
        self._lock = threading.Lock()
        self._pending = 0
        self.admitted = 0
        self.shed = 0

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet answered."""
        return self._pending

    @property
    def degraded(self) -> bool:
        """Whether the queue is deep enough to trigger degradation."""
        return self._pending >= self.degrade_depth

    def try_admit(self) -> bool:
        """Admit one request, or shed it when the queue is full."""
        with self._lock:
            if self._pending >= self.max_pending:
                self.shed += 1
                return False
            self._pending += 1
            self.admitted += 1
            return True

    def release(self) -> None:
        """Mark one admitted request answered."""
        with self._lock:
            if self._pending > 0:
                self._pending -= 1
