"""The query service layer: async serving over the search engines.

A production-shaped front for :class:`~repro.core.engine.ContextSearchEngine`
and :class:`~repro.core.sharded_engine.ShardedEngine`:

* :mod:`~repro.service.protocol` — the JSON-lines wire format and a
  blocking :class:`ServiceClient`;
* :mod:`~repro.service.server` — the asyncio server, the transport-free
  :class:`QueryService`, and the in-process :class:`ServerThread`;
* :mod:`~repro.service.coalescer` — dynamic micro-batching so concurrent
  queries sharing a context share one materialisation;
* :mod:`~repro.service.admission` — bounded queue, load shedding,
  degradation, per-request deadlines;
* :mod:`~repro.service.result_cache` — epoch-guarded LRU of full results;
* :mod:`~repro.service.metrics` — qps/latency/batch-shape counters;
* :mod:`~repro.service.loadgen` — the closed-loop load generator used by
  ``bench-serve`` and ``benchmarks/bench_serving.py``;
* :mod:`~repro.service.workload` — the bounded, decayed recorder turning
  served queries into selector input;
* :mod:`~repro.service.adaptive` — the background controller that
  re-runs view selection and hot-swaps catalogs;
* :mod:`~repro.service.cluster` — the distributed tier: a query router
  scatter-gathering over replicated shard worker processes, with
  bit-identical rankings to the in-process sharded engine.
"""

from .adaptive import AdaptiveConfig, AdaptiveSelectionController
from .admission import AdmissionController, Ticket
from .cluster import (
    ClusterConfig,
    ClusterConfigError,
    RouterService,
    ShardWorkerService,
    fetch_artifact,
    load_cluster_config,
    router_thread,
    worker_thread,
)
from .coalescer import Coalescer
from .loadgen import EndpointStats, LoadReport, run_load
from .metrics import ServiceMetrics, percentile
from .protocol import ProtocolError, Request, ServiceClient, decode_request, encode_response
from .result_cache import ResultCache, ResultCacheMetrics
from .server import QueryServer, QueryService, ServerThread, ServiceConfig
from .workload import WorkloadRecorder, load_workload_state, save_workload_state

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSelectionController",
    "AdmissionController",
    "ClusterConfig",
    "ClusterConfigError",
    "Coalescer",
    "EndpointStats",
    "LoadReport",
    "RouterService",
    "ShardWorkerService",
    "ProtocolError",
    "QueryServer",
    "QueryService",
    "Request",
    "ResultCache",
    "ResultCacheMetrics",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "Ticket",
    "WorkloadRecorder",
    "decode_request",
    "encode_response",
    "fetch_artifact",
    "load_cluster_config",
    "load_workload_state",
    "percentile",
    "router_thread",
    "run_load",
    "save_workload_state",
    "worker_thread",
]
