"""Serving metrics: request counters, latency percentiles, batch shapes.

The service increments these from the event loop and from worker
threads, so every mutation takes the lock; reads (the ``metrics`` op)
take a consistent snapshot under the same lock.  Latencies live in a
bounded ring — the percentiles are over the most recent window, which is
what an operator watching a dashboard wants anyway — so memory is O(1)
no matter how long the server runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = ["ServiceMetrics", "percentile"]

LATENCY_WINDOW = 4096
BATCH_WINDOW = 1024


def percentile(samples: List[float], p: float) -> float:
    """The ``p``-th percentile (0..100) by nearest-rank on a sorted copy."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(p / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters and windows for the ``metrics`` op."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started = time.monotonic()
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.shed = 0
        self.timeouts = 0
        self.degraded = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.batches = 0
        self.size_flushes = 0
        self.timer_flushes = 0
        self.topk_queries = 0
        self.topk_blocks_considered = 0
        self.topk_blocks_skipped = 0
        self.topk_candidates_pruned = 0
        # Resolution-path accounting: which physical path answered each
        # query (the adaptive-selection health signal — a rising
        # straightforward share under drift means the catalog is stale).
        self.path_views = 0
        self.path_straightforward = 0
        self.path_conventional = 0
        self.path_mixed = 0
        # Catalog reselection events (observed by the adaptive controller).
        self.reselections = 0
        self.catalog_generation = 0
        self.last_reselection: Optional[Dict] = None
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self._batch_sizes: deque = deque(maxlen=BATCH_WINDOW)

    # -- recording ------------------------------------------------------

    def observe_request(self) -> None:
        with self._lock:
            self.requests += 1

    def observe_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def observe_timeout(self, latency_seconds: float) -> None:
        with self._lock:
            self.timeouts += 1
            self._latencies.append(latency_seconds)

    def observe_error(self, latency_seconds: float) -> None:
        with self._lock:
            self.errors += 1
            self._latencies.append(latency_seconds)

    def observe_ok(
        self,
        latency_seconds: float,
        cached: bool = False,
        degraded: bool = False,
    ) -> None:
        with self._lock:
            self.ok += 1
            if cached:
                self.cache_hits += 1
            if degraded:
                self.degraded += 1
            self._latencies.append(latency_seconds)

    def observe_topk(self, diagnostics: Optional[Dict]) -> None:
        """Fold one disjunctive query's top-k pruning diagnostics in.

        ``diagnostics`` is the ``topk`` dict an
        :class:`~repro.core.report.ExecutionReport` carries after a
        MaxScore evaluation; conjunctive/context queries pass ``None``
        and are ignored.
        """
        if not diagnostics:
            return
        with self._lock:
            self.topk_queries += 1
            self.topk_blocks_considered += diagnostics.get(
                "blocks_considered", 0
            )
            self.topk_blocks_skipped += diagnostics.get("blocks_skipped", 0)
            self.topk_candidates_pruned += diagnostics.get(
                "candidates_pruned", 0
            )

    def observe_path(self, path: Optional[str]) -> None:
        """Bucket one answered query's resolution path.

        Accepts both flat labels (``views``/``straightforward``/
        ``conventional``) and the sharded merges (``sharded-views``,
        ``sharded-straightforward``, ``sharded-mixed``).
        """
        if not path:
            return
        with self._lock:
            if path == "conventional":
                self.path_conventional += 1
            elif path.endswith("mixed"):
                self.path_mixed += 1
            elif path.endswith("views"):
                self.path_views += 1
            else:
                self.path_straightforward += 1

    def observe_reselection(
        self, generation: int, report: Optional[Dict] = None
    ) -> None:
        """One adaptive-selection catalog swap landed."""
        with self._lock:
            self.reselections += 1
            self.catalog_generation = generation
            if report is not None:
                self.last_reselection = dict(report)

    def observe_batch(self, size: int, reason: str) -> None:
        """One coalescer flush: ``reason`` is ``"size"`` or ``"timer"``."""
        with self._lock:
            self.batches += 1
            if reason == "size":
                self.size_flushes += 1
            else:
                self.timer_flushes += 1
            if size > 1:
                self.coalesced += size
            self._batch_sizes.append(size)

    # -- reporting ------------------------------------------------------

    def snapshot(self, extra: Optional[Dict] = None) -> dict:
        """A consistent point-in-time view for the ``metrics`` op."""
        with self._lock:
            uptime = max(time.monotonic() - self.started, 1e-9)
            latencies = list(self._latencies)
            sizes = list(self._batch_sizes)
            completed = self.ok + self.errors + self.timeouts
            payload = {
                "uptime_seconds": uptime,
                "requests": self.requests,
                "ok": self.ok,
                "errors": self.errors,
                "shed": self.shed,
                "timeouts": self.timeouts,
                "degraded": self.degraded,
                "cache_hits": self.cache_hits,
                "qps": completed / uptime,
                "latency_ms": {
                    "count": len(latencies),
                    "mean": (
                        sum(latencies) / len(latencies) * 1000.0
                        if latencies
                        else 0.0
                    ),
                    "p50": percentile(latencies, 50) * 1000.0,
                    "p95": percentile(latencies, 95) * 1000.0,
                    "p99": percentile(latencies, 99) * 1000.0,
                },
                "topk": {
                    "queries": self.topk_queries,
                    "blocks_considered": self.topk_blocks_considered,
                    "blocks_skipped": self.topk_blocks_skipped,
                    "candidates_pruned": self.topk_candidates_pruned,
                },
                "batches": {
                    "count": self.batches,
                    "size_flushes": self.size_flushes,
                    "timer_flushes": self.timer_flushes,
                    "coalesced_requests": self.coalesced,
                    "mean_size": sum(sizes) / len(sizes) if sizes else 0.0,
                    "max_size": max(sizes) if sizes else 0,
                },
                "paths": {
                    "views": self.path_views,
                    "straightforward": self.path_straightforward,
                    "conventional": self.path_conventional,
                    "mixed": self.path_mixed,
                    # Of the queries that *could* have used views
                    # (context-sensitive resolution), how many did.
                    "view_hit_rate": (
                        self.path_views
                        / (
                            self.path_views
                            + self.path_straightforward
                            + self.path_mixed
                        )
                        if (
                            self.path_views
                            + self.path_straightforward
                            + self.path_mixed
                        )
                        else 0.0
                    ),
                },
                "adaptive": {
                    "reselections": self.reselections,
                    "catalog_generation": self.catalog_generation,
                    "last_reselection": self.last_reselection,
                },
            }
        if extra:
            payload.update(extra)
        return payload
