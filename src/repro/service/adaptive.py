"""The adaptive-selection control loop: record → decide → reselect → swap.

:class:`AdaptiveSelectionController` closes the loop between the serving
layer's :class:`~repro.service.workload.WorkloadRecorder` and the
:class:`~repro.selection.adaptive.IncrementalReselector`, keeping every
expensive step **off the query path**:

* queries record their context into the bounded recorder (one dict
  update under a lock — the only query-path cost);
* a background maintenance thread wakes every ``interval_seconds`` (or
  immediately after a lifecycle flush/compaction, via the engine's
  maintenance hooks) and evaluates the reselection triggers;
* when triggered, it re-runs workload-driven selection over the current
  collection and installs the new catalog through the one
  :class:`~repro.core.backend.SearchBackend` entry point —
  ``install_catalog`` — which every shape implements: the flat engine
  swaps its handle, the sharded engine re-materialises per shard, the
  lifecycle engine swaps at a snapshot boundary, and the cluster router
  ships the catalog definitions to every shard worker over the wire.

Triggers, checked in order:

``coverage``
    enough new traffic since the last pass (``min_queries``) *and* the
    current catalog covers less than ``coverage_threshold`` of the
    recorded workload's frequency — the drift signal;
``growth``
    the collection grew more than ``growth_threshold`` since the last
    pass (the :func:`~repro.views.maintenance.needs_reselection`
    heuristic) — view definitions may have gone stale-shaped even if
    the workload has not moved.

The fork shard executor is rejected at construction: its worker
processes hold copy-on-write runtimes captured at fork time, so a
parent-side swap would silently never reach them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

from ..errors import QueryError, ReproError
from ..selection.adaptive import IncrementalReselector, ReselectionReport
from ..selection.workload_driven import evaluate_coverage
from ..views.maintenance import MaintenanceReport, needs_reselection
from .workload import WorkloadRecorder

__all__ = ["AdaptiveConfig", "AdaptiveSelectionController"]


@dataclass
class AdaptiveConfig:
    """Tunables for one adaptive-selection deployment."""

    interval_seconds: float = 30.0
    min_queries: int = 32
    coverage_threshold: float = 0.8
    growth_threshold: float = 0.2
    decay: float = 0.9

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise QueryError(
                f"interval_seconds must be > 0, got {self.interval_seconds}"
            )
        if self.min_queries < 1:
            raise QueryError(
                f"min_queries must be >= 1, got {self.min_queries}"
            )
        if not (0.0 < self.coverage_threshold <= 1.0):
            raise QueryError(
                "coverage_threshold must be in (0, 1], got "
                f"{self.coverage_threshold}"
            )
        if not (0.0 < self.decay <= 1.0):
            raise QueryError(f"decay must be in (0, 1], got {self.decay}")


class AdaptiveSelectionController:
    """Owns the background reselection thread for one engine."""

    def __init__(
        self,
        engine,
        reselector: IncrementalReselector,
        recorder: Optional[WorkloadRecorder] = None,
        config: Optional[AdaptiveConfig] = None,
        metrics=None,
        reference_index=None,
    ):
        self.engine = engine
        self.reselector = reselector
        self.recorder = recorder if recorder is not None else WorkloadRecorder()
        self.config = config if config is not None else AdaptiveConfig()
        self.metrics = metrics
        # A sharded engine plans over per-shard sub-indexes; selection
        # needs the whole collection, which only the pre-shard reference
        # index has.
        self.reference_index = reference_index
        self._validate_engine()

        self._run_lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.reselections = 0
        self.last_report: Optional[ReselectionReport] = None
        self.last_error: Optional[str] = None
        self._baseline_num_docs = self._num_docs()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the maintenance thread and hook lifecycle events."""
        if self._thread is not None:
            return
        hook = getattr(self.engine, "add_maintenance_hook", None)
        if callable(hook):
            hook(self.maintenance_hook)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-adaptive", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def maintenance_hook(self, event: str) -> None:
        """Lifecycle flush/compaction callback: wake the thread to
        re-check triggers (cheap — never reselects inline)."""
        self._wake.set()

    # -- the control loop ------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.config.interval_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.run_once()
            except ReproError as exc:
                # Selection failures must never take serving down; the
                # stale catalog keeps answering (exactly) until the next
                # attempt.
                self.last_error = f"{type(exc).__name__}: {exc}"

    def should_reselect(self) -> Optional[str]:
        """The trigger that currently applies, or ``None``."""
        stats = self.recorder.stats()
        if stats["recorded_since_mark"] >= self.config.min_queries:
            workload = self.recorder.to_workload()
            if workload:
                coverage = evaluate_coverage(
                    self._current_keyword_sets(), workload
                )
                if coverage < self.config.coverage_threshold:
                    return "coverage"
        if self._growth_exceeded():
            return "growth"
        return None

    def run_once(
        self, trigger: Optional[str] = None
    ) -> Optional[ReselectionReport]:
        """One trigger-check + reselection pass (synchronous).

        ``trigger`` forces a pass (benches and tests); otherwise the
        heuristics decide.  Returns the pass report, or ``None`` when no
        trigger applied or the recorder is empty.
        """
        with self._run_lock:
            if trigger is None:
                trigger = self.should_reselect()
                if trigger is None:
                    return None
            workload = self.recorder.to_workload()
            if not workload:
                return None
            index = self._selection_index()
            catalog, report = self.reselector.reselect(
                index,
                workload,
                previous_catalog=getattr(self.engine, "catalog", None),
                trigger=trigger,
            )
            generation = self._install(catalog, report)
            self.recorder.mark()
            self.recorder.decay(self.config.decay)
            self._baseline_num_docs = self._num_docs()
            self.reselections += 1
            self.last_report = report
            self.last_error = None
            if self.metrics is not None:
                self.metrics.observe_reselection(generation, report.to_dict())
            return report

    def info(self) -> dict:
        """Operational summary for ``healthz``/``info``."""
        return {
            "running": self.running,
            "interval_seconds": self.config.interval_seconds,
            "min_queries": self.config.min_queries,
            "coverage_threshold": self.config.coverage_threshold,
            "growth_threshold": self.config.growth_threshold,
            "reselections": self.reselections,
            "catalog_generation": getattr(
                self.engine, "catalog_generation", 0
            ),
            "version_vector": (
                self.engine.version.to_dict()
                if hasattr(self.engine, "version")
                else None
            ),
            "last_reselection": (
                self.last_report.to_dict() if self.last_report else None
            ),
            "last_error": self.last_error,
            "recorder": self.recorder.stats(),
        }

    # -- engine dispatch -------------------------------------------------

    def _validate_engine(self) -> None:
        """Every backend installs through the one SearchBackend entry
        point; constraints are declared, not type-sniffed:
        ``supports_hot_swap`` (False for the fork shard executor, whose
        copy-on-write workers cannot observe a parent-side swap) and
        ``needs_reference_index`` (True for shapes that shard or remote
        the collection, where selection must scan the whole-collection
        reference index)."""
        if not hasattr(self.engine, "install_catalog"):
            raise QueryError(
                f"engine {type(self.engine).__name__} has no catalog swap "
                "entry point (install_catalog)"
            )
        if not getattr(self.engine, "supports_hot_swap", True):
            backend = getattr(self.engine, "_backend", None)
            name = getattr(backend, "name", type(self.engine).__name__)
            raise QueryError(
                "adaptive selection is not supported on the "
                f"{name!r} shard executor: forked workers "
                "cannot observe catalog hot-swaps (use serial or "
                "thread)"
            )
        if (
            getattr(self.engine, "needs_reference_index", False)
            and self.reference_index is None
        ):
            raise QueryError(
                "adaptive selection over a sharded or distributed engine "
                "needs the pre-shard reference index (reference_index=) "
                "to run selection over the whole collection"
            )

    def _install(self, catalog, report: ReselectionReport) -> int:
        return self.engine.install_catalog(catalog, info=report.to_dict())

    def _selection_index(self):
        if hasattr(self.engine, "lifecycle_info"):
            # A lifecycle snapshot is the committed, index-shaped read
            # view selection can scan.
            return self.engine.index.snapshot()
        if self.reference_index is not None:
            return self.reference_index
        index = getattr(self.engine, "index", None)
        if index is None:
            raise QueryError(
                "cannot find an index to run view selection over"
            )
        return index

    def _num_docs(self) -> int:
        index = getattr(self.engine, "index", None) or getattr(
            self.engine, "sharded_index", None
        )
        if index is None:
            # Remote shapes (the cluster router) hold no local index;
            # growth is measured against the reference index instead.
            index = self.reference_index
        return getattr(index, "num_docs", 0)

    def _growth_exceeded(self) -> bool:
        if not self._baseline_num_docs:
            return False
        growth = (
            self._num_docs() - self._baseline_num_docs
        ) / self._baseline_num_docs
        probe = MaintenanceReport(growth_since_selection=growth)
        return needs_reselection(
            probe, growth_threshold=self.config.growth_threshold
        )

    def _current_keyword_sets(self) -> List:
        catalog = getattr(self.engine, "catalog", None)
        if catalog is not None:
            return [view.keyword_set for view in catalog]
        runtimes = getattr(self.engine, "runtimes", None)
        if runtimes:
            sets = set()
            for runtime in runtimes:
                if runtime.catalog is not None:
                    sets.update(
                        view.keyword_set for view in runtime.catalog
                    )
            return sorted(sets, key=sorted)
        return []

    def __enter__(self) -> "AdaptiveSelectionController":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
