"""Wire protocol for the query service: JSON lines over a TCP stream.

One request per line, one JSON object per response line.  The protocol
is deliberately thin — stdlib ``json`` + ``asyncio`` streams, no HTTP
dependency — but carries everything a serving deployment needs: query
text, per-request deadline, evaluation mode, and the full
:class:`~repro.core.report.ExecutionReport` (as the dict form of its
``to_dict``) back to the caller.

Request shapes::

    {"op": "query", "query": "pancreas leukemia | DigestiveSystem",
     "top_k": 10, "mode": "context", "path": "auto",
     "timeout_ms": 250, "id": 7}
    {"op": "healthz"}
    {"op": "metrics"}

Response statuses: ``ok`` (ranked hits + report), ``error`` (the query
failed: empty context, bad syntax, …), ``shed`` (admission control
rejected the request — the 429 analogue), ``timeout`` (the deadline
expired before a result was produced).  Responses echo the request's
``id`` so clients may pipeline multiple requests per connection and
match responses out of order.

:class:`ServiceClient` is the blocking reference client used by the
tests, the load generator, and ``python -m repro bench-serve``.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import ReproError

__all__ = [
    "CLUSTER_OPS",
    "MAX_CLUSTER_LINE_BYTES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "ServiceClient",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "STATUS_TIMEOUT",
    "VALID_MODES",
    "VALID_PATHS",
    "decode_request",
    "encode_response",
]

# A request line longer than this is malformed by definition; the server
# also passes it as the asyncio stream limit so one abusive client
# cannot balloon the reader buffer.
MAX_LINE_BYTES = 1 << 20

# Shard workers accept bigger frames: a router batch ships merged
# statistic values and candidate id lists for every query in the batch
# on one line.  Only the cluster-internal listener raises its limit;
# client-facing servers keep MAX_LINE_BYTES.
MAX_CLUSTER_LINE_BYTES = 1 << 26

OP_QUERY = "query"
OP_HEALTHZ = "healthz"
OP_METRICS = "metrics"

# Cluster-internal ops, spoken between the router and shard workers
# (service/cluster/).  Their payloads are op-specific and validated by
# the worker, not here; decode_request only routes them.  A plain
# single-engine server politely rejects them (see QueryService).
OP_SHARD_RESOLVE = "shard_resolve"
OP_SHARD_SCORE = "shard_score"
OP_SHARD_TOPK = "shard_topk"
OP_SHARD_CONVENTIONAL = "shard_conventional"
OP_SEGMENT_MANIFEST = "segment_manifest"
OP_FETCH_SEGMENT = "fetch_segment"
OP_INSTALL_CATALOG = "install_catalog"
CLUSTER_OPS = (
    OP_SHARD_RESOLVE,
    OP_SHARD_SCORE,
    OP_SHARD_TOPK,
    OP_SHARD_CONVENTIONAL,
    OP_SEGMENT_MANIFEST,
    OP_FETCH_SEGMENT,
    OP_INSTALL_CATALOG,
)

VALID_OPS = (OP_QUERY, OP_HEALTHZ, OP_METRICS) + CLUSTER_OPS

VALID_MODES = ("context", "conventional", "disjunctive")
VALID_PATHS = ("auto", "views", "straightforward")

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_SHED = "shed"
STATUS_TIMEOUT = "timeout"


class ProtocolError(ReproError):
    """Raised for malformed request lines (bad JSON, unknown fields)."""


@dataclass
class Request:
    """One decoded request line."""

    op: str
    query: Optional[str] = None
    top_k: Optional[int] = None
    mode: str = "context"
    path: str = "auto"
    timeout_ms: Optional[float] = None
    id: Any = None
    # Raw request object for cluster ops, whose payloads are op-specific
    # (task lists, segment names); validated by the shard worker.
    payload: Optional[dict] = None


def decode_request(line: bytes, limit: int = MAX_LINE_BYTES) -> Request:
    """Parse and validate one request line."""
    if len(line) > limit:
        raise ProtocolError(f"request line exceeds {limit} bytes")
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")

    op = payload.get("op", OP_QUERY)
    if op not in VALID_OPS:
        raise ProtocolError(f"unknown op {op!r} (have {', '.join(VALID_OPS)})")
    request = Request(op=op, id=payload.get("id"))
    if op in CLUSTER_OPS:
        request.payload = payload
        return request
    if op != OP_QUERY:
        return request

    query = payload.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ProtocolError("op 'query' requires a non-empty 'query' string")
    request.query = query

    top_k = payload.get("top_k")
    if top_k is not None and (not isinstance(top_k, int) or top_k < 1):
        raise ProtocolError(f"top_k must be a positive integer, got {top_k!r}")
    request.top_k = top_k

    mode = payload.get("mode", "context")
    if mode not in VALID_MODES:
        raise ProtocolError(
            f"unknown mode {mode!r} (have {', '.join(VALID_MODES)})"
        )
    request.mode = mode

    path = payload.get("path", "auto")
    if path not in VALID_PATHS:
        raise ProtocolError(
            f"unknown path {path!r} (have {', '.join(VALID_PATHS)})"
        )
    request.path = path

    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None and (
        not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0
    ):
        raise ProtocolError(
            f"timeout_ms must be a positive number, got {timeout_ms!r}"
        )
    request.timeout_ms = timeout_ms
    return request


def encode_response(payload: dict) -> bytes:
    """Serialise one response object to its wire line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


class ServiceClient:
    """Blocking JSON-lines client (tests, load generator, CLI).

    One request in flight at a time per client; open several clients for
    concurrency (that is exactly what the load generator does).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    def request(self, payload: dict) -> dict:
        """Send one request object; block for its response."""
        self._sock.sendall(
            json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        line = self._reader.readline()
        if not line:
            raise ProtocolError("server closed the connection")
        return json.loads(line)

    def query(
        self,
        query: str,
        top_k: Optional[int] = None,
        mode: str = "context",
        path: str = "auto",
        timeout_ms: Optional[float] = None,
        id: Any = None,
    ) -> dict:
        payload: dict = {"op": OP_QUERY, "query": query, "mode": mode, "path": path}
        if top_k is not None:
            payload["top_k"] = top_k
        if timeout_ms is not None:
            payload["timeout_ms"] = timeout_ms
        if id is not None:
            payload["id"] = id
        return self.request(payload)

    def healthz(self) -> dict:
        return self.request({"op": OP_HEALTHZ})

    def metrics(self) -> dict:
        return self.request({"op": OP_METRICS})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
