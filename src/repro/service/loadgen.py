"""Closed-loop load generator for the query service.

``run_load`` drives a running server with N client threads, each holding
its own :class:`~repro.service.protocol.ServiceClient` connection and
issuing queries back-to-back (a closed loop: concurrency == thread
count).  It is the measurement half of ``bench-serve`` and of
``benchmarks/bench_serving.py`` — throughput and latency percentiles
come from here, correctness cross-checks (bit-identical rankings vs
serial execution) from the callers.

``address`` may also be a *list* of endpoints — e.g. several routers in
front of the same cluster, or a router plus a single-node fallback —
in which case threads are spread round-robin across the endpoints and
the report carries a per-endpoint breakdown alongside the aggregate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .metrics import percentile
from .protocol import ServiceClient

__all__ = ["EndpointStats", "LoadReport", "run_load"]

Address = Tuple[str, int]


@dataclass
class EndpointStats:
    """One endpoint's share of a load run (a slice of the aggregate)."""

    address: str
    sent: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    timeouts: int = 0
    latencies: List[float] = field(default_factory=list)

    def latency_ms(self, p: float) -> float:
        return percentile(self.latencies, p) * 1000.0

    def to_dict(self) -> dict:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "latency_ms": {
                "p50": self.latency_ms(50),
                "p95": self.latency_ms(95),
                "p99": self.latency_ms(99),
            },
        }


@dataclass
class LoadReport:
    """What one load run produced, aggregated across client threads."""

    sent: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    timeouts: int = 0
    elapsed_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    responses: Dict[int, dict] = field(default_factory=dict)
    endpoints: Dict[str, EndpointStats] = field(default_factory=dict)

    @property
    def qps(self) -> float:
        return self.ok / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def latency_ms(self, p: float) -> float:
        return percentile(self.latencies, p) * 1000.0

    def to_dict(self) -> dict:
        out = {
            "sent": self.sent,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "elapsed_seconds": self.elapsed_seconds,
            "qps": self.qps,
            "latency_ms": {
                "p50": self.latency_ms(50),
                "p95": self.latency_ms(95),
                "p99": self.latency_ms(99),
            },
        }
        if len(self.endpoints) > 1:
            out["endpoints"] = {
                addr: stats.to_dict()
                for addr, stats in sorted(self.endpoints.items())
            }
        return out


def _normalise_endpoints(
    address: Union[Address, Sequence[Address]],
) -> List[Address]:
    """One address or many; a bare ``(host, port)`` tuple is one."""
    if (
        isinstance(address, tuple)
        and len(address) == 2
        and isinstance(address[0], str)
    ):
        return [address]
    endpoints = [(str(host), int(port)) for host, port in address]
    if not endpoints:
        raise ValueError("run_load needs at least one endpoint")
    return endpoints


def run_load(
    address: Union[Address, Sequence[Address]],
    queries: Sequence[str],
    threads: int = 8,
    top_k: Optional[int] = None,
    mode: str = "context",
    timeout_ms: Optional[float] = None,
    repeat: int = 1,
    keep_responses: bool = False,
) -> LoadReport:
    """Issue ``queries`` (``repeat`` times over) from ``threads`` clients.

    The workload is split round-robin: thread ``t`` sends queries
    ``t, t+threads, t+2·threads, …`` of the repeated sequence, so any
    thread count covers the full workload exactly ``repeat`` times.
    With multiple endpoints, thread ``t`` connects to endpoint
    ``t % len(endpoints)`` — the query split is unchanged, so the union
    of all threads' work is the same workload regardless of endpoint
    count, and :attr:`LoadReport.endpoints` breaks the counters and
    latencies down per target.  With ``keep_responses`` the ok responses
    are kept in :attr:`LoadReport.responses` keyed by global query
    index — that is what the benchmark's bit-identity check reads.
    """
    endpoints = _normalise_endpoints(address)
    workload = list(queries) * repeat
    threads = max(1, min(threads, len(workload)))
    report = LoadReport(sent=len(workload))
    report.endpoints = {
        f"{host}:{port}": EndpointStats(address=f"{host}:{port}")
        for host, port in endpoints
    }
    lock = threading.Lock()

    def client_loop(offset: int) -> None:
        host, port = endpoints[offset % len(endpoints)]
        endpoint_key = f"{host}:{port}"
        local_lat: List[float] = []
        local_counts = {"ok": 0, "errors": 0, "shed": 0, "timeouts": 0}
        local_responses: Dict[int, dict] = {}
        local_sent = 0
        with ServiceClient(host, port) as client:
            for i in range(offset, len(workload), threads):
                began = time.perf_counter()
                response = client.query(
                    workload[i],
                    top_k=top_k,
                    mode=mode,
                    timeout_ms=timeout_ms,
                    id=i,
                )
                local_lat.append(time.perf_counter() - began)
                local_sent += 1
                status = response.get("status")
                if status == "ok":
                    local_counts["ok"] += 1
                    if keep_responses:
                        local_responses[i] = response
                elif status == "shed":
                    local_counts["shed"] += 1
                elif status == "timeout":
                    local_counts["timeouts"] += 1
                else:
                    local_counts["errors"] += 1
        with lock:
            report.ok += local_counts["ok"]
            report.errors += local_counts["errors"]
            report.shed += local_counts["shed"]
            report.timeouts += local_counts["timeouts"]
            report.latencies.extend(local_lat)
            report.responses.update(local_responses)
            stats = report.endpoints[endpoint_key]
            stats.sent += local_sent
            stats.ok += local_counts["ok"]
            stats.errors += local_counts["errors"]
            stats.shed += local_counts["shed"]
            stats.timeouts += local_counts["timeouts"]
            stats.latencies.extend(local_lat)

    started = time.perf_counter()
    workers = [
        threading.Thread(target=client_loop, args=(t,), daemon=True)
        for t in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report
