"""Programmatic paper reproduction: run E1–E7 and render EXPERIMENTS.md.

The benchmark harness (``pytest benchmarks/``) measures with
pytest-benchmark; this package is the library-level equivalent — build
one :class:`ExperimentStack`, run each experiment as a function, and get
structured results plus a Markdown report::

    from repro.experiments import ExperimentConfig, run_all, write_report

    report = run_all(ExperimentConfig.quick(), progress=True)
    print(report.all_shapes_hold)
    write_report(report, "EXPERIMENTS.md")
"""

from .config import ExperimentConfig
from .stack import ExperimentStack
from .quality import Figure6Result, run_figure6
from .performance import PerformanceResult, run_figure7, run_figure8
from .selection_study import SelectionStudyResult, run_selection_study
from .report import ExperimentReport, markdown_table
from .runner import run_all, write_report

__all__ = [
    "ExperimentConfig",
    "ExperimentStack",
    "Figure6Result",
    "run_figure6",
    "PerformanceResult",
    "run_figure7",
    "run_figure8",
    "SelectionStudyResult",
    "run_selection_study",
    "ExperimentReport",
    "markdown_table",
    "run_all",
    "write_report",
]
