"""Configuration for full paper-reproduction runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import DataGenerationError


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and thresholds for one end-to-end reproduction run.

    Defaults reproduce the benchmark harness's setup: a 12 k-document
    corpus with the paper's relative thresholds (``T_C`` = 1 % of the
    collection, ``T_V`` = 4096 tuples).  ``quick()`` gives a laptop-
    friendly configuration for the example script.
    """

    num_docs: int = 12_000
    seed: int = 2011
    t_c_percent: float = 1.0
    t_v: int = 4096
    # Figure 6.
    num_topics: int = 30
    min_result_size: int = 40
    min_relevant: int = 5
    k: int = 20
    # Figures 7/8.
    keyword_counts: Tuple[int, ...] = (2, 3, 4, 5)
    queries_per_point: int = 50
    # Section 6.2 infeasibility budgets (scaled; see the bench docstring).
    apriori_budget: int = 3_000_000
    fpgrowth_node_budget: int = 50_000

    def __post_init__(self):
        if self.num_docs < 100:
            raise DataGenerationError("num_docs must be >= 100")
        if not 0 < self.t_c_percent <= 100:
            raise DataGenerationError("t_c_percent must be in (0, 100]")
        if self.t_v < 2:
            raise DataGenerationError("t_v must be >= 2")

    @property
    def t_c(self) -> int:
        return max(int(self.num_docs * self.t_c_percent / 100.0), 1)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A few-minutes configuration for demonstration runs."""
        return cls(
            num_docs=4_000,
            num_topics=15,
            min_result_size=20,
            queries_per_point=15,
            t_v=1024,
            apriori_budget=600_000,
            fpgrowth_node_budget=18_000,
        )
