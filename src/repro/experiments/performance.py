"""Experiments E6/E7: the Figure 7 and Figure 8 performance sweeps."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.engine import ContextSearchEngine
from ..data.workloads import WorkloadQuery
from .stack import ExperimentStack


@dataclass(frozen=True)
class ArmMeasurement:
    """One (system, keyword-count) cell: mean latency and model cost."""

    mean_ms: float
    mean_model_cost: float


@dataclass
class PerformanceResult:
    """One figure's sweep: measurements[(arm, n_keywords)]."""

    figure: str
    arms: Tuple[str, ...]
    keyword_counts: Tuple[int, ...]
    measurements: Dict[Tuple[str, int], ArmMeasurement] = field(
        default_factory=dict
    )

    def rows(self) -> List[Tuple]:
        out = []
        for n in self.keyword_counts:
            row = [n]
            for arm in self.arms:
                cell = self.measurements[(arm, n)]
                row.append(f"{cell.mean_ms:.2f}")
            for arm in self.arms:
                cell = self.measurements[(arm, n)]
                row.append(f"{cell.mean_model_cost:.0f}")
            out.append(tuple(row))
        return out

    def headers(self) -> Tuple[str, ...]:
        return (
            ("#kw",)
            + tuple(f"{arm} ms" for arm in self.arms)
            + tuple(f"{arm} cost" for arm in self.arms)
        )

    def arm_total_ms(self, arm: str) -> float:
        return sum(
            self.measurements[(arm, n)].mean_ms for n in self.keyword_counts
        )

    @property
    def shape_holds(self) -> bool:
        """Figure 7: straightforward slower than views.  Figure 8: the
        context-sensitive arm stays within a bounded factor."""
        if self.figure == "figure7":
            return self.arm_total_ms("Qc no views") > self.arm_total_ms(
                "Qc views"
            )
        return self.arm_total_ms("Qc") < 50 * max(
            self.arm_total_ms("conventional"), 1e-9
        )


def _measure(
    engine: ContextSearchEngine,
    bucket: Sequence[WorkloadQuery],
    conventional: bool,
    repeats: int = 3,
) -> ArmMeasurement:
    """Mean per-query latency/model-cost over a bucket (best of repeats)."""
    best_ms = float("inf")
    cost = 0.0
    for _ in range(repeats):
        total_cost = 0
        started = time.perf_counter()
        for wq in bucket:
            if conventional:
                result = engine.search_conventional(wq.query, top_k=20)
            else:
                result = engine.search(wq.query, top_k=20)
            total_cost += result.report.counter.model_cost
        elapsed_ms = (time.perf_counter() - started) * 1000 / len(bucket)
        if elapsed_ms < best_ms:
            best_ms = elapsed_ms
        cost = total_cost / len(bucket)
    return ArmMeasurement(mean_ms=best_ms, mean_model_cost=cost)


def run_figure7(stack: ExperimentStack) -> PerformanceResult:
    """Large-context queries: conventional vs Q_c±views (three arms)."""
    workload = stack.workload("large")
    result = PerformanceResult(
        figure="figure7",
        arms=("conventional", "Qc views", "Qc no views"),
        keyword_counts=tuple(stack.config.keyword_counts),
    )
    with_views = stack.engine_with_views
    plain = stack.engine_plain
    for n, bucket in workload.queries.items():
        result.measurements[("conventional", n)] = _measure(
            plain, bucket, conventional=True
        )
        result.measurements[("Qc views", n)] = _measure(
            with_views, bucket, conventional=False
        )
        result.measurements[("Qc no views", n)] = _measure(
            plain, bucket, conventional=False
        )
    return result


def run_figure8(stack: ExperimentStack) -> PerformanceResult:
    """Small-context queries: conventional vs Q_c (no usable views)."""
    workload = stack.workload("small")
    result = PerformanceResult(
        figure="figure8",
        arms=("conventional", "Qc"),
        keyword_counts=tuple(stack.config.keyword_counts),
    )
    with_views = stack.engine_with_views
    plain = stack.engine_plain
    for n, bucket in workload.queries.items():
        result.measurements[("conventional", n)] = _measure(
            plain, bucket, conventional=True
        )
        # Views are present but unusable below T_C: exercises the real
        # fallback path.
        result.measurements[("Qc", n)] = _measure(
            with_views, bucket, conventional=False
        )
    return result
