"""Experiments E6/E7: the Figure 7 and Figure 8 performance sweeps."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.engine import ContextSearchEngine
from ..data.workloads import WorkloadQuery
from .stack import ExperimentStack


@dataclass(frozen=True)
class ArmMeasurement:
    """One (system, keyword-count) cell: mean latency and model cost.

    ``path_counts`` records how often the optimizer chose each physical
    path across the bucket (from the unified report's plan), and
    ``mean_predicted_cost`` is the mean of the optimizer's predicted
    model cost — comparing it with ``mean_model_cost`` shows how tight
    the analytic bounds run on real workloads.
    """

    mean_ms: float
    mean_model_cost: float
    mean_predicted_cost: float = 0.0
    path_counts: Tuple[Tuple[str, int], ...] = ()


@dataclass
class PerformanceResult:
    """One figure's sweep: measurements[(arm, n_keywords)]."""

    figure: str
    arms: Tuple[str, ...]
    keyword_counts: Tuple[int, ...]
    measurements: Dict[Tuple[str, int], ArmMeasurement] = field(
        default_factory=dict
    )

    def rows(self) -> List[Tuple]:
        out = []
        for n in self.keyword_counts:
            row = [n]
            for arm in self.arms:
                cell = self.measurements[(arm, n)]
                row.append(f"{cell.mean_ms:.2f}")
            for arm in self.arms:
                cell = self.measurements[(arm, n)]
                row.append(f"{cell.mean_model_cost:.0f}")
            out.append(tuple(row))
        return out

    def headers(self) -> Tuple[str, ...]:
        return (
            ("#kw",)
            + tuple(f"{arm} ms" for arm in self.arms)
            + tuple(f"{arm} cost" for arm in self.arms)
        )

    def arm_total_ms(self, arm: str) -> float:
        return sum(
            self.measurements[(arm, n)].mean_ms for n in self.keyword_counts
        )

    def path_mix(self, arm: str) -> Dict[str, int]:
        """How often the optimizer chose each path across the arm's sweep."""
        mix: Dict[str, int] = {}
        for n in self.keyword_counts:
            for path, count in self.measurements[(arm, n)].path_counts:
                mix[path] = mix.get(path, 0) + count
        return mix

    @property
    def shape_holds(self) -> bool:
        """Figure 7: straightforward slower than views.  Figure 8: the
        context-sensitive arm stays within a bounded factor."""
        if self.figure == "figure7":
            return self.arm_total_ms("Qc no views") > self.arm_total_ms(
                "Qc views"
            )
        return self.arm_total_ms("Qc") < 50 * max(
            self.arm_total_ms("conventional"), 1e-9
        )


def _measure(
    engine: ContextSearchEngine,
    bucket: Sequence[WorkloadQuery],
    conventional: bool,
    repeats: int = 3,
) -> ArmMeasurement:
    """Mean per-query latency/model-cost over a bucket (best of repeats)."""
    best_ms = float("inf")
    cost = 0.0
    predicted = 0.0
    path_counts: Dict[str, int] = {}
    for attempt in range(repeats):
        total_cost = 0
        total_predicted = 0
        started = time.perf_counter()
        for wq in bucket:
            if conventional:
                result = engine.search_conventional(wq.query, top_k=20)
            else:
                result = engine.search(wq.query, top_k=20)
            report = result.report
            total_cost += report.counter.model_cost
            if report.predicted_cost is not None:
                total_predicted += report.predicted_cost
            if attempt == 0:
                path = report.path
                path_counts[path] = path_counts.get(path, 0) + 1
        elapsed_ms = (time.perf_counter() - started) * 1000 / len(bucket)
        if elapsed_ms < best_ms:
            best_ms = elapsed_ms
        cost = total_cost / len(bucket)
        predicted = total_predicted / len(bucket)
    return ArmMeasurement(
        mean_ms=best_ms,
        mean_model_cost=cost,
        mean_predicted_cost=predicted,
        path_counts=tuple(sorted(path_counts.items())),
    )


def run_figure7(stack: ExperimentStack) -> PerformanceResult:
    """Large-context queries: conventional vs Q_c±views (three arms)."""
    workload = stack.workload("large")
    result = PerformanceResult(
        figure="figure7",
        arms=("conventional", "Qc views", "Qc no views"),
        keyword_counts=tuple(stack.config.keyword_counts),
    )
    with_views = stack.engine_with_views
    plain = stack.engine_plain
    for n, bucket in workload.queries.items():
        result.measurements[("conventional", n)] = _measure(
            plain, bucket, conventional=True
        )
        result.measurements[("Qc views", n)] = _measure(
            with_views, bucket, conventional=False
        )
        result.measurements[("Qc no views", n)] = _measure(
            plain, bucket, conventional=False
        )
    return result


def run_figure8(stack: ExperimentStack) -> PerformanceResult:
    """Small-context queries: conventional vs Q_c (no usable views)."""
    workload = stack.workload("small")
    result = PerformanceResult(
        figure="figure8",
        arms=("conventional", "Qc"),
        keyword_counts=tuple(stack.config.keyword_counts),
    )
    with_views = stack.engine_with_views
    plain = stack.engine_plain
    for n, bucket in workload.queries.items():
        result.measurements[("conventional", n)] = _measure(
            plain, bucket, conventional=True
        )
        # Views are present but unusable below T_C: exercises the real
        # fallback path.
        result.measurements[("Qc", n)] = _measure(
            with_views, bucket, conventional=False
        )
    return result
