"""Experiments E4/E5: view-selection feasibility, statistics, and storage."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import BudgetExceededError
from ..index.compression import index_compressed_bytes
from ..selection.hybrid import max_combination_size
from ..selection.mining.apriori import apriori
from ..selection.mining.fpgrowth import fpgrowth
from ..selection.verify import VerificationResult, verify_selection
from .stack import ExperimentStack


@dataclass
class MinerFeasibility:
    """Did a corpus-scale miner finish within its scaled budget?"""

    algorithm: str
    budget: int
    work_done: int
    exceeded: bool
    elapsed_seconds: float


@dataclass
class SelectionStudyResult:
    """Everything Section 6.2 reports, measured here."""

    t_c: int
    t_v: int
    miner_feasibility: List[MinerFeasibility] = field(default_factory=list)
    num_views: int = 0
    views_from_decomposition: int = 0
    views_from_mining: int = 0
    dense_residues: int = 0
    separators_computed: int = 0
    selection_seconds: float = 0.0
    audit: Optional[VerificationResult] = None
    # Storage accounting.
    max_tuples: int = 0
    mean_tuples: float = 0.0
    parameter_columns: int = 0
    frequent_keywords: int = 0
    view_storage_bytes: int = 0
    index_raw_bytes: int = 0
    index_compressed_bytes: int = 0

    @property
    def shape_holds(self) -> bool:
        """Paper shape: plain miners infeasible, hybrid succeeds, every
        view within T_V, guarantee audited clean."""
        miners_blow_up = all(m.exceeded for m in self.miner_feasibility)
        return (
            miners_blow_up
            and self.num_views > 0
            and self.max_tuples <= self.t_v
            and self.audit is not None
            and self.audit.ok
        )

    def feasibility_rows(self) -> List[Tuple]:
        rows = [
            (
                m.algorithm,
                f"{m.budget:,}",
                f"{m.work_done:,}",
                "exceeded (infeasible)" if m.exceeded else "completed",
                f"{m.elapsed_seconds:.1f}s",
            )
            for m in self.miner_feasibility
        ]
        rows.append(
            (
                "hybrid (ours)",
                "-",
                "-",
                f"completed: {self.num_views} views",
                f"{self.selection_seconds:.1f}s",
            )
        )
        return rows

    def storage_rows(self) -> List[Tuple]:
        return [
            ("views materialized", self.num_views),
            ("max tuples per view", self.max_tuples),
            ("mean tuples per view", f"{self.mean_tuples:.1f}"),
            ("parameter columns per view", self.parameter_columns),
            ("frequent keywords (|L_w| ≥ T_C)", self.frequent_keywords),
            ("total view storage", f"{self.view_storage_bytes / 1e6:.2f} MB"),
            ("index, raw 8B postings", f"{self.index_raw_bytes / 1e6:.2f} MB"),
            (
                "index, varint-compressed",
                f"{self.index_compressed_bytes / 1e6:.2f} MB",
            ),
        ]


def _try_miner(miner, name: str, db, t_c: int, budget_kwargs) -> MinerFeasibility:
    started = time.perf_counter()
    try:
        result = miner(db, min_support=t_c, max_size=8, **budget_kwargs)
        work, exceeded = result.work_units, False
        budget = next(iter(budget_kwargs.values()))
    except BudgetExceededError as exc:
        work, exceeded, budget = exc.work_done, True, exc.budget
    return MinerFeasibility(
        algorithm=name,
        budget=budget,
        work_done=work,
        exceeded=exceeded,
        elapsed_seconds=time.perf_counter() - started,
    )


def run_selection_study(stack: ExperimentStack) -> SelectionStudyResult:
    """Reproduce the Section 6.2 findings end to end."""
    config = stack.config
    result = SelectionStudyResult(t_c=config.t_c, t_v=config.t_v)

    # 1. Corpus-scale mining under scaled budgets (paper: weeks / OOM).
    result.miner_feasibility.append(
        _try_miner(
            apriori, "apriori", stack.db, config.t_c,
            {"budget": config.apriori_budget},
        )
    )
    result.miner_feasibility.append(
        _try_miner(
            fpgrowth, "fpgrowth", stack.db, config.t_c,
            {"max_nodes": config.fpgrowth_node_budget},
        )
    )

    # 2. The hybrid selection (memoised on the stack) and its audit.
    report = stack.selection_report
    result.num_views = report.num_views
    result.views_from_decomposition = report.views_from_decomposition
    result.views_from_mining = report.views_from_mining
    result.dense_residues = report.dense_residues
    result.separators_computed = report.separators_computed
    result.selection_seconds = stack.timings.get(
        "view selection + materialisation", 0.0
    )
    result.audit = verify_selection(
        stack.db,
        report.keyword_sets,
        stack.estimator,
        config.t_c,
        config.t_v,
        max_combination_size=max_combination_size(config.t_v),
    )

    # 3. Storage accounting.
    stats = stack.catalog.stats()
    sample_view = next(iter(stack.catalog))
    index = stack.index
    result.max_tuples = stats.max_tuples
    result.mean_tuples = stats.mean_tuples
    result.parameter_columns = sample_view.num_parameter_columns
    result.frequent_keywords = sum(
        1
        for w in index.vocabulary
        if index.document_frequency(w) >= config.t_c
    )
    result.view_storage_bytes = stats.total_storage_bytes
    postings = sum(
        index.document_frequency(w) for w in index.vocabulary
    ) + sum(
        index.predicate_frequency(m) for m in index.predicate_vocabulary
    )
    result.index_raw_bytes = postings * 8
    result.index_compressed_bytes = index_compressed_bytes(index)
    return result
