"""The shared experiment stack: everything built once, lazily, with timings."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.engine import ContextSearchEngine
from ..data.corpus import CorpusConfig, SyntheticCorpus, generate_corpus
from ..data.trec import QualityBenchmark, generate_benchmark
from ..data.workloads import PerformanceWorkload, generate_performance_workload
from ..index.inverted_index import InvertedIndex
from ..selection.hybrid import select_views
from ..selection.mining.itemsets import TransactionDatabase
from ..views.catalog import ViewCatalog
from ..views.estimator import ViewSizeEstimator
from ..views.wide_table import WideSparseTable
from .config import ExperimentConfig


@dataclass
class ExperimentStack:
    """Lazily built corpus/index/views/workloads shared by all experiments.

    Every expensive build step records its wall-clock seconds in
    ``timings`` so the final report can show where reproduction time
    goes (the paper's Section 6.2 reports selection time explicitly).
    """

    config: ExperimentConfig
    timings: Dict[str, float] = field(default_factory=dict)

    _corpus: Optional[SyntheticCorpus] = None
    _index: Optional[InvertedIndex] = None
    _table: Optional[WideSparseTable] = None
    _db: Optional[TransactionDatabase] = None
    _estimator: Optional[ViewSizeEstimator] = None
    _catalog: Optional[ViewCatalog] = None
    _selection_report = None
    _topics: Optional[QualityBenchmark] = None
    _workloads: Dict[str, PerformanceWorkload] = field(default_factory=dict)

    def _timed(self, label: str, builder):
        started = time.perf_counter()
        value = builder()
        self.timings[label] = time.perf_counter() - started
        return value

    @property
    def corpus(self) -> SyntheticCorpus:
        if self._corpus is None:
            self._corpus = self._timed(
                "corpus generation",
                lambda: generate_corpus(
                    CorpusConfig(
                        num_docs=self.config.num_docs, seed=self.config.seed
                    )
                ),
            )
        return self._corpus

    @property
    def index(self) -> InvertedIndex:
        if self._index is None:
            corpus = self.corpus
            self._index = self._timed("indexing", corpus.build_index)
        return self._index

    @property
    def table(self) -> WideSparseTable:
        if self._table is None:
            self._table = WideSparseTable.from_index(self.index)
        return self._table

    @property
    def db(self) -> TransactionDatabase:
        if self._db is None:
            self._db = TransactionDatabase(self.table.predicate_sets())
        return self._db

    @property
    def estimator(self) -> ViewSizeEstimator:
        if self._estimator is None:
            self._estimator = ViewSizeEstimator(
                self.table, seed=self.config.seed
            )
        return self._estimator

    def _ensure_selection(self):
        if self._catalog is None:
            def build():
                return select_views(
                    self.index,
                    t_c=self.config.t_c,
                    t_v=self.config.t_v,
                    strategy="hybrid",
                    estimator=self.estimator,
                )

            self._catalog, self._selection_report = self._timed(
                "view selection + materialisation", build
            )

    @property
    def catalog(self) -> ViewCatalog:
        self._ensure_selection()
        return self._catalog

    @property
    def selection_report(self):
        self._ensure_selection()
        return self._selection_report

    @property
    def engine_with_views(self) -> ContextSearchEngine:
        return ContextSearchEngine(self.index, catalog=self.catalog)

    @property
    def engine_plain(self) -> ContextSearchEngine:
        return ContextSearchEngine(self.index)

    @property
    def topics(self) -> QualityBenchmark:
        if self._topics is None:
            self._topics = self._timed(
                "topic generation",
                lambda: generate_benchmark(
                    self.corpus,
                    self.index,
                    num_topics=self.config.num_topics,
                    min_result_size=self.config.min_result_size,
                    min_relevant=self.config.min_relevant,
                    seed=self.config.seed,
                ),
            )
        return self._topics

    def workload(self, kind: str) -> PerformanceWorkload:
        if kind not in self._workloads:
            self._workloads[kind] = self._timed(
                f"{kind}-context workload generation",
                lambda: generate_performance_workload(
                    self.corpus,
                    self.index,
                    t_c=self.config.t_c,
                    kind=kind,
                    keyword_counts=self.config.keyword_counts,
                    queries_per_count=self.config.queries_per_point,
                    seed=self.config.seed,
                ),
            )
        return self._workloads[kind]
