"""Experiment E1–E3: the Figure 6 ranking-quality comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..eval.harness import QualityComparison, run_quality_comparison
from .stack import ExperimentStack

# What the paper reports at PubMed scale (for the side-by-side table).
PAPER_FIGURE6 = {
    "mean_precision_conventional": 7.9,
    "mean_precision_context": 10.2,
    "mrr_conventional": 0.62,
    "mrr_context": 0.78,
    "context_wins": 21,
    "topics": 30,
}


@dataclass
class Figure6Result:
    """Per-topic series plus summary, with the paper's numbers attached."""

    comparison: QualityComparison
    paper: Dict[str, float] = field(default_factory=lambda: dict(PAPER_FIGURE6))

    @property
    def summary(self) -> Dict[str, float]:
        return self.comparison.summary()

    @property
    def shape_holds(self) -> bool:
        """The reproduction target: context wins the majority and the
        means do not regress."""
        summary = self.summary
        return (
            self.comparison.wins > self.comparison.losses
            and summary["mean_precision_context"]
            >= summary["mean_precision_conventional"]
            and summary["mrr_context"] >= summary["mrr_conventional"] - 1e-9
        )

    def topic_rows(self) -> List[Tuple]:
        return [
            (
                f"Q{o.topic_id}",
                o.precision_conventional,
                o.precision_context,
                f"{o.rr_conventional:.2f}",
                f"{o.rr_context:.2f}",
            )
            for o in self.comparison.outcomes
        ]

    def summary_rows(self) -> List[Tuple]:
        summary = self.summary
        paper = self.paper
        return [
            (
                "mean precision@20",
                f"{paper['mean_precision_conventional']} → {paper['mean_precision_context']}",
                f"{summary['mean_precision_conventional']:.2f} → "
                f"{summary['mean_precision_context']:.2f}",
            ),
            (
                "mean reciprocal rank",
                f"{paper['mrr_conventional']} → {paper['mrr_context']}",
                f"{summary['mrr_conventional']:.2f} → {summary['mrr_context']:.2f}",
            ),
            (
                "topics won by context",
                f"{paper['context_wins']}/{paper['topics']}",
                f"{summary['context_wins']}/{summary['topics']} "
                f"(lost {summary['conventional_wins']}, tied {summary['ties']})",
            ),
        ]


def run_figure6(stack: ExperimentStack) -> Figure6Result:
    """Evaluate all topics under both rankings (Formula 3 vs Formula 4)."""
    comparison = run_quality_comparison(
        stack.engine_plain, stack.topics, k=stack.config.k
    )
    return Figure6Result(comparison=comparison)
