"""One-call reproduction runner: build the stack, run E1–E7, render."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from .config import ExperimentConfig
from .performance import run_figure7, run_figure8
from .quality import run_figure6
from .report import ExperimentReport
from .selection_study import run_selection_study
from .stack import ExperimentStack


def run_all(
    config: Optional[ExperimentConfig] = None,
    progress: bool = False,
) -> ExperimentReport:
    """Run every paper experiment and return the assembled report.

    With ``progress`` each stage prints a one-line status (useful for the
    20-minute full-scale run).
    """
    config = config if config is not None else ExperimentConfig()
    stack = ExperimentStack(config)

    def say(message: str) -> None:
        if progress:
            print(message, flush=True)

    say(f"building stack: {config.num_docs:,} docs, T_C={config.t_c}, T_V={config.t_v}")
    _ = stack.catalog  # force corpus/index/selection builds
    say(
        "stack ready: "
        + ", ".join(f"{k} {v:.1f}s" for k, v in stack.timings.items())
    )

    say("running E1–E3 (Figure 6: ranking quality)...")
    figure6 = run_figure6(stack)
    say(f"  shape {'HOLDS' if figure6.shape_holds else 'FAILS'}")

    say("running E4/E5 (Section 6.2: selection + storage)...")
    selection = run_selection_study(stack)
    say(f"  shape {'HOLDS' if selection.shape_holds else 'FAILS'}")

    say("running E6 (Figure 7: large contexts)...")
    figure7 = run_figure7(stack)
    say(f"  shape {'HOLDS' if figure7.shape_holds else 'FAILS'}")

    say("running E7 (Figure 8: small contexts)...")
    figure8 = run_figure8(stack)
    say(f"  shape {'HOLDS' if figure8.shape_holds else 'FAILS'}")

    return ExperimentReport(
        config=config,
        figure6=figure6,
        figure7=figure7,
        figure8=figure8,
        selection=selection,
        timings=dict(stack.timings),
    )


def write_report(
    report: ExperimentReport, path: Union[str, Path]
) -> Path:
    """Render the report to Markdown at ``path``."""
    path = Path(path)
    path.write_text(report.to_markdown(), encoding="utf-8")
    return path
