"""Render experiment results as a Markdown report (EXPERIMENTS.md's body)."""

from __future__ import annotations

import platform
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .config import ExperimentConfig
from .performance import PerformanceResult
from .quality import Figure6Result
from .selection_study import SelectionStudyResult


def markdown_table(headers: Sequence, rows: Sequence[Sequence]) -> str:
    """A GitHub-flavoured Markdown table (pipes in cells are escaped)."""

    def cell(value) -> str:
        return str(value).replace("|", "\\|")

    head = "| " + " | ".join(cell(h) for h in headers) + " |"
    rule = "|" + "|".join("---" for _ in headers) + "|"
    body = "\n".join(
        "| " + " | ".join(cell(c) for c in row) + " |" for row in rows
    )
    return "\n".join((head, rule, body))


@dataclass
class ExperimentReport:
    """All measured artefacts of one reproduction run."""

    config: ExperimentConfig
    figure6: Figure6Result
    figure7: PerformanceResult
    figure8: PerformanceResult
    selection: SelectionStudyResult
    timings: Dict[str, float]

    def verdicts(self) -> List[Tuple[str, bool]]:
        return [
            ("Figure 6 (ranking quality)", self.figure6.shape_holds),
            ("Figure 7 (large-context performance)", self.figure7.shape_holds),
            ("Figure 8 (small-context performance)", self.figure8.shape_holds),
            ("Section 6.2 (selection + storage)", self.selection.shape_holds),
        ]

    @property
    def all_shapes_hold(self) -> bool:
        return all(ok for _, ok in self.verdicts())

    def to_markdown(self) -> str:
        config = self.config
        parts: List[str] = []
        add = parts.append

        add("# EXPERIMENTS — paper vs. measured\n")
        add(
            "Reproduction of every evaluation artefact of *Context-sensitive "
            "Ranking for Document Retrieval* (SIGMOD 2011) on the synthetic "
            "PubMed substrate (see DESIGN.md §3 for substitutions).  The "
            "reproduction target is the **shape** of each result — who "
            "wins, by roughly what factor, where regimes change — not the "
            "absolute numbers, which depend on the authors' 18 M-document "
            "corpus and 2011 testbed.\n"
        )
        add("Regenerate with `python examples/reproduce_paper.py --full` ")
        add("or, with timing distributions, `pytest benchmarks/ --benchmark-only`.\n")

        add("## Setup\n")
        add(
            markdown_table(
                ("parameter", "paper", "this run"),
                [
                    ("corpus", "PubMed, 18 M citations", f"synthetic, {config.num_docs:,} citations (seed {config.seed})"),
                    ("T_C", "1% of |D| (180,000)", f"{config.t_c_percent:g}% of |D| ({config.t_c:,})"),
                    ("T_V", "4096 tuples", f"{config.t_v:,} tuples"),
                    ("topics", "30 (TREC Genomics 2007)", f"{config.num_topics} (synthetic TREC-style)"),
                    ("perf queries", "50 per point, 2–5 keywords", f"{config.queries_per_point} per point, {'–'.join(map(str, (config.keyword_counts[0], config.keyword_counts[-1])))} keywords"),
                    ("hardware", "Intel i7-860, 8 GB (Java 6)", f"{platform.machine()}, CPython {platform.python_version()}"),
                ],
            )
        )
        add("\nBuild timings: " + ", ".join(
            f"{label} {seconds:.1f}s" for label, seconds in self.timings.items()
        ) + ".\n")

        add("## E1–E3 · Figure 6: ranking quality (Section 6.1)\n")
        add(
            markdown_table(
                ("metric", "paper", "measured"),
                self.figure6.summary_rows(),
            )
        )
        add(
            "\nShape check: context-sensitive ranking must win a clear "
            f"majority of topics with non-regressing means — "
            f"**{'HOLDS' if self.figure6.shape_holds else 'FAILS'}**.\n"
        )
        add("<details><summary>Per-topic series (Figure 6a–6d)</summary>\n")
        add(
            markdown_table(
                ("topic", "P@20 conv (6a)", "P@20 ctx (6b)", "RR conv (6c)", "RR ctx (6d)"),
                self.figure6.topic_rows(),
            )
        )
        add("\n</details>\n")

        add("## E4 · Section 6.2: view-selection feasibility\n")
        add(
            "The paper: FP-growth runs out of memory on the full corpus; "
            "Apriori \"would take weeks\"; the hybrid finishes in 40 h and "
            "selects 3,523 views.  Budgets here are scaled to corpus size "
            "(DESIGN.md E4).\n"
        )
        add(
            markdown_table(
                ("algorithm", "budget (work/nodes)", "work done", "outcome", "time"),
                self.selection.feasibility_rows(),
            )
        )
        audit = self.selection.audit
        add(
            f"\nProblem 5.1 audit: {audit.checked_combinations:,} frequent "
            f"predicate combinations checked exactly; "
            f"uncovered = {len(audit.uncovered)}, oversized views = "
            f"{len(audit.oversized_views)} — "
            f"**{'GUARANTEE HOLDS' if audit.ok else 'VIOLATION'}**.\n"
        )

        add("## E5 · Section 6.2: storage usage\n")
        add(
            "Paper: 3,523 views totalling 12.77 GB (avg 3.71 MB/view, "
            "912 parameter columns, ≤4096 tuples) vs a 5.72 GB Lucene "
            "index over 70 GB of raw data.\n"
        )
        add(markdown_table(("quantity", "measured"), self.selection.storage_rows()))
        add(
            "\nNote the scale effect: at laptop corpus sizes the per-view "
            "parameter columns (one df column per frequent keyword) "
            "dominate, so views are proportionally larger relative to the "
            "index than at PubMed scale; the tuple-count bound (≤ T_V) and "
            "the df-column rule (only |L_w| ≥ T_C) are the paper-faithful "
            "quantities.\n"
        )

        add("## E6 · Figure 7: large-context query performance (Section 6.3)\n")
        add(
            "Paper shape: Q_c with views ≈ 2× conventional; Q_c without "
            "views many times slower.  Latency is per query (best-of-3 "
            "batch means); model cost counts posting/tuple entries touched "
            "— the hardware-independent quantity.\n"
        )
        add(markdown_table(self.figure7.headers(), self.figure7.rows()))
        add(
            f"\nShape check (no-views slower than views): "
            f"**{'HOLDS' if self.figure7.shape_holds else 'FAILS'}**.\n"
        )

        add("## E7 · Figure 8: small-context query performance (Section 6.3)\n")
        add(
            "No view covers contexts below T_C, so Q_c pays the "
            "straightforward plan; the paper's point is that the absolute "
            "cost stays bounded because small contexts are cheap to "
            "materialise (Proposition 3.1).\n"
        )
        add(markdown_table(self.figure8.headers(), self.figure8.rows()))
        add(
            f"\nShape check (bounded slowdown): "
            f"**{'HOLDS' if self.figure8.shape_holds else 'FAILS'}**.\n"
        )

        add("## Verdict\n")
        add(
            markdown_table(
                ("artefact", "shape reproduced?"),
                [
                    (name, "✓" if ok else "✗")
                    for name, ok in self.verdicts()
                ],
            )
        )
        add("")
        return "\n".join(parts)
