"""Time/range-extended context specifications (the Section 7 extension).

"Context specifications can be extended with other variables.  For
example, with *time* variable, users are able to specify the context as
a set of documents published after 1998.  Existing work on range
aggregation queries can be used for such queries."  This package
implements that sketch: numeric document attributes, range-partitioned
materialized views (exact for any range at bucket width 1), and a search
engine over ``Q_k | P ∧ attribute ∈ [low, high]`` contexts.
"""

from .attributes import NumericAttributeIndex
from .views import TemporalView, materialize_temporal_view
from .engine import TemporalContextQuery, TemporalSearchEngine

__all__ = [
    "NumericAttributeIndex",
    "TemporalView",
    "materialize_temporal_view",
    "TemporalContextQuery",
    "TemporalSearchEngine",
]
