"""Search over time-extended contexts (the Section 7 range extension).

A :class:`TemporalContextQuery` is ``Q_k | P ∧ attribute ∈ [low, high]``:
the context is the documents satisfying the predicates *and* the range.
Evaluation mirrors the main engine: statistics come from a usable
temporal view when one exists, otherwise from a straightforward plan
that materialises the range-filtered context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.engine import ExecutionReport, SearchHit, SearchResults
from ..core.query import ContextQuery, ContextSpecification, KeywordQuery, parse_query
from ..core.ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from ..core.statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    TERM_COUNT,
    TOTAL_LENGTH,
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
)
from ..errors import EmptyContextError, QueryError
from ..index.inverted_index import InvertedIndex
from ..index.searcher import BooleanSearcher
from .attributes import NumericAttributeIndex
from .views import TemporalView


@dataclass(frozen=True)
class TemporalContextQuery:
    """``Q_k | P ∧ low <= attribute <= high`` (``None`` bounds are open)."""

    query: ContextQuery
    low: Optional[int] = None
    high: Optional[int] = None

    def __post_init__(self):
        if (
            self.low is not None
            and self.high is not None
            and self.low > self.high
        ):
            raise QueryError(
                f"empty range: low={self.low} > high={self.high}"
            )

    @property
    def keywords(self) -> Tuple[str, ...]:
        return self.query.keywords

    @property
    def predicates(self) -> Tuple[str, ...]:
        return self.query.predicates

    def __str__(self) -> str:
        low = "-inf" if self.low is None else self.low
        high = "+inf" if self.high is None else self.high
        return f"{self.query} ∧ [{low}, {high}]"


class TemporalSearchEngine:
    """Context-sensitive search with range-extended context specifications."""

    def __init__(
        self,
        index: InvertedIndex,
        attributes: NumericAttributeIndex,
        ranking: Optional[RankingFunction] = None,
        views: Sequence[TemporalView] = (),
    ):
        if not index.committed:
            raise QueryError("index must be committed before searching")
        self.index = index
        self.attributes = attributes
        self.ranking = ranking if ranking is not None else DEFAULT_RANKING_FUNCTION
        self.views: List[TemporalView] = list(views)
        self.searcher = BooleanSearcher(index)

    def add_view(self, view: TemporalView) -> None:
        self.views.append(view)

    def search(
        self,
        query: Union[TemporalContextQuery, str],
        low: Optional[int] = None,
        high: Optional[int] = None,
        top_k: Optional[int] = None,
    ) -> SearchResults:
        """Evaluate a temporal context query.

        Accepts either a :class:`TemporalContextQuery` or the plain
        ``"w1 w2 | m1 m2"`` syntax plus ``low``/``high`` bounds.
        """
        if isinstance(query, str):
            query = TemporalContextQuery(parse_query(query), low, high)
        started = time.perf_counter()
        report = ExecutionReport()
        analyzed = self._analyze(query)

        specs = self.ranking.required_collection_specs(analyzed.keywords)
        values, result_ids = self._resolve(analyzed, specs, report)
        stats = CollectionStatistics.from_values(values)
        if stats.cardinality <= 0:
            raise EmptyContextError(
                f"temporal context {analyzed} matches no documents"
            )
        report.context_size = stats.cardinality

        hits = self._score(analyzed.keywords, result_ids, stats, top_k)
        report.result_size = len(result_ids)
        report.elapsed_seconds = time.perf_counter() - started
        return SearchResults(hits=hits, report=report)

    # -- internals ------------------------------------------------------------

    def _analyze(self, query: TemporalContextQuery) -> TemporalContextQuery:
        keywords = []
        for keyword in query.keywords:
            analyzed = self.index.analyzer.analyze_query_term(keyword)
            if analyzed is None:
                raise QueryError(f"keyword {keyword!r} was removed by analysis")
            keywords.append(analyzed)
        predicates = []
        for m in query.predicates:
            analyzed = self.index.predicate_analyzer.analyze_query_term(m)
            if analyzed is None:
                raise QueryError(f"empty context predicate: {m!r}")
            predicates.append(analyzed)
        return TemporalContextQuery(
            ContextQuery(
                KeywordQuery(keywords), ContextSpecification(predicates)
            ),
            query.low,
            query.high,
        )

    def _find_view(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        low: Optional[int],
        high: Optional[int],
    ) -> Optional[TemporalView]:
        """Smallest view usable for the context-level specs and range."""
        context_specs = [
            s for s in specs if s.kind in (CARDINALITY, TOTAL_LENGTH)
        ]
        best: Optional[TemporalView] = None
        for view in self.views:
            if all(
                view.is_usable_for(s, context, low, high)
                for s in context_specs
            ):
                if best is None or view.size < best.size:
                    best = view
        return best

    def _resolve(
        self,
        query: TemporalContextQuery,
        specs: Sequence[StatisticSpec],
        report: ExecutionReport,
    ) -> Tuple[Dict[StatisticSpec, float], List[int]]:
        context = query.query.context
        view = self._find_view(specs, context, query.low, query.high)
        if view is not None:
            report.resolution.path = "views"
            report.resolution.views_used = 1
            report.resolution.view_tuples_scanned = view.size
            answerable = [s for s in specs if view.has_column_for(s)]
            values: Dict[StatisticSpec, float] = dict(
                view.answer_many(
                    answerable, context, query.low, query.high, report.counter
                )
            )
            leftovers = [s for s in specs if s not in values]
            if leftovers:
                values.update(
                    self._rare_term_statistics(query, leftovers, report)
                )
                report.resolution.rare_term_fallbacks = len(
                    {s.term for s in leftovers}
                )
            result_ids = self._range_filter(
                self.searcher.search_conjunction(
                    query.keywords, query.predicates, report.counter
                ),
                query,
            )
            return values, result_ids

        # Straightforward: materialise the range-filtered context.
        report.resolution.path = "straightforward"
        context_ids = self._range_filter(
            self.searcher.search_context(query.predicates, report.counter),
            query,
        )
        if not context_ids:
            raise EmptyContextError(
                f"temporal context {query} matches no documents"
            )
        lengths = self.index.document_lengths()
        values = {}
        context_set = set(context_ids)
        for spec in specs:
            if spec.kind == CARDINALITY:
                values[spec] = len(context_ids)
            elif spec.kind == TOTAL_LENGTH:
                values[spec] = sum(lengths[d] for d in context_ids)
        report.counter.model_cost += 2 * len(context_ids)
        for term in dict.fromkeys(query.keywords):
            plist = self.index.postings(term)
            df = tc = 0
            for doc_id, tf in plist:
                if doc_id in context_set:
                    df += 1
                    tc += tf
            report.counter.entries_scanned += len(plist)
            report.counter.model_cost += len(plist)
            for spec in specs:
                if spec.term == term and spec.kind == DOC_FREQUENCY:
                    values[spec] = df
                elif spec.term == term and spec.kind == TERM_COUNT:
                    values[spec] = tc
        result_ids = [
            d
            for d in self.searcher.search_conjunction(
                query.keywords, query.predicates, report.counter
            )
            if d in context_set
        ]
        return values, result_ids

    def _range_filter(
        self, doc_ids: Sequence[int], query: TemporalContextQuery
    ) -> List[int]:
        if query.low is None and query.high is None:
            return list(doc_ids)
        return [
            d
            for d in doc_ids
            if self.attributes.in_range(d, query.low, query.high)
        ]

    def _rare_term_statistics(
        self,
        query: TemporalContextQuery,
        specs: Sequence[StatisticSpec],
        report: ExecutionReport,
    ) -> Dict[StatisticSpec, int]:
        """Per-keyword df/tc by selective intersection + range probe."""
        values: Dict[StatisticSpec, int] = {}
        predicate_lists = [
            self.index.predicate_postings(m) for m in query.predicates
        ]
        by_term: Dict[str, List[StatisticSpec]] = {}
        for spec in specs:
            if spec.kind not in (DOC_FREQUENCY, TERM_COUNT):
                raise QueryError(
                    f"cannot fall back for {spec.column_name()!r}"
                )
            by_term.setdefault(spec.term, []).append(spec)
        for term, term_specs in by_term.items():
            df = tc = 0
            positions = [0] * len(predicate_lists)
            for doc_id, tf in self.index.postings(term):
                report.counter.entries_scanned += 1
                if not self.attributes.in_range(doc_id, query.low, query.high):
                    continue
                in_all = True
                for idx, plist in enumerate(predicate_lists):
                    positions[idx] = plist.skip_to(
                        positions[idx], doc_id, report.counter
                    )
                    if (
                        positions[idx] >= len(plist.doc_ids)
                        or plist.doc_ids[positions[idx]] != doc_id
                    ):
                        in_all = False
                        break
                if in_all:
                    df += 1
                    tc += tf
            for spec in term_specs:
                values[spec] = df if spec.kind == DOC_FREQUENCY else tc
        return values

    def _score(
        self,
        keywords: Sequence[str],
        result_ids: Sequence[int],
        stats: CollectionStatistics,
        top_k: Optional[int],
    ) -> List[SearchHit]:
        query_stats = QueryStatistics.from_keywords(keywords)
        unique = list(dict.fromkeys(keywords))
        plists = {w: self.index.postings(w) for w in unique}
        hits = []
        for doc_id in result_ids:
            doc = self.index.store.get(doc_id)
            doc_stats = DocumentStatistics(
                length=doc.length,
                unique_terms=doc.unique_terms,
                term_frequencies={
                    w: (plists[w].tf_for(doc_id) or 0) for w in unique
                },
            )
            hits.append(
                SearchHit(
                    doc_id=doc_id,
                    external_id=doc.external_id,
                    score=self.ranking.score(query_stats, doc_stats, stats),
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        if top_k is not None:
            hits = hits[:top_k]
        return hits
