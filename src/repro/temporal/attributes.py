"""Numeric document attributes for range-extended context specifications.

Section 7 sketches the extension this package implements: "with a *time*
variable, users are able to specify the context as a set of documents
published after 1998.  Existing work on range aggregation queries can be
used for such queries."  The attribute index stores one numeric value
per document (e.g. publication year) and answers range probes and range
scans.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..index.inverted_index import InvertedIndex


class NumericAttributeIndex:
    """Per-document numeric attribute with sorted-range access."""

    def __init__(self, name: str, values: Sequence[Optional[int]]):
        self.name = name
        self._values: List[Optional[int]] = list(values)
        self._sorted: List[Tuple[int, int]] = sorted(
            (value, doc_id)
            for doc_id, value in enumerate(self._values)
            if value is not None
        )
        self._sorted_keys = [value for value, _ in self._sorted]

    @classmethod
    def from_index(
        cls, index: InvertedIndex, field: str = "year"
    ) -> "NumericAttributeIndex":
        """Parse a stored field into the attribute (missing/bad → None).

        Reads the raw field text of each stored document; the field is
        expected to hold a single integer literal.
        """
        values: List[Optional[int]] = []
        for doc in index.store:
            tokens = doc.field_tokens.get(field)
            raw: Optional[str]
            if tokens:
                raw = tokens[0]
            else:
                # Numeric fields are usually not analysed; fall back to
                # the original document text via the store.
                raw = None
            if raw is None:
                values.append(None)
                continue
            try:
                values.append(int(raw))
            except ValueError:
                values.append(None)
        return cls(field, values)

    @classmethod
    def from_values(
        cls, name: str, values: Sequence[Optional[int]]
    ) -> "NumericAttributeIndex":
        return cls(name, values)

    def __len__(self) -> int:
        return len(self._values)

    def value(self, doc_id: int) -> Optional[int]:
        """The attribute value of one document (``None`` when absent)."""
        try:
            return self._values[doc_id]
        except IndexError:
            raise QueryError(f"unknown docid {doc_id}") from None

    def in_range(
        self, doc_id: int, low: Optional[int], high: Optional[int]
    ) -> bool:
        """Whether the document's value lies in ``[low, high]`` (inclusive;
        ``None`` bounds are open).  Documents without a value never match."""
        value = self.value(doc_id)
        if value is None:
            return False
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
        return True

    def range_doc_ids(
        self, low: Optional[int], high: Optional[int]
    ) -> List[int]:
        """Sorted docids with values in ``[low, high]``."""
        lo_idx = (
            0 if low is None else bisect.bisect_left(self._sorted_keys, low)
        )
        hi_idx = (
            len(self._sorted)
            if high is None
            else bisect.bisect_right(self._sorted_keys, high)
        )
        return sorted(doc_id for _, doc_id in self._sorted[lo_idx:hi_idx])

    @property
    def min_value(self) -> Optional[int]:
        return self._sorted_keys[0] if self._sorted_keys else None

    @property
    def max_value(self) -> Optional[int]:
        return self._sorted_keys[-1] if self._sorted_keys else None
