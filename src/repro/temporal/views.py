"""Range-partitioned materialized views for time-extended contexts.

A :class:`TemporalView` extends ``V_K`` with one extra GROUP BY
dimension: the document's numeric attribute value (e.g. publication
year).  Group tuples are keyed by ``(keyword pattern, attribute value)``,
so a range-extended statistic

    SELECT Agg(para) FROM T
    WHERE m_j1 = 1 AND … AND low <= year <= high

rewrites to a scan summing tuples whose pattern covers ``P`` *and* whose
attribute bucket falls inside the range — exact for any range because
buckets are single attribute values (the natural granularity for years;
coarser bucketing would trade exactness for size, which the class also
supports via ``bucket_width``; partial buckets then fall back to the
straightforward path).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..core.query import ContextSpecification
from ..core.statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    TERM_COUNT,
    TOTAL_LENGTH,
    StatisticSpec,
)
from ..errors import ViewError, ViewNotUsableError
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter
from ..views.view import GroupTuple
from ..views.wide_table import WideSparseTable
from .attributes import NumericAttributeIndex

GroupKey = Tuple[FrozenSet[str], Optional[int]]


class TemporalView:
    """``V_K`` with an extra bucketed attribute dimension."""

    def __init__(
        self,
        keyword_set: Iterable[str],
        attribute_name: str,
        groups: Dict[GroupKey, GroupTuple],
        df_terms: Iterable[str] = (),
        tc_terms: Iterable[str] = (),
        bucket_width: int = 1,
    ):
        self.keyword_set: FrozenSet[str] = frozenset(keyword_set)
        if not self.keyword_set:
            raise ViewError("a view must group by at least one keyword")
        if bucket_width < 1:
            raise ViewError(f"bucket_width must be >= 1, got {bucket_width}")
        self.attribute_name = attribute_name
        self.groups = dict(groups)
        self.df_terms = frozenset(df_terms)
        self.tc_terms = frozenset(tc_terms)
        self.bucket_width = bucket_width

    @property
    def size(self) -> int:
        """Non-empty ``(pattern, bucket)`` tuples."""
        return len(self.groups)

    # -- usability ----------------------------------------------------------

    def covers_context(self, context: ContextSpecification) -> bool:
        return context.is_covered_by(self.keyword_set)

    def has_column_for(self, spec: StatisticSpec) -> bool:
        if spec.kind in (CARDINALITY, TOTAL_LENGTH):
            return True
        if spec.kind == DOC_FREQUENCY:
            return spec.term in self.df_terms
        if spec.kind == TERM_COUNT:
            return spec.term in self.tc_terms
        return False

    def covers_range_exactly(
        self, low: Optional[int], high: Optional[int]
    ) -> bool:
        """Whether ``[low, high]`` aligns with bucket boundaries.

        With ``bucket_width == 1`` every range is exact.  Wider buckets
        answer only ranges aligned to bucket edges; misaligned ranges
        must use the straightforward path (partial buckets would
        over-count).
        """
        if self.bucket_width == 1:
            return True
        if low is not None and low % self.bucket_width != 0:
            return False
        if high is not None and (high + 1) % self.bucket_width != 0:
            return False
        return True

    def is_usable_for(
        self,
        spec: StatisticSpec,
        context: ContextSpecification,
        low: Optional[int],
        high: Optional[int],
    ) -> bool:
        return (
            self.has_column_for(spec)
            and self.covers_context(context)
            and self.covers_range_exactly(low, high)
        )

    # -- answering -----------------------------------------------------------

    def answer_many(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        low: Optional[int] = None,
        high: Optional[int] = None,
        counter: Optional[CostCounter] = None,
    ) -> Dict[StatisticSpec, int]:
        """Answer statistics for context ∧ range in one scan of the view."""
        for spec in specs:
            if not self.is_usable_for(spec, context, low, high):
                raise ViewNotUsableError(
                    f"temporal view over {sorted(self.keyword_set)} cannot "
                    f"answer {spec.column_name()} for {context} "
                    f"range [{low}, {high}]"
                )
        wanted = context.as_set()
        totals: Dict[StatisticSpec, int] = {spec: 0 for spec in specs}
        for (pattern, bucket), group in self.groups.items():
            if bucket is None or not wanted <= pattern:
                continue
            bucket_low = bucket
            bucket_high = bucket + self.bucket_width - 1
            if low is not None and bucket_high < low:
                continue
            if high is not None and bucket_low > high:
                continue
            for spec in specs:
                if spec.kind == CARDINALITY:
                    totals[spec] += group.count
                elif spec.kind == TOTAL_LENGTH:
                    totals[spec] += group.sum_len
                elif spec.kind == DOC_FREQUENCY:
                    totals[spec] += group.df.get(spec.term, 0)
                elif spec.kind == TERM_COUNT:
                    totals[spec] += group.tc.get(spec.term, 0)
        if counter is not None:
            counter.entries_scanned += self.size
            counter.model_cost += self.size
        return totals

    def __repr__(self) -> str:
        return (
            f"TemporalView(|K|={len(self.keyword_set)}, size={self.size}, "
            f"attr={self.attribute_name!r}, width={self.bucket_width})"
        )


def materialize_temporal_view(
    table: WideSparseTable,
    attributes: NumericAttributeIndex,
    keyword_set: Iterable[str],
    df_terms: Iterable[str] = (),
    tc_terms: Iterable[str] = (),
    bucket_width: int = 1,
) -> TemporalView:
    """Build a temporal view: one table scan + one posting scan per term."""
    keyword_set = frozenset(keyword_set)
    df_terms = frozenset(df_terms)
    tc_terms = frozenset(tc_terms)
    groups: Dict[GroupKey, GroupTuple] = {}

    def bucket_of(doc_id: int) -> Optional[int]:
        value = attributes.value(doc_id)
        if value is None:
            return None
        return (value // bucket_width) * bucket_width

    keys: Dict[int, GroupKey] = {}
    for row in table:
        key = (row.predicates & keyword_set, bucket_of(row.doc_id))
        keys[row.doc_id] = key
        group = groups.get(key)
        if group is None:
            group = groups[key] = GroupTuple()
        group.count += 1
        group.sum_len += row.length

    index: InvertedIndex = table.index
    for term in df_terms | tc_terms:
        for doc_id, tf in index.postings(term):
            group = groups[keys[doc_id]]
            if term in df_terms:
                group.df[term] = group.df.get(term, 0) + 1
            if term in tc_terms:
                group.tc[term] = group.tc.get(term, 0) + tf

    return TemporalView(
        keyword_set,
        attributes.name,
        groups,
        df_terms,
        tc_terms,
        bucket_width=bucket_width,
    )
