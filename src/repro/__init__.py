"""repro — Context-sensitive Ranking for Document Retrieval (SIGMOD 2011).

A full reproduction of Chen & Papakonstantinou's context-sensitive
ranking system: a text-search substrate with skip-pointer posting lists,
the ``Q_k | P`` query model with per-context ranking statistics,
OLAP-style materialized views for query-time statistics, and the
mining-, decomposition-, and hybrid-based view-selection algorithms —
plus the synthetic PubMed/MeSH/TREC data stack the evaluation runs on.

Quickstart::

    from repro import CorpusConfig, generate_corpus, ContextSearchEngine, select_views

    corpus = generate_corpus(CorpusConfig(num_docs=5000, seed=7))
    index = corpus.build_index()
    catalog, report = select_views(index, t_c=len(corpus) // 100, t_v=256)
    engine = ContextSearchEngine(index, catalog=catalog)
    results = engine.search("pancreas leukemia | Diseases")
    for hit in results.hits[:10]:
        print(hit.external_id, hit.score)
"""

# Defined before the subpackage imports: repro.service.server imports it
# back from the partially initialised package.
__version__ = "1.0.0"

from .errors import (
    BudgetExceededError,
    DataGenerationError,
    EmptyContextError,
    MiningError,
    QueryError,
    ReproError,
    SelectionError,
    ViewError,
    ViewNotUsableError,
)
from .errors import IndexError_ as IndexingError
from .index import (
    Analyzer,
    BooleanSearcher,
    CostCounter,
    Document,
    InvertedIndex,
    KeywordAnalyzer,
    PostingList,
    build_index,
)
from .core import (
    BM25,
    ContextQuery,
    ContextSearchEngine,
    ContextSpecification,
    DirichletLanguageModel,
    KeywordQuery,
    PivotedNormalizationTFIDF,
    RankingFunction,
    SearchHit,
    SearchResults,
    StraightforwardPlan,
    parse_query,
)
from .views import (
    MaterializedView,
    ViewCatalog,
    ViewSizeEstimator,
    WideSparseTable,
    materialize_view,
)
from .selection import (
    KeywordAssociationGraph,
    TransactionDatabase,
    apriori,
    eclat,
    fpgrowth,
    greedy_view_selection,
    hybrid_selection,
    mining_based_selection,
    select_views,
    verify_selection,
)
from .data import (
    AutomaticTermMapper,
    CorpusConfig,
    MeshOntology,
    QualityBenchmark,
    SyntheticCorpus,
    generate_benchmark,
    generate_corpus,
    generate_performance_workload,
)
from .eval import (
    QualityComparison,
    precision_at_k,
    reciprocal_rank,
    run_quality_comparison,
)
from .views import maintain_catalog, maintain_views, needs_reselection
from .selection import (
    evaluate_coverage,
    workload_driven_selection,
    workload_from_queries,
)
from .core import CachingSearchEngine, MaxScoreScorer, exhaustive_disjunctive
from .core import BatchExecutor, BatchReport
from .index import (
    HashPartitioner,
    RangePartitioner,
    ShardedInvertedIndex,
    make_partitioner,
)
from .core import ShardedEngine, fork_available
from .views import CatalogHandle, materialize_sharded_catalogs, replicate_catalog
from .selection import IncrementalReselector, ReselectionReport
from .service import (
    AdaptiveConfig,
    AdaptiveSelectionController,
    WorkloadRecorder,
)
from .storage import (
    load_any_index,
    load_catalog,
    load_catalog_info,
    load_documents,
    load_index,
    load_sharded_index,
    save_catalog,
    save_documents,
    save_index,
    save_sharded_index,
)
from .temporal import (
    NumericAttributeIndex,
    TemporalContextQuery,
    TemporalSearchEngine,
    materialize_temporal_view,
)

__all__ = [
    # errors
    "ReproError",
    "IndexingError",
    "QueryError",
    "EmptyContextError",
    "ViewError",
    "ViewNotUsableError",
    "SelectionError",
    "MiningError",
    "BudgetExceededError",
    "DataGenerationError",
    # index
    "Analyzer",
    "KeywordAnalyzer",
    "Document",
    "InvertedIndex",
    "build_index",
    "BooleanSearcher",
    "PostingList",
    "CostCounter",
    # core
    "ContextQuery",
    "ContextSpecification",
    "KeywordQuery",
    "parse_query",
    "RankingFunction",
    "PivotedNormalizationTFIDF",
    "BM25",
    "DirichletLanguageModel",
    "StraightforwardPlan",
    "ContextSearchEngine",
    "SearchHit",
    "SearchResults",
    # views
    "WideSparseTable",
    "MaterializedView",
    "materialize_view",
    "ViewCatalog",
    "ViewSizeEstimator",
    # selection
    "TransactionDatabase",
    "apriori",
    "fpgrowth",
    "eclat",
    "greedy_view_selection",
    "KeywordAssociationGraph",
    "mining_based_selection",
    "hybrid_selection",
    "select_views",
    "verify_selection",
    # data
    "CorpusConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "MeshOntology",
    "AutomaticTermMapper",
    "QualityBenchmark",
    "generate_benchmark",
    "generate_performance_workload",
    # eval
    "precision_at_k",
    "reciprocal_rank",
    "QualityComparison",
    "run_quality_comparison",
    # maintenance
    "maintain_catalog",
    "maintain_views",
    "needs_reselection",
    # workload-driven baseline
    "workload_driven_selection",
    "workload_from_queries",
    "evaluate_coverage",
    # top-k & caching
    "CachingSearchEngine",
    "MaxScoreScorer",
    "exhaustive_disjunctive",
    # batched execution
    "BatchExecutor",
    "BatchReport",
    # sharding
    "ShardedInvertedIndex",
    "ShardedEngine",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "fork_available",
    "materialize_sharded_catalogs",
    "replicate_catalog",
    # adaptive selection
    "CatalogHandle",
    "WorkloadRecorder",
    "IncrementalReselector",
    "ReselectionReport",
    "AdaptiveConfig",
    "AdaptiveSelectionController",
    # persistence
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_sharded_index",
    "load_any_index",
    "save_catalog",
    "load_catalog",
    "load_catalog_info",
    "save_documents",
    "load_documents",
    # temporal extension
    "NumericAttributeIndex",
    "TemporalSearchEngine",
    "TemporalContextQuery",
    "materialize_temporal_view",
    "__version__",
]
