"""Persistence: save and load indexes and view catalogs.

A production deployment cannot re-ingest 18 M citations or re-run a
40-hour view selection on every restart (Section 6.2's selection cost is
the whole motivation for persisting its output).  This module serialises
both artefacts to versioned JSON (gzip-compressed when the path ends in
``.gz``):

* **indexes** persist their configuration and the *analysed* documents;
  posting lists are rebuilt deterministically from the stored tokens on
  load, which keeps the format independent of posting-list internals;
* **catalogs** persist each view's keyword set, parameter-column terms,
  and non-empty group tuples — loading is O(total tuples), no corpus
  access required.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, FrozenSet, List, Union

from .errors import ReproError
from .index.documents import Document
from .index.inverted_index import InvertedIndex
from .views.catalog import ViewCatalog
from .views.view import GroupTuple, MaterializedView

FORMAT_VERSION = 1

PathLike = Union[str, Path]


class StorageError(ReproError):
    """Raised on malformed or incompatible persisted artefacts."""


def _open_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _check_header(payload: dict, expected_kind: str) -> None:
    kind = payload.get("kind")
    version = payload.get("version")
    if kind != expected_kind:
        raise StorageError(
            f"expected a persisted {expected_kind!r}, found {kind!r}"
        )
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )


# -- raw documents -------------------------------------------------------------


def save_documents(documents, path: PathLike) -> None:
    """Persist raw (un-analysed) documents, e.g. a generated corpus."""
    path = Path(path)
    payload = {
        "kind": "documents",
        "version": FORMAT_VERSION,
        "documents": [
            {"doc_id": doc.doc_id, "fields": dict(doc.fields)}
            for doc in documents
        ],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_documents(path: PathLike) -> List[Document]:
    """Load documents saved by :func:`save_documents`."""
    path = Path(path)
    with _open_read(path) as handle:
        payload = json.load(handle)
    _check_header(payload, "documents")
    return [
        Document(entry["doc_id"], entry["fields"])
        for entry in payload["documents"]
    ]


# -- indexes -----------------------------------------------------------------


def save_index(index: InvertedIndex, path: PathLike) -> None:
    """Persist a committed index (configuration + analysed documents)."""
    if not index.committed:
        raise StorageError("only committed indexes can be saved")
    path = Path(path)
    payload = {
        "kind": "index",
        "version": FORMAT_VERSION,
        "searchable_fields": list(index.searchable_fields),
        "predicate_field": index.predicate_field,
        "segment_size": index.segment_size,
        "documents": [
            {
                "external_id": doc.external_id,
                "field_tokens": {
                    name: tokens for name, tokens in doc.field_tokens.items()
                },
            }
            for doc in index.store
        ],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_index(path: PathLike) -> InvertedIndex:
    """Load an index saved by :func:`save_index`.

    Posting lists and collection statistics are rebuilt from the stored
    token streams, bypassing text analysis (the tokens were analysed at
    save time), so the loaded index is bit-identical in behaviour to the
    original.
    """
    path = Path(path)
    with _open_read(path) as handle:
        payload = json.load(handle)
    _check_header(payload, "index")

    index = InvertedIndex(
        searchable_fields=tuple(payload["searchable_fields"]),
        predicate_field=payload["predicate_field"],
        segment_size=payload["segment_size"],
    )
    # Re-ingest pre-analysed tokens directly: mirror InvertedIndex.add
    # without re-running the analyzers.
    for entry in payload["documents"]:
        field_tokens: Dict[str, List[str]] = {
            name: list(tokens)
            for name, tokens in entry["field_tokens"].items()
        }
        document = Document(entry["external_id"], fields={})
        stored = index.store.add(
            document, field_tokens, index.searchable_fields
        )
        index._total_length += stored.length
        tf_counts: Dict[str, int] = {}
        for name in index.searchable_fields:
            for token in field_tokens.get(name, ()):
                tf_counts[token] = tf_counts.get(token, 0) + 1
        for term, tf in tf_counts.items():
            index._content_acc.setdefault(term, []).append(
                (stored.internal_id, tf)
            )
        for term in set(field_tokens.get(index.predicate_field, ())):
            index._predicate_acc.setdefault(term, []).append(
                (stored.internal_id, 1)
            )
    return index.commit()


# -- view catalogs -------------------------------------------------------------


def _encode_view(view: MaterializedView) -> dict:
    return {
        "keywords": sorted(view.keyword_set),
        "df_terms": sorted(view.df_terms),
        "tc_terms": sorted(view.tc_terms),
        "groups": [
            {
                "pattern": sorted(pattern),
                "count": group.count,
                "sum_len": group.sum_len,
                "df": group.df,
                "tc": group.tc,
            }
            for pattern, group in view.groups.items()
        ],
    }


def _decode_view(entry: dict) -> MaterializedView:
    groups: Dict[FrozenSet[str], GroupTuple] = {}
    for item in entry["groups"]:
        groups[frozenset(item["pattern"])] = GroupTuple(
            count=item["count"],
            sum_len=item["sum_len"],
            df=dict(item["df"]),
            tc=dict(item["tc"]),
        )
    return MaterializedView(
        keyword_set=entry["keywords"],
        groups=groups,
        df_terms=entry["df_terms"],
        tc_terms=entry["tc_terms"],
    )


def save_catalog(catalog: ViewCatalog, path: PathLike) -> None:
    """Persist every materialized view in the catalog."""
    path = Path(path)
    payload = {
        "kind": "catalog",
        "version": FORMAT_VERSION,
        "views": [_encode_view(view) for view in catalog],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_catalog(path: PathLike) -> ViewCatalog:
    """Load a catalog saved by :func:`save_catalog`."""
    path = Path(path)
    with _open_read(path) as handle:
        payload = json.load(handle)
    _check_header(payload, "catalog")
    return ViewCatalog(_decode_view(entry) for entry in payload["views"])
