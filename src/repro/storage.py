"""Persistence: save and load indexes and view catalogs.

A production deployment cannot re-ingest 18 M citations or re-run a
40-hour view selection on every restart (Section 6.2's selection cost is
the whole motivation for persisting its output).  This module serialises
both artefacts to versioned JSON (gzip-compressed when the path ends in
``.gz``):

* **indexes** default to the *binary block format* (version 4, see
  :mod:`repro.index.blockstore`): delta-encoded bit-packed posting
  blocks behind an mmap, a fixed-width term dictionary, and per-block
  skip/max-tf metadata, so a cold open reads only header + dictionaries
  and queries decode just the blocks they touch.  ``format=3`` still
  writes the JSON layout (precompiled posting columns as base64-packed
  little-endian int64), and version-3/2/1 payloads all load through
  their legacy decoders;
* **catalogs** persist each view's keyword set, parameter-column terms,
  and non-empty group tuples — loading is O(total tuples), no corpus
  access required.

Segmented index *directories* (manifest + WAL + per-segment files) are
the lifecycle layer's concern — see :mod:`repro.lifecycle.storage` —
but :func:`load_any_index` accepts them so one ``--index`` flag serves
all three artefact kinds.
"""

from __future__ import annotations

import base64
import gzip
import json
import sys
from array import array
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Union

from .errors import StorageError
from .index import blockstore
from .index.documents import Document
from .index.inverted_index import InvertedIndex
from .views.catalog import ViewCatalog
from .views.view import GroupTuple, MaterializedView

FORMAT_VERSION = 4
SUPPORTED_VERSIONS = (1, 2, 3, 4)
#: The JSON layouts froze at version 3; only the index artefact gained
#: the binary v4 encoding.  Documents and catalogs keep stamping 3.
_JSON_VERSION = 3

PathLike = Union[str, Path]

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_VERSIONS",
    "StorageError",
    "encode_column",
    "decode_column",
    "encode_tokens",
    "decode_tokens",
    "LazyTokenFields",
    "save_documents",
    "load_documents",
    "save_index",
    "load_index",
    "save_sharded_index",
    "load_shard",
    "load_sharded_index",
    "load_any_index",
    "save_catalog",
    "load_catalog",
    "load_catalog_info",
]


def encode_column(values: Iterable[int]) -> str:
    """Pack an int64 column as base64 of little-endian bytes.

    One JSON string token parses orders of magnitude faster than a list
    of integers, and decoding is ``array.frombytes`` — the reason the
    v2 cold-load path is array adoption rather than number parsing.
    """
    column = values if isinstance(values, array) else array("q", values)
    if sys.byteorder != "little":
        column = array("q", column)
        column.byteswap()
    return base64.b64encode(column.tobytes()).decode("ascii")


def decode_column(text: str) -> array:
    """Inverse of :func:`encode_column`."""
    column = array("q")
    column.frombytes(base64.b64decode(text))
    if sys.byteorder != "little":
        column.byteswap()
    return column


def encode_tokens(tokens: List[str]) -> Union[str, List[str]]:
    """Pack a token list as one space-joined string when that round-trips.

    At collection scale the dominant load cost is materialising millions
    of small token strings out of JSON; a single joined string parses as
    one token and ``str.split`` rebuilds the list in C.  Tokens that are
    empty or contain a space cannot round-trip through the join, so such
    lists fall back to the plain JSON-array form — the decoder accepts
    both shapes.
    """
    if all(token and " " not in token for token in tokens):
        return " ".join(tokens)
    return list(tokens)


def decode_tokens(value: Union[str, List[str]]) -> List[str]:
    """Inverse of :func:`encode_tokens`."""
    if isinstance(value, str):
        return value.split(" ") if value else []
    return list(value)


class LazyTokenFields(dict):
    """A ``field_tokens`` mapping that unpacks joined strings on demand.

    Query execution runs entirely off the precompiled posting columns;
    the stored token lists are only read by view maintenance, re-saves,
    and per-document tf probes.  Keeping each field packed until first
    access makes cold load O(postings) instead of O(total tokens).
    Materialised fields replace the packed form in place, so the split
    happens at most once per field.
    """

    __slots__ = ()

    def _materialise(self, key, value):
        if isinstance(value, str):
            value = value.split(" ") if value else []
            dict.__setitem__(self, key, value)
        return value

    def __getitem__(self, key):
        return self._materialise(key, dict.__getitem__(self, key))

    def get(self, key, default=None):
        if key not in self:
            return default
        return self[key]

    def items(self):
        return [(key, self[key]) for key in dict.keys(self)]

    def values(self):
        return [self[key] for key in dict.keys(self)]


def _open_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _read_payload(path: Path) -> dict:
    """Read one persisted JSON artefact; corruption is a :class:`StorageError`.

    A truncated gzip stream, a non-gzip file with a ``.gz`` name, or a
    half-written JSON body all surface as the same readable error rather
    than leaking codec internals to the caller.  Binary v4 artefacts are
    detected up front (their errors carry the exact byte offset, the way
    lifecycle WAL errors carry a line number) instead of failing as
    JSON noise at character 0.
    """
    try:
        with open(path, "rb") as handle:
            head = handle.read(len(blockstore.MAGIC))
    except IsADirectoryError:
        raise StorageError(
            f"{path} is a directory, not a persisted artefact"
        ) from None
    if head == blockstore.MAGIC:
        raise StorageError(
            f"corrupt artefact {path} at byte 0: binary block artefact "
            f"(format v4) where a JSON artefact was expected"
        )
    if head.startswith(blockstore.MAGIC[:4]) and head != blockstore.MAGIC:
        raise StorageError(
            f"corrupt artefact {path} at byte {_magic_mismatch_offset(head)}: "
            f"damaged v4 magic {head!r}"
        )
    try:
        with _open_read(path) as handle:
            return json.load(handle)
    except (ValueError, EOFError, gzip.BadGzipFile, UnicodeDecodeError) as exc:
        raise StorageError(f"corrupt artefact {path}: {exc}") from None


def _magic_mismatch_offset(head: bytes) -> int:
    """First byte where a damaged magic diverges from the v4 magic."""
    for i, (got, want) in enumerate(zip(head, blockstore.MAGIC)):
        if got != want:
            return i
    return len(head)


def _check_header(payload: dict, expected_kind: str) -> int:
    """Validate kind and version; returns the payload's format version."""
    kind = payload.get("kind")
    version = payload.get("version")
    if kind != expected_kind:
        raise StorageError(
            f"expected a persisted {expected_kind!r}, found {kind!r}"
        )
    if version not in SUPPORTED_VERSIONS:
        raise StorageError(
            f"unsupported format version {version!r} "
            f"(this build reads versions {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return version


# -- raw documents -------------------------------------------------------------


def save_documents(documents, path: PathLike) -> None:
    """Persist raw (un-analysed) documents, e.g. a generated corpus."""
    path = Path(path)
    payload = {
        "kind": "documents",
        "version": _JSON_VERSION,
        "documents": [
            {"doc_id": doc.doc_id, "fields": dict(doc.fields)}
            for doc in documents
        ],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_documents(path: PathLike) -> List[Document]:
    """Load documents saved by :func:`save_documents`."""
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "documents")
    return [
        Document(entry["doc_id"], entry["fields"])
        for entry in payload["documents"]
    ]


# -- indexes -----------------------------------------------------------------


def _encode_index(index: InvertedIndex) -> dict:
    if not index.committed:
        raise StorageError("only committed indexes can be saved")
    return {
        "kind": "index",
        "version": _JSON_VERSION,
        "searchable_fields": list(index.searchable_fields),
        "predicate_field": index.predicate_field,
        "segment_size": index.segment_size,
        "documents": [
            {
                "external_id": doc.external_id,
                "field_tokens": {
                    name: encode_tokens(tokens)
                    for name, tokens in doc.field_tokens.items()
                },
                "length": doc.length,
                "unique_terms": doc.unique_terms,
            }
            for doc in index.store
        ],
        "content": {
            term: [
                encode_column(plist.doc_ids),
                encode_column(plist.tfs),
                plist.max_tf,
                encode_column(plist.block_max_tfs),
            ]
            for term, plist in index.content_items()
        },
        "predicates": {
            term: encode_column(plist.doc_ids)
            for term, plist in index.predicate_items()
        },
    }


def _decode_index_v1(payload: dict) -> InvertedIndex:
    """Legacy decode: re-accumulate postings from the stored tokens."""
    index = InvertedIndex(
        searchable_fields=tuple(payload["searchable_fields"]),
        predicate_field=payload["predicate_field"],
        segment_size=payload["segment_size"],
    )
    for entry in payload["documents"]:
        field_tokens: Dict[str, List[str]] = {
            name: list(tokens)
            for name, tokens in entry["field_tokens"].items()
        }
        index.add_preanalyzed(entry["external_id"], field_tokens)
    return index.commit()


def _decode_index(payload: dict, version: int = FORMAT_VERSION) -> InvertedIndex:
    if version == 1:
        return _decode_index_v1(payload)
    from .index.documents import StoredDocument
    from .index.postings import PostingList

    segment_size = payload["segment_size"]
    try:
        documents = [
            StoredDocument(
                internal_id=internal_id,
                external_id=entry["external_id"],
                field_tokens=LazyTokenFields(entry["field_tokens"]),
                length=entry["length"],
                unique_terms=entry["unique_terms"],
            )
            for internal_id, entry in enumerate(payload["documents"])
        ]
        content = {}
        if version >= 3:
            # v3: the per-block max-tf column is persisted next to the
            # packed docid/tf columns and adopted wholesale.
            for term, (ids, tfs, max_tf, blocks) in payload["content"].items():
                content[term] = PostingList.from_arrays(
                    term,
                    decode_column(ids),
                    decode_column(tfs),
                    segment_size=segment_size,
                    validate=False,
                    max_tf=max_tf,
                    block_max_tfs=decode_column(blocks),
                )
        else:
            # v2 legacy: no block metadata on disk — freeze recomputes
            # the per-block maxima from the tf column.
            for term, (ids, tfs, max_tf) in payload["content"].items():
                content[term] = PostingList.from_arrays(
                    term,
                    decode_column(ids),
                    decode_column(tfs),
                    segment_size=segment_size,
                    validate=False,
                    max_tf=max_tf,
                )
        predicates = {}
        for term, packed in payload["predicates"].items():
            ids = decode_column(packed)
            ones = array("q", [1]) * len(ids)
            num_segments = -(-len(ids) // segment_size)
            predicates[term] = PostingList.from_arrays(
                term,
                ids,
                ones,
                segment_size=segment_size,
                validate=False,
                max_tf=1 if ids else 0,
                block_max_tfs=array("q", [1]) * num_segments,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed index payload: {exc!r}") from None
    return InvertedIndex.from_compiled(
        documents,
        content,
        predicates,
        searchable_fields=tuple(payload["searchable_fields"]),
        predicate_field=payload["predicate_field"],
        segment_size=segment_size,
    )


def _index_config(index: InvertedIndex) -> dict:
    return {
        "searchable_fields": list(index.searchable_fields),
        "predicate_field": index.predicate_field,
        "segment_size": index.segment_size,
    }


def save_index(
    index: InvertedIndex, path: PathLike, format: int = FORMAT_VERSION
) -> None:
    """Persist a committed index (configuration + analysed documents).

    ``format=4`` (the default) writes the binary block layout —
    mmap-friendly, so it is stored raw even when ``path`` ends in
    ``.gz``.  ``format=3`` writes the legacy JSON layout (gzipped for
    ``.gz`` paths).
    """
    path = Path(path)
    if format == 4:
        if not index.committed:
            raise StorageError("only committed indexes can be saved")
        blockstore.write_block_file(
            path,
            kind="index",
            config=_index_config(index),
            segment_size=index.segment_size,
            documents=list(index.store),
            content=dict(index.content_items()),
            predicates=dict(index.predicate_items()),
        )
        return
    if format != 3:
        raise StorageError(
            f"cannot write index format {format!r} (writable formats: 3, 4)"
        )
    payload = _encode_index(index)
    with _open_write(path) as handle:
        json.dump(payload, handle)


def _index_from_block_reader(reader: "blockstore.BlockFile") -> InvertedIndex:
    if reader.kind != "index":
        raise StorageError(
            f"expected a persisted 'index', found {reader.kind!r} "
            f"in {reader.path}"
        )
    config = reader.config
    return InvertedIndex.from_restored_store(
        reader.document_store(),
        reader.posting_map("content"),
        reader.posting_map("predicates"),
        searchable_fields=tuple(config.get("searchable_fields", ())),
        predicate_field=config.get("predicate_field", "predicates"),
        segment_size=reader.segment_size,
    )


def _load_block_index(path: Path) -> InvertedIndex:
    """Open a v4 block file as a lazily-materialised flat index.

    The returned index owns the underlying mmap: ``index.close()`` (or
    using the index as a context manager) releases it deterministically.
    """
    reader = blockstore.BlockFile(path)
    try:
        index = _index_from_block_reader(reader)
    except Exception:
        reader.close()
        raise
    index.attach_resource(reader)
    return index


def load_index(path: PathLike) -> InvertedIndex:
    """Load an index saved by :func:`save_index`.

    The format is sniffed from the file itself, never the name: v4
    block files open as mmap-backed lazy indexes, version-3/2 JSON
    payloads adopt their compiled posting columns wholesale, and
    version-1 payloads fall back to the legacy rebuild from stored
    token streams.  Either way the loaded index is bit-identical in
    behaviour to the original.
    """
    path = Path(path)
    if blockstore.is_block_file(path):
        return _load_block_index(path)
    payload = _read_payload(path)
    version = _check_header(payload, "index")
    return _decode_index(payload, version)


# -- sharded indexes -----------------------------------------------------------


def _shard_file_name(manifest_name: str, shard_id: int) -> str:
    """Derive a shard file name from the manifest's: insert ``.shardK``.

    ``idx.json.gz`` → ``idx.shard0.json.gz`` (the trailing extension is
    preserved so gzip autodetection keeps working for shard files).
    """
    dot = manifest_name.find(".")
    if dot < 0:
        return f"{manifest_name}.shard{shard_id}"
    return f"{manifest_name[:dot]}.shard{shard_id}{manifest_name[dot:]}"


def save_sharded_index(
    sharded_index, path: PathLike, format: int = FORMAT_VERSION
) -> None:
    """Persist a sharded index: a manifest plus one file per shard.

    The manifest (at ``path``) stays JSON in every format and records
    the partitioner and the shard file names *relative to its own
    directory*, so the whole set of files can be moved together.  Each
    shard file is an ordinary index artefact (readable by
    :func:`load_index`, which ignores the extra global-id column)
    enriched with the shard's local→global docid map.
    """
    path = Path(path)
    if format not in (3, 4):
        raise StorageError(
            f"cannot write index format {format!r} (writable formats: 3, 4)"
        )
    shard_entries = []
    for shard in sharded_index.shards:
        shard_name = _shard_file_name(path.name, shard.shard_id)
        if format == 4:
            blockstore.write_block_file(
                path.parent / shard_name,
                kind="index",
                config=_index_config(shard.index),
                segment_size=shard.index.segment_size,
                documents=list(shard.index.store),
                content=dict(shard.index.content_items()),
                predicates=dict(shard.index.predicate_items()),
                global_ids=shard.global_ids,
            )
        else:
            payload = _encode_index(shard.index)
            payload["global_ids"] = list(shard.global_ids)
            with _open_write(path.parent / shard_name) as handle:
                json.dump(payload, handle)
        shard_entries.append(
            {"file": shard_name, "num_docs": shard.index.num_docs}
        )
    manifest = {
        "kind": "sharded_index",
        "version": format,
        "partitioner": {
            "name": sharded_index.partitioner.name,
            "num_shards": sharded_index.partitioner.num_shards,
        },
        "shards": shard_entries,
    }
    with _open_write(path) as handle:
        json.dump(manifest, handle)


def _load_shard_file(shard_path: Path):
    """Load one per-shard artefact file → ``(index, global_ids array)``.

    Raises :class:`FileNotFoundError` for a missing file and
    :class:`StorageError` for a readable-but-wrong one; callers wrap
    both into their own context-naming error.
    """
    from array import array

    if blockstore.is_block_file(shard_path):
        reader = blockstore.BlockFile(shard_path)
        try:
            global_ids = reader.global_ids()
            if global_ids is None:
                raise StorageError(
                    f"shard file {shard_path} carries no global docid map"
                )
            index = _index_from_block_reader(reader)
        except Exception:
            reader.close()
            raise
        index.attach_resource(reader)
    else:
        if not shard_path.exists():
            raise FileNotFoundError(shard_path)
        payload = _read_payload(shard_path)
        version = _check_header(payload, "index")
        packed = payload.get("global_ids")
        if packed is None:
            raise StorageError(
                f"shard file {shard_path} carries no global docid map"
            )
        global_ids = array("q", packed)
        index = _decode_index(payload, version)
    return index, array("q", global_ids)


def load_shard(path: PathLike, shard_id: int = 0):
    """Load one per-shard artefact file as a standalone :class:`IndexShard`.

    This is what a cluster shard worker (``repro worker``) serves: one
    shard file written by :func:`save_sharded_index` — or shipped from a
    peer replica — carrying both the sub-index and its local→global
    docid map.  ``shard_id`` is assigned by the caller (the cluster
    config decides which logical shard this worker holds).
    """
    from .index.sharded import IndexShard

    path = Path(path)
    try:
        index, global_ids = _load_shard_file(path)
    except FileNotFoundError:
        raise StorageError(f"shard file {path} is missing") from None
    return IndexShard(shard_id, index, global_ids)


def load_sharded_index(path: PathLike):
    """Load a sharded index saved by :func:`save_sharded_index`.

    A missing, truncated, or version-incompatible per-shard file
    surfaces as a single readable :class:`StorageError` naming the
    offending file — the manifest alone never names enough state to
    serve from, so a partial load is always a hard error.
    """
    from .index.sharded import IndexShard, ShardedInvertedIndex, make_partitioner

    path = Path(path)
    manifest = _read_payload(path)
    _check_header(manifest, "sharded_index")
    partitioner = make_partitioner(
        manifest["partitioner"]["name"], manifest["partitioner"]["num_shards"]
    )
    shards = []
    for shard_id, entry in enumerate(manifest["shards"]):
        shard_path = path.parent / entry["file"]
        try:
            index, global_ids = _load_shard_file(shard_path)
        except FileNotFoundError:
            raise StorageError(
                f"sharded index {path}: shard file {shard_path} is missing"
            ) from None
        except StorageError as exc:
            raise StorageError(
                f"sharded index {path}: shard file {shard_path} is "
                f"unreadable ({exc})"
            ) from None
        shards.append(IndexShard(shard_id, index, global_ids))
    return ShardedInvertedIndex(shards, partitioner)


def load_any_index(path: PathLike):
    """Load whichever index kind ``path`` holds (flat, sharded, segmented).

    The CLI's commands use this so one ``--index`` flag accepts all
    three artefacts.  A *directory* is a segmented index (manifest +
    WAL + per-segment files): the load performs crash recovery — the
    committed manifest plus a replay of the live WAL generation.
    """
    path = Path(path)
    if path.is_dir():
        from .lifecycle import SegmentedIndex

        return SegmentedIndex.open(path)
    if blockstore.is_block_file(path):
        return _load_block_index(path)
    payload = _read_payload(path)
    if payload.get("kind") == "sharded_index":
        return load_sharded_index(path)
    version = _check_header(payload, "index")
    return _decode_index(payload, version)


# -- view catalogs -------------------------------------------------------------


def _encode_view(view: MaterializedView) -> dict:
    return {
        "keywords": sorted(view.keyword_set),
        "df_terms": sorted(view.df_terms),
        "tc_terms": sorted(view.tc_terms),
        "groups": [
            {
                "pattern": sorted(pattern),
                "count": group.count,
                "sum_len": group.sum_len,
                "df": group.df,
                "tc": group.tc,
            }
            for pattern, group in view.groups.items()
        ],
    }


def _decode_view(entry: dict) -> MaterializedView:
    groups: Dict[FrozenSet[str], GroupTuple] = {}
    for item in entry["groups"]:
        groups[frozenset(item["pattern"])] = GroupTuple(
            count=item["count"],
            sum_len=item["sum_len"],
            df=dict(item["df"]),
            tc=dict(item["tc"]),
        )
    return MaterializedView(
        keyword_set=entry["keywords"],
        groups=groups,
        df_terms=entry["df_terms"],
        tc_terms=entry["tc_terms"],
    )


def save_catalog(
    catalog: ViewCatalog,
    path: PathLike,
    generation: int = 0,
    selection: Optional[dict] = None,
) -> None:
    """Persist every materialized view in the catalog.

    ``generation`` and ``selection`` carry the adaptive-selection
    provenance (hot-swap generation plus the reselection pass summary)
    so ``repro info`` can report where a saved catalog came from; both
    default to "not adaptively selected".
    """
    path = Path(path)
    payload = {
        "kind": "catalog",
        "version": _JSON_VERSION,
        "generation": generation,
        "views": [_encode_view(view) for view in catalog],
    }
    if selection is not None:
        payload["selection"] = dict(selection)
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_catalog(path: PathLike) -> ViewCatalog:
    """Load a catalog saved by :func:`save_catalog`."""
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "catalog")
    return ViewCatalog(_decode_view(entry) for entry in payload["views"])


def load_catalog_info(path: PathLike) -> dict:
    """The provenance header of a saved catalog, without the views.

    Returns ``{"num_views", "generation", "selection"}`` — pre-PR-8
    files (no generation field) read as generation 0 with no selection
    record.
    """
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "catalog")
    return {
        "num_views": len(payload["views"]),
        "generation": payload.get("generation", 0),
        "selection": payload.get("selection"),
    }
