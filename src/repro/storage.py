"""Persistence: save and load indexes and view catalogs.

A production deployment cannot re-ingest 18 M citations or re-run a
40-hour view selection on every restart (Section 6.2's selection cost is
the whole motivation for persisting its output).  This module serialises
both artefacts to versioned JSON (gzip-compressed when the path ends in
``.gz``):

* **indexes** persist their configuration and the *analysed* documents;
  posting lists are rebuilt deterministically from the stored tokens on
  load, which keeps the format independent of posting-list internals;
* **catalogs** persist each view's keyword set, parameter-column terms,
  and non-empty group tuples — loading is O(total tuples), no corpus
  access required.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, FrozenSet, List, Union

from .errors import ReproError
from .index.documents import Document
from .index.inverted_index import InvertedIndex
from .views.catalog import ViewCatalog
from .views.view import GroupTuple, MaterializedView

FORMAT_VERSION = 1

PathLike = Union[str, Path]


class StorageError(ReproError):
    """Raised on malformed or incompatible persisted artefacts."""


def _open_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _read_payload(path: Path) -> dict:
    """Read one persisted JSON artefact; corruption is a :class:`StorageError`.

    A truncated gzip stream, a non-gzip file with a ``.gz`` name, or a
    half-written JSON body all surface as the same readable error rather
    than leaking codec internals to the caller.
    """
    try:
        with _open_read(path) as handle:
            return json.load(handle)
    except (ValueError, EOFError, gzip.BadGzipFile, UnicodeDecodeError) as exc:
        raise StorageError(f"corrupt artefact {path}: {exc}") from None


def _check_header(payload: dict, expected_kind: str) -> None:
    kind = payload.get("kind")
    version = payload.get("version")
    if kind != expected_kind:
        raise StorageError(
            f"expected a persisted {expected_kind!r}, found {kind!r}"
        )
    if version != FORMAT_VERSION:
        raise StorageError(
            f"unsupported format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )


# -- raw documents -------------------------------------------------------------


def save_documents(documents, path: PathLike) -> None:
    """Persist raw (un-analysed) documents, e.g. a generated corpus."""
    path = Path(path)
    payload = {
        "kind": "documents",
        "version": FORMAT_VERSION,
        "documents": [
            {"doc_id": doc.doc_id, "fields": dict(doc.fields)}
            for doc in documents
        ],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_documents(path: PathLike) -> List[Document]:
    """Load documents saved by :func:`save_documents`."""
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "documents")
    return [
        Document(entry["doc_id"], entry["fields"])
        for entry in payload["documents"]
    ]


# -- indexes -----------------------------------------------------------------


def _encode_index(index: InvertedIndex) -> dict:
    if not index.committed:
        raise StorageError("only committed indexes can be saved")
    return {
        "kind": "index",
        "version": FORMAT_VERSION,
        "searchable_fields": list(index.searchable_fields),
        "predicate_field": index.predicate_field,
        "segment_size": index.segment_size,
        "documents": [
            {
                "external_id": doc.external_id,
                "field_tokens": {
                    name: tokens for name, tokens in doc.field_tokens.items()
                },
            }
            for doc in index.store
        ],
    }


def _decode_index(payload: dict) -> InvertedIndex:
    index = InvertedIndex(
        searchable_fields=tuple(payload["searchable_fields"]),
        predicate_field=payload["predicate_field"],
        segment_size=payload["segment_size"],
    )
    for entry in payload["documents"]:
        field_tokens: Dict[str, List[str]] = {
            name: list(tokens)
            for name, tokens in entry["field_tokens"].items()
        }
        index.add_preanalyzed(entry["external_id"], field_tokens)
    return index.commit()


def save_index(index: InvertedIndex, path: PathLike) -> None:
    """Persist a committed index (configuration + analysed documents)."""
    path = Path(path)
    payload = _encode_index(index)
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_index(path: PathLike) -> InvertedIndex:
    """Load an index saved by :func:`save_index`.

    Posting lists and collection statistics are rebuilt from the stored
    token streams, bypassing text analysis (the tokens were analysed at
    save time), so the loaded index is bit-identical in behaviour to the
    original.
    """
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "index")
    return _decode_index(payload)


# -- sharded indexes -----------------------------------------------------------


def _shard_file_name(manifest_name: str, shard_id: int) -> str:
    """Derive a shard file name from the manifest's: insert ``.shardK``.

    ``idx.json.gz`` → ``idx.shard0.json.gz`` (the trailing extension is
    preserved so gzip autodetection keeps working for shard files).
    """
    dot = manifest_name.find(".")
    if dot < 0:
        return f"{manifest_name}.shard{shard_id}"
    return f"{manifest_name[:dot]}.shard{shard_id}{manifest_name[dot:]}"


def save_sharded_index(sharded_index, path: PathLike) -> None:
    """Persist a sharded index: a manifest plus one file per shard.

    The manifest (at ``path``) records the partitioner and the shard file
    names *relative to its own directory*, so the whole set of files can
    be moved together.  Each shard file is an ordinary index payload
    (readable by :func:`load_index`, which ignores the extra key) enriched
    with the shard's local→global docid map.
    """
    path = Path(path)
    shard_entries = []
    for shard in sharded_index.shards:
        shard_name = _shard_file_name(path.name, shard.shard_id)
        payload = _encode_index(shard.index)
        payload["global_ids"] = list(shard.global_ids)
        with _open_write(path.parent / shard_name) as handle:
            json.dump(payload, handle)
        shard_entries.append(
            {"file": shard_name, "num_docs": shard.index.num_docs}
        )
    manifest = {
        "kind": "sharded_index",
        "version": FORMAT_VERSION,
        "partitioner": {
            "name": sharded_index.partitioner.name,
            "num_shards": sharded_index.partitioner.num_shards,
        },
        "shards": shard_entries,
    }
    with _open_write(path) as handle:
        json.dump(manifest, handle)


def load_sharded_index(path: PathLike):
    """Load a sharded index saved by :func:`save_sharded_index`."""
    from array import array

    from .index.sharded import IndexShard, ShardedInvertedIndex, make_partitioner

    path = Path(path)
    manifest = _read_payload(path)
    _check_header(manifest, "sharded_index")
    partitioner = make_partitioner(
        manifest["partitioner"]["name"], manifest["partitioner"]["num_shards"]
    )
    shards = []
    for shard_id, entry in enumerate(manifest["shards"]):
        shard_path = path.parent / entry["file"]
        payload = _read_payload(shard_path)
        _check_header(payload, "index")
        global_ids = payload.get("global_ids")
        if global_ids is None:
            raise StorageError(
                f"shard file {shard_path} carries no global docid map"
            )
        index = _decode_index(payload)
        shards.append(IndexShard(shard_id, index, array("q", global_ids)))
    return ShardedInvertedIndex(shards, partitioner)


def load_any_index(path: PathLike):
    """Load whichever index kind ``path`` holds (flat or sharded).

    The CLI's search/batch commands use this so one ``--index`` flag
    accepts both artefacts.
    """
    path = Path(path)
    payload = _read_payload(path)
    if payload.get("kind") == "sharded_index":
        return load_sharded_index(path)
    _check_header(payload, "index")
    return _decode_index(payload)


# -- view catalogs -------------------------------------------------------------


def _encode_view(view: MaterializedView) -> dict:
    return {
        "keywords": sorted(view.keyword_set),
        "df_terms": sorted(view.df_terms),
        "tc_terms": sorted(view.tc_terms),
        "groups": [
            {
                "pattern": sorted(pattern),
                "count": group.count,
                "sum_len": group.sum_len,
                "df": group.df,
                "tc": group.tc,
            }
            for pattern, group in view.groups.items()
        ],
    }


def _decode_view(entry: dict) -> MaterializedView:
    groups: Dict[FrozenSet[str], GroupTuple] = {}
    for item in entry["groups"]:
        groups[frozenset(item["pattern"])] = GroupTuple(
            count=item["count"],
            sum_len=item["sum_len"],
            df=dict(item["df"]),
            tc=dict(item["tc"]),
        )
    return MaterializedView(
        keyword_set=entry["keywords"],
        groups=groups,
        df_terms=entry["df_terms"],
        tc_terms=entry["tc_terms"],
    )


def save_catalog(catalog: ViewCatalog, path: PathLike) -> None:
    """Persist every materialized view in the catalog."""
    path = Path(path)
    payload = {
        "kind": "catalog",
        "version": FORMAT_VERSION,
        "views": [_encode_view(view) for view in catalog],
    }
    with _open_write(path) as handle:
        json.dump(payload, handle)


def load_catalog(path: PathLike) -> ViewCatalog:
    """Load a catalog saved by :func:`save_catalog`."""
    path = Path(path)
    payload = _read_payload(path)
    _check_header(payload, "catalog")
    return ViewCatalog(_decode_view(entry) for entry in payload["views"])
