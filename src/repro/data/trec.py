"""TREC-Genomics-style ranking-quality benchmark (Section 6.1 substrate).

The paper evaluates on TREC Genomics 2007: 34 expert-written biological
questions with manually judged relevant documents, of which 30 qualify
(result set ≥ 20, gold relevant ≥ 5).  That data is not redistributable,
so this module generates an equivalent benchmark over the synthetic
corpus, encoding the *mechanism* the paper's result rests on — the idf
inversion of Section 1.1 ("leukemia is rare over the Web … extremely
common among cancer-related articles"):

Each topic has a hidden focus concept ``h`` (a leaf) and searches inside
an ancestor-of-``h`` context (the broad domain a specialist works in).
The two query keywords are chosen by *measured* statistics so that their
discriminativeness flips between scopes:

* the **context word** ``aw`` is rarer than the focus word globally
  (conventional ranking overweights it) but more common inside the
  context (context-sensitive ranking correctly downweights it);
* the **focus word** ``hw`` is the true relevance signal: documents
  about ``h`` use it heavily.

Gold-relevant documents are those annotated with ``h`` (they are "about"
the focus), perturbed with judgement noise so conventional ranking wins
occasionally, as in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .._rng import SeedLike, derive_rng, make_rng
from ..core.query import ContextQuery, ContextSpecification, KeywordQuery
from ..errors import DataGenerationError
from ..index.inverted_index import InvertedIndex
from ..index.searcher import BooleanSearcher
from .corpus import SyntheticCorpus


@dataclass(frozen=True)
class Topic:
    """One benchmark topic: a question, its query, and gold judgements."""

    topic_id: int
    question: str
    query: ContextQuery
    relevant: FrozenSet[str]  # external document ids
    focus_concept: str

    @property
    def keywords(self) -> Tuple[str, ...]:
        return self.query.keywords

    @property
    def context(self) -> ContextSpecification:
        return self.query.context


@dataclass
class QualityBenchmark:
    """The topic set plus the thresholds used to qualify topics."""

    topics: List[Topic]
    min_result_size: int
    min_relevant: int

    def __len__(self) -> int:
        return len(self.topics)


def generate_benchmark(
    corpus: SyntheticCorpus,
    index: InvertedIndex,
    num_topics: int = 30,
    min_result_size: int = 20,
    min_relevant: int = 5,
    noise_drop: float = 0.18,
    noise_add: float = 0.08,
    max_attempts: int = 4000,
    seed: SeedLike = None,
) -> QualityBenchmark:
    """Generate ``num_topics`` qualifying topics (deterministic per seed).

    Qualification mirrors Section 6.1: the unranked result must have at
    least ``min_result_size`` documents and at least ``min_relevant`` of
    them must be gold-relevant.  ``noise_drop`` removes each relevant
    document from the gold set with that probability; ``noise_add``
    promotes random result documents — together they model imperfect
    human judgements (and produce the topics conventional ranking wins).
    """
    rng = make_rng(seed)
    rng_topic = derive_rng(rng, "topics")
    rng_noise = derive_rng(rng, "noise")
    searcher = BooleanSearcher(index)
    ontology = corpus.ontology
    num_docs = index.num_docs

    # Relevance is "aboutness": a document is relevant to a focus concept
    # when that concept is its primary annotation (the generator
    # concentrates the document's vocabulary there).
    docs_by_focus: Dict[str, Set[int]] = {}
    for doc_id in range(len(corpus.annotations)):
        docs_by_focus.setdefault(corpus.primary_concept(doc_id), set()).add(doc_id)
    candidate_leaves = [
        leaf for leaf, docs in docs_by_focus.items() if len(docs) >= min_relevant
    ]
    if not candidate_leaves:
        raise DataGenerationError(
            "corpus too small: no focus concept has enough documents"
        )

    def analyzed(word: str) -> Optional[str]:
        try:
            return index.analyzer.analyze_query_term(word)
        except ValueError:
            return None

    seen_queries: Set[Tuple[Tuple[str, ...], Tuple[str, ...]]] = set()
    topics: List[Topic] = []
    for _ in range(max_attempts):
        if len(topics) >= num_topics:
            break
        focus = rng_topic.choice(candidate_leaves)
        ancestors = ontology.ancestors(focus)
        non_root = [a for a in ancestors if ontology.term(a).parent is not None]
        context_term = rng_topic.choice(non_root or ancestors)
        context_terms = [context_term]
        if len(ancestors) > 1 and rng_topic.random() < 0.4:
            extra = rng_topic.choice([a for a in ancestors if a != context_term])
            context_terms.append(extra)

        context_ids = searcher.search_context(sorted(set(context_terms)))
        context_size = len(context_ids)
        # The context must be a proper, non-trivial sub-collection: too
        # small and statistics are unreliable (the paper's Section 6.3
        # remark), too large and it degenerates into the whole collection.
        if context_size < 3 * min_result_size or context_size > 0.7 * num_docs:
            continue
        context_set = set(context_ids)

        pair = _choose_keyword_pair(
            corpus, index, focus, context_term, context_set, rng_topic, analyzed
        )
        if pair is None:
            continue
        context_word, focus_word = pair

        query = ContextQuery(
            KeywordQuery([context_word, focus_word]),
            ContextSpecification(context_terms),
        )
        key = (query.keywords, query.predicates)
        if key in seen_queries:
            continue

        analyzed_keywords = [analyzed(w) for w in query.keywords]
        result_ids = searcher.search_conjunction(
            analyzed_keywords, query.predicates
        )
        if len(result_ids) < min_result_size:
            continue

        focus_docs = docs_by_focus.get(focus, set())
        relevant_ids = _apply_noise(
            focus_docs, result_ids, rng_noise, noise_drop, noise_add
        )
        if len(relevant_ids & set(result_ids)) < min_relevant:
            continue

        seen_queries.add(key)
        relevant_external = frozenset(
            index.store.get(doc_id).external_id for doc_id in relevant_ids
        )
        topics.append(
            Topic(
                topic_id=len(topics) + 1,
                question=(
                    f"What {focus_word} findings are associated with "
                    f"{context_word} in {' and '.join(context_terms)}?"
                ),
                query=query,
                relevant=relevant_external,
                focus_concept=focus,
            )
        )

    if len(topics) < num_topics:
        raise DataGenerationError(
            f"only {len(topics)}/{num_topics} topics qualified after "
            f"{max_attempts} attempts; enlarge the corpus or relax thresholds"
        )
    return QualityBenchmark(
        topics=topics,
        min_result_size=min_result_size,
        min_relevant=min_relevant,
    )


def _choose_keyword_pair(
    corpus: SyntheticCorpus,
    index: InvertedIndex,
    focus: str,
    context_term: str,
    context_set: Set[int],
    rng,
    analyzed,
) -> Optional[Tuple[str, str]]:
    """Pick ``(context_word, focus_word)`` exhibiting the idf inversion.

    Conditions (with df fractions ``fg`` = global, ``fc`` = in-context):

    * ``fg(aw) < fg(hw)``   — conventional idf weights ``aw`` more;
    * ``fc(aw) > fc(hw)``   — context idf weights ``hw`` more;
    * margins of 1.3× on both so the inversion is material, plus sanity
      floors/ceilings so both words actually occur.

    Returns raw (pre-analysis) words, or ``None`` when no candidate pair
    over the two concepts' vocabularies qualifies.
    """
    num_docs = index.num_docs
    context_size = len(context_set)

    def df_pair(word: str) -> Optional[Tuple[str, int, int]]:
        term = analyzed(word)
        if term is None:
            return None
        plist = index.postings(term)
        df_global = len(plist)
        if df_global == 0:
            return None
        df_ctx = sum(1 for doc_id in plist.doc_ids if doc_id in context_set)
        return term, df_global, df_ctx

    anc_candidates = list(corpus.topic_vocabularies[context_term][:12])
    focus_candidates = list(corpus.topic_vocabularies[focus][:20])
    rng.shuffle(anc_candidates)
    rng.shuffle(focus_candidates)

    for aw in anc_candidates:
        aw_stats = df_pair(aw)
        if aw_stats is None:
            continue
        _, aw_global, aw_ctx = aw_stats
        fg_aw = aw_global / num_docs
        fc_aw = aw_ctx / context_size
        if fc_aw < 0.05 or aw_global < 5:
            continue
        for hw in focus_candidates:
            if hw == aw:
                continue
            hw_stats = df_pair(hw)
            if hw_stats is None or hw_stats[0] == aw_stats[0]:
                continue
            _, hw_global, hw_ctx = hw_stats
            fg_hw = hw_global / num_docs
            fc_hw = hw_ctx / context_size
            if hw_ctx < 3 or fg_hw > 0.9:
                continue
            if fg_hw >= 1.3 * fg_aw and fc_aw >= 1.3 * fc_hw:
                return aw, hw
    return None


def _apply_noise(
    focus_docs: Set[int],
    result_ids: Sequence[int],
    rng,
    noise_drop: float,
    noise_add: float,
) -> Set[int]:
    """Perturb the latent relevant set into noisy human-style judgements.

    Each truly-relevant document is dropped with probability
    ``noise_drop``; spurious judgements are added in proportion to the
    *true* relevant count inside the result (``noise_add`` as a ratio),
    not to the result size — otherwise large result sets would drown the
    gold standard in noise and no ranking could distinguish itself.
    """
    relevant = {
        doc_id for doc_id in focus_docs if rng.random() >= noise_drop
    }
    true_in_result = [d for d in result_ids if d in focus_docs]
    spurious_pool = [d for d in result_ids if d not in focus_docs]
    n_add = round(noise_add * max(len(true_in_result), 1) * 2)
    if spurious_pool and n_add:
        relevant.update(rng.sample(spurious_pool, min(n_add, len(spurious_pool))))
    return relevant
