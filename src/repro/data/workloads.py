"""Query workload generators for the performance experiments (Section 6.3).

The paper generates queries by sampling keywords from citation titles,
mapping them through ATM to MeSH terms, and bucketing the resulting
context-sensitive queries by context size relative to ``T_C``:

* **large-context** queries (``ContextSize ≥ T_C``) — served by views
  (Figure 7);
* **small-context** queries (``ContextSize < T_C``) — straightforward
  evaluation only (Figure 8).

Keyword counts sweep 2–5 with fifty queries per point, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .._rng import SeedLike, derive_rng, make_rng
from ..core.query import ContextQuery, KeywordQuery
from ..errors import DataGenerationError
from ..index.analysis import DEFAULT_STOPWORDS
from ..index.inverted_index import InvertedIndex
from ..index.searcher import BooleanSearcher
from .atm import AutomaticTermMapper
from .corpus import SyntheticCorpus


@dataclass(frozen=True)
class WorkloadQuery:
    """One performance-workload query with its measured context size."""

    query: ContextQuery
    context_size: int

    @property
    def num_keywords(self) -> int:
        return len(self.query.keywords)


@dataclass
class PerformanceWorkload:
    """Queries bucketed by keyword count: ``queries[k]`` for k keywords."""

    kind: str  # "large" or "small"
    t_c: int
    queries: Dict[int, List[WorkloadQuery]]

    def all_queries(self) -> List[WorkloadQuery]:
        return [q for bucket in self.queries.values() for q in bucket]


def generate_performance_workload(
    corpus: SyntheticCorpus,
    index: InvertedIndex,
    t_c: int,
    kind: str,
    keyword_counts: Sequence[int] = (2, 3, 4, 5),
    queries_per_count: int = 50,
    max_context_terms: int = 2,
    max_attempts_per_query: int = 400,
    seed: SeedLike = None,
) -> PerformanceWorkload:
    """Generate the Figure 7 ("large") or Figure 8 ("small") workload.

    Follows the paper's recipe: sample ``n`` keywords from random
    citation titles, map them through ATM to context terms, keep the
    query if its context size lands in the requested bucket.  Contexts
    must also be non-empty, since context-sensitive ranking is undefined
    over an empty context.
    """
    if kind not in ("large", "small"):
        raise DataGenerationError(f"kind must be 'large' or 'small', got {kind!r}")
    rng = make_rng(seed)
    searcher = BooleanSearcher(index)
    # "Small" queries use precise (leaf-level) ATM mappings; "large" ones
    # generalise to parent headings, which is how ATM produces the broad
    # contexts the paper's large bucket contains.
    atm = AutomaticTermMapper.from_corpus(
        corpus, generalise_to_parent=(kind == "large")
    )

    titles = [doc.text("title") for doc in corpus.documents]
    buckets: Dict[int, List[WorkloadQuery]] = {}
    for n_keywords in keyword_counts:
        bucket_rng = derive_rng(rng, f"{kind}-{n_keywords}")
        bucket: List[WorkloadQuery] = []
        attempts = 0
        budget = max_attempts_per_query * queries_per_count
        while len(bucket) < queries_per_count and attempts < budget:
            attempts += 1
            candidate = _sample_query(
                titles, atm, bucket_rng, n_keywords, max_context_terms
            )
            if candidate is None:
                continue
            size = searcher.context_size(candidate.predicates)
            if size == 0:
                continue
            if kind == "large" and size < t_c:
                continue
            if kind == "small" and (size >= t_c or size < 2):
                continue
            bucket.append(WorkloadQuery(query=candidate, context_size=size))
        if len(bucket) < queries_per_count:
            raise DataGenerationError(
                f"could not generate {queries_per_count} {kind}-context "
                f"queries with {n_keywords} keywords "
                f"(got {len(bucket)} after {attempts} attempts); "
                "adjust T_C or corpus size"
            )
        buckets[n_keywords] = bucket
    return PerformanceWorkload(kind=kind, t_c=t_c, queries=buckets)


def _sample_query(
    titles: Sequence[str],
    atm: AutomaticTermMapper,
    rng,
    n_keywords: int,
    max_context_terms: int,
) -> Optional[ContextQuery]:
    """One attempt at the paper's query-construction recipe."""
    title_words = [
        w
        for w in rng.choice(titles).lower().split()
        if w not in DEFAULT_STOPWORDS
    ]
    if len(title_words) < n_keywords:
        return None
    keywords = rng.sample(title_words, n_keywords)
    context = atm.build_context(keywords, max_terms=max_context_terms)
    if context is None:
        return None
    try:
        return ContextQuery(KeywordQuery(keywords), context)
    except Exception:
        return None
