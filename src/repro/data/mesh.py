"""A MeSH-like ontology: hierarchical controlled vocabulary with inheritance.

PubMed annotates every citation with MeSH terms drawn from a hierarchy
(Figure 1); annotating with ``t`` implicitly annotates with every
ancestor of ``t`` (Section 6: "if a citation is annotated with the term
t, all the ancestors of t in the hierarchy are attached").  This module
generates a deterministic synthetic ontology with the same structure:
a forest of categories, Zipf-skewed term popularity (so context sizes
span orders of magnitude, like real MeSH), and pronounceable term names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from .._rng import SeedLike, make_rng, zipf_weights
from ..errors import DataGenerationError

# Category roots mirror MeSH's top-level trees.
ROOT_CATEGORIES = (
    "Diseases",
    "Anatomy",
    "ChemicalsAndDrugs",
    "Organisms",
    "TechniquesAndEquipment",
    "PsychiatryAndPsychology",
    "BiologicalSciences",
    "HealthCare",
)

_STEMS = (
    "Cardio", "Neuro", "Gastro", "Hepato", "Nephro", "Dermato", "Hemato",
    "Onco", "Osteo", "Myo", "Angio", "Broncho", "Entero", "Cephalo",
    "Cyto", "Litho", "Adeno", "Arthro", "Chondro", "Encephalo", "Thoraco",
    "Pneumo", "Spleno", "Thyro", "Veno", "Gluco", "Immuno", "Lympho",
)

_SUFFIXES = (
    "pathy", "itis", "oma", "osis", "ectomy", "plasty", "graphy",
    "logy", "genesis", "trophy", "sclerosis", "stenosis", "megaly",
    "plasia", "rrhea", "centesis",
)


@dataclass
class MeshTerm:
    """One node of the ontology tree."""

    name: str
    parent: Optional[str]
    depth: int
    children: List[str] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


class MeshOntology:
    """A forest of :class:`MeshTerm` with ancestor-expansion utilities."""

    def __init__(self, terms: Dict[str, MeshTerm]):
        if not terms:
            raise DataGenerationError("ontology must contain at least one term")
        self._terms = terms
        self._roots = sorted(t.name for t in terms.values() if t.is_root)
        self._leaves = sorted(t.name for t in terms.values() if t.is_leaf)

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        num_roots: int = 6,
        branching: int = 4,
        depth: int = 3,
        seed: SeedLike = None,
    ) -> "MeshOntology":
        """Generate a deterministic ontology.

        ``num_roots`` top-level categories each grow a tree of the given
        ``depth`` where every internal node has between 2 and
        ``branching`` children (rng-chosen).  Term names combine
        medical-sounding stems and suffixes, deduplicated with a counter
        when the combination space is exhausted.
        """
        if num_roots < 1 or num_roots > len(ROOT_CATEGORIES):
            raise DataGenerationError(
                f"num_roots must be in [1, {len(ROOT_CATEGORIES)}], got {num_roots}"
            )
        if branching < 2:
            raise DataGenerationError(f"branching must be >= 2, got {branching}")
        if depth < 1:
            raise DataGenerationError(f"depth must be >= 1, got {depth}")
        rng = make_rng(seed)
        terms: Dict[str, MeshTerm] = {}
        used_names: Set[str] = set()

        def fresh_name() -> str:
            for _ in range(64):
                name = rng.choice(_STEMS) + rng.choice(_SUFFIXES)
                if name not in used_names:
                    used_names.add(name)
                    return name
            # Combination space exhausted: disambiguate with a counter.
            base = rng.choice(_STEMS) + rng.choice(_SUFFIXES)
            suffix = 2
            while f"{base}{suffix}" in used_names:
                suffix += 1
            name = f"{base}{suffix}"
            used_names.add(name)
            return name

        for root_name in ROOT_CATEGORIES[:num_roots]:
            used_names.add(root_name)
            terms[root_name] = MeshTerm(name=root_name, parent=None, depth=0)
            frontier = [root_name]
            for level in range(1, depth + 1):
                next_frontier: List[str] = []
                for parent in frontier:
                    for _ in range(rng.randint(2, branching)):
                        child_name = fresh_name()
                        terms[child_name] = MeshTerm(
                            name=child_name, parent=parent, depth=level
                        )
                        terms[parent].children.append(child_name)
                        next_frontier.append(child_name)
                frontier = next_frontier
        return cls(terms)

    # -- reads ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, name: str) -> bool:
        return name in self._terms

    def term(self, name: str) -> MeshTerm:
        try:
            return self._terms[name]
        except KeyError:
            raise DataGenerationError(f"unknown ontology term: {name!r}") from None

    @property
    def roots(self) -> Sequence[str]:
        return tuple(self._roots)

    @property
    def leaves(self) -> Sequence[str]:
        return tuple(self._leaves)

    @property
    def all_terms(self) -> Sequence[str]:
        return tuple(sorted(self._terms))

    def ancestors(self, name: str) -> List[str]:
        """Ancestors of ``name`` from parent up to the root (exclusive of self)."""
        out: List[str] = []
        parent = self.term(name).parent
        while parent is not None:
            out.append(parent)
            parent = self.term(parent).parent
        return out

    def descendants(self, name: str) -> List[str]:
        """All terms below ``name`` (exclusive of self), depth-first order."""
        out: List[str] = []
        stack = list(self.term(name).children)
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self.term(current).children)
        return out

    def expand_with_ancestors(self, names: Iterable[str]) -> FrozenSet[str]:
        """Inheritance closure: the given terms plus all their ancestors.

        This is the annotation rule that gives PubMed citations an average
        of 44 attached terms; it also makes predicate lists hierarchically
        correlated, which is what creates the large-context regime the
        materialized views target.
        """
        closed: Set[str] = set()
        for name in names:
            closed.add(name)
            closed.update(self.ancestors(name))
        return frozenset(closed)

    def popularity_weights(self, skew: float = 1.05) -> Dict[str, float]:
        """Zipf-skewed sampling weight per *leaf* term.

        Leaf order is deterministic (sorted), so weights are reproducible;
        the skew makes a few concepts dominate annotation frequency, as
        in real MeSH usage.
        """
        weights = zipf_weights(len(self._leaves), skew)
        return dict(zip(self._leaves, weights))
