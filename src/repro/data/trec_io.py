"""TREC-format I/O: topics, qrels, and run files.

The quality benchmark mirrors TREC Genomics 2007; this module writes and
reads the standard interchange formats so results can be scored with
external tools (``trec_eval``) and external judgements can be imported:

* **topics** — a minimal tab-separated format:
  ``topic_id<TAB>question<TAB>keywords…<TAB>|<TAB>predicates…``;
* **qrels**  — the canonical ``topic_id 0 doc_id relevance`` lines;
* **runs**   — the canonical six-column
  ``topic_id Q0 doc_id rank score run_tag`` lines.

Round-trips are exact for the fields each format carries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from ..core.engine import SearchResults
from ..core.query import ContextQuery, ContextSpecification, KeywordQuery
from ..errors import DataGenerationError
from .trec import QualityBenchmark

PathLike = Union[str, Path]


# -- qrels ---------------------------------------------------------------------


def write_qrels(benchmark: QualityBenchmark, path: PathLike) -> None:
    """Write binary relevance judgements in qrels format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for topic in benchmark.topics:
            for doc_id in sorted(topic.relevant):
                handle.write(f"{topic.topic_id} 0 {doc_id} 1\n")


def read_qrels(path: PathLike) -> Dict[int, frozenset]:
    """Read qrels; returns topic_id → frozenset of relevant doc ids.

    Documents judged non-relevant (relevance 0) are dropped, matching
    how the evaluation metrics consume judgements.
    """
    path = Path(path)
    judgements: Dict[int, set] = {}
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        parts = line.split()
        if len(parts) != 4:
            raise DataGenerationError(
                f"{path}:{line_number}: expected 4 qrels columns, got {len(parts)}"
            )
        topic_id, _, doc_id, relevance = parts
        if int(relevance) > 0:
            judgements.setdefault(int(topic_id), set()).add(doc_id)
    return {topic: frozenset(docs) for topic, docs in judgements.items()}


# -- topics ---------------------------------------------------------------------


def write_topics(benchmark: QualityBenchmark, path: PathLike) -> None:
    """Write the topic set (id, question, keywords, context predicates)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for topic in benchmark.topics:
            keywords = " ".join(topic.keywords)
            predicates = " ".join(topic.query.predicates)
            handle.write(
                f"{topic.topic_id}\t{topic.question}\t{keywords} | {predicates}\n"
            )


def read_topics(path: PathLike) -> List[Tuple[int, str, ContextQuery]]:
    """Read topics; returns ``(topic_id, question, query)`` triples."""
    path = Path(path)
    out: List[Tuple[int, str, ContextQuery]] = []
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise DataGenerationError(
                f"{path}:{line_number}: expected 3 tab-separated columns"
            )
        topic_id, question, query_text = parts
        keyword_part, _, predicate_part = query_text.partition("|")
        query = ContextQuery(
            KeywordQuery(keyword_part.split()),
            ContextSpecification(predicate_part.split()),
        )
        out.append((int(topic_id), question, query))
    return out


# -- runs -----------------------------------------------------------------------


def write_run(
    results_by_topic: Mapping[int, SearchResults],
    path: PathLike,
    run_tag: str = "repro",
) -> None:
    """Write ranked results in the six-column TREC run format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for topic_id in sorted(results_by_topic):
            for rank, hit in enumerate(results_by_topic[topic_id].hits, start=1):
                handle.write(
                    f"{topic_id} Q0 {hit.external_id} {rank} "
                    f"{hit.score:.6f} {run_tag}\n"
                )


def read_run(path: PathLike) -> Dict[int, List[Tuple[str, float]]]:
    """Read a run file; returns topic_id → ranked ``(doc_id, score)``."""
    path = Path(path)
    runs: Dict[int, List[Tuple[int, str, float]]] = {}
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        parts = line.split()
        if len(parts) != 6:
            raise DataGenerationError(
                f"{path}:{line_number}: expected 6 run columns, got {len(parts)}"
            )
        topic_id, _, doc_id, rank, score, _ = parts
        runs.setdefault(int(topic_id), []).append(
            (int(rank), doc_id, float(score))
        )
    return {
        topic: [(doc, score) for _, doc, score in sorted(entries)]
        for topic, entries in runs.items()
    }
