"""Corpus diagnostics: does the synthetic substrate have the right shape?

DESIGN.md's substitution argument says the paper's claims rest on
distributional properties, not on real text.  This module *measures*
those properties so the claim is checkable rather than asserted:

* term rank–frequency follows a power law (Zipf fit in log–log space);
* context sizes span orders of magnitude with ancestor inheritance
  (the heavy-tail that motivates the ``T_C`` threshold);
* per-context keyword statistics diverge from the global ones
  (Jensen–Shannon divergence of df distributions — the premise of
  context-sensitive ranking);
* idf *inversions* exist: keyword pairs whose discriminativeness
  ordering flips between the collection and some context (the
  Section 1.1 phenomenon the quality benchmark is built on).

Used by ``examples/corpus_diagnostics.py`` and the data tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..index.inverted_index import InvertedIndex


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares power-law fit of the rank–frequency curve."""

    slope: float
    intercept: float
    r_squared: float

    @property
    def is_heavy_tailed(self) -> bool:
        """Negative slope with a strong linear log–log fit."""
        return self.slope < -0.5 and self.r_squared > 0.8


def fit_zipf(frequencies: Sequence[int], top_n: Optional[int] = 1000) -> ZipfFit:
    """Fit ``log f = slope · log rank + intercept`` over the top ranks."""
    ordered = sorted((f for f in frequencies if f > 0), reverse=True)
    if top_n is not None:
        ordered = ordered[:top_n]
    if len(ordered) < 3:
        raise ValueError("need at least 3 nonzero frequencies to fit")
    xs = [math.log(rank) for rank in range(1, len(ordered) + 1)]
    ys = [math.log(f) for f in ordered]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ZipfFit(slope=slope, intercept=intercept, r_squared=r_squared)


@dataclass
class ContextSizeProfile:
    """Distribution of predicate-list sizes (context sizes)."""

    sizes: List[int]

    @property
    def min(self) -> int:
        return min(self.sizes)

    @property
    def max(self) -> int:
        return max(self.sizes)

    @property
    def median(self) -> int:
        ordered = sorted(self.sizes)
        return ordered[len(ordered) // 2]

    @property
    def dynamic_range(self) -> float:
        """max/min ratio — how many orders of magnitude contexts span."""
        return self.max / max(self.min, 1)

    def above(self, threshold: int) -> int:
        """How many predicates exceed a ``T_C``-style threshold."""
        return sum(1 for s in self.sizes if s >= threshold)


def context_size_profile(index: InvertedIndex) -> ContextSizeProfile:
    """Sizes of every single-predicate context."""
    return ContextSizeProfile(
        sizes=[
            index.predicate_frequency(m)
            for m in index.predicate_vocabulary
        ]
    )


def _js_divergence(p: Sequence[float], q: Sequence[float]) -> float:
    """Jensen–Shannon divergence (base-2, symmetric, bounded by 1)."""

    def kl(a: Sequence[float], b: Sequence[float]) -> float:
        total = 0.0
        for x, y in zip(a, b):
            if x > 0 and y > 0:
                total += x * math.log2(x / y)
        return total

    m = [(x + y) / 2 for x, y in zip(p, q)]
    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


def context_divergence(
    index: InvertedIndex,
    predicate: str,
    sample_terms: Optional[Sequence[str]] = None,
) -> float:
    """JS divergence between global and in-context df distributions.

    High divergence means the context's keyword statistics genuinely
    differ from the collection's — the working premise of
    context-sensitive ranking (Section 1).
    """
    context = set(index.predicate_postings(predicate).doc_ids)
    if not context:
        raise ValueError(f"predicate {predicate!r} has an empty context")
    if sample_terms is None:
        sample_terms = sorted(
            index.vocabulary, key=index.document_frequency, reverse=True
        )[:300]
    global_df: List[float] = []
    context_df: List[float] = []
    for term in sample_terms:
        plist = index.postings(term)
        global_df.append(float(len(plist)))
        context_df.append(
            float(sum(1 for d in plist.doc_ids if d in context))
        )
    g_total = sum(global_df) or 1.0
    c_total = sum(context_df) or 1.0
    return _js_divergence(
        [x / g_total for x in global_df],
        [x / c_total for x in context_df],
    )


@dataclass(frozen=True)
class InversionExample:
    """One Section-1.1-style idf inversion."""

    predicate: str
    context_common_term: str
    focus_term: str
    global_ratio: float  # fg(focus) / fg(common): > 1
    context_ratio: float  # fc(common) / fc(focus): > 1


def find_idf_inversions(
    index: InvertedIndex,
    max_predicates: int = 10,
    max_terms: int = 150,
    margin: float = 1.3,
) -> List[InversionExample]:
    """Search for keyword pairs whose idf ordering flips inside a context.

    Returns at most one example per inspected predicate; an empty list
    means the corpus cannot support the paper's quality experiment.
    """
    inversions: List[InversionExample] = []
    num_docs = index.num_docs
    predicates = sorted(
        index.predicate_vocabulary,
        key=index.predicate_frequency,
        reverse=True,
    )[:max_predicates]
    terms = sorted(
        index.vocabulary, key=index.document_frequency, reverse=True
    )[:max_terms]

    for predicate in predicates:
        context = set(index.predicate_postings(predicate).doc_ids)
        context_size = len(context)
        if context_size < 20 or context_size > 0.7 * num_docs:
            continue
        fractions: List[Tuple[str, float, float]] = []
        for term in terms:
            plist = index.postings(term)
            fg = len(plist) / num_docs
            fc = sum(1 for d in plist.doc_ids if d in context) / context_size
            if fg > 0:
                fractions.append((term, fg, fc))
        found = None
        for aw, fg_aw, fc_aw in fractions:
            if found:
                break
            if fc_aw < 0.05:
                continue
            for hw, fg_hw, fc_hw in fractions:
                if hw == aw or fc_hw <= 0:
                    continue
                if fg_hw >= margin * fg_aw and fc_aw >= margin * fc_hw:
                    found = InversionExample(
                        predicate=predicate,
                        context_common_term=aw,
                        focus_term=hw,
                        global_ratio=fg_hw / fg_aw,
                        context_ratio=fc_aw / fc_hw,
                    )
                    break
        if found:
            inversions.append(found)
    return inversions
